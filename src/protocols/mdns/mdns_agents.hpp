// Legacy Bonjour applications: an mDNS responder (advertises a service) and
// a resolver (browses for one) -- the Apple Bonjour SDK stand-ins.
//
// Latency model: Fig 12(a) puts a native Bonjour lookup at ~710 ms
// (687/710/726). mDNS browsing aggregates responses over a browse window
// before reporting, so the Resolver waits a calibrated ~700 ms window; the
// Responder itself answers after a short ~250 ms processing delay, which is
// the only cost a Starlink bridge pays when it queries Bonjour directly
// (Fig 12(b) cases 2/4 sit at ~270-290 ms).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "protocols/mdns/dns_codec.hpp"

namespace starlink::mdns {

/// Advertises one service and answers matching PTR questions.
class Responder {
public:
    struct Config {
        std::string host = "10.0.0.3";
        std::string serviceName = "_printer._tcp.local";
        std::string url = "http://10.0.0.3:631/ipp";
        net::Duration responseDelayBase = net::ms(240);
        net::Duration responseDelayJitter = net::ms(20);
        std::uint64_t seed = 11;
    };

    Responder(net::Network& network, Config config);

    std::size_t questionsAnswered() const { return answered_; }
    const Config& config() const { return config_; }

private:
    void onDatagram(const Bytes& payload, const net::Address& from);

    net::Network& network_;
    Config config_;
    Rng rng_;
    std::unique_ptr<net::UdpSocket> socket_;
    std::size_t answered_ = 0;
};

/// Browses for a service type. Like DNSServiceBrowse, browsing is
/// open-ended: the resolver waits for the FIRST answer however long it
/// takes, then keeps aggregating further answers over a short window before
/// reporting. A separate overall timeout bounds the no-answer case.
class Resolver {
public:
    struct Config {
        std::string host = "10.0.0.1";
        /// Aggregation window counted from the first answer.
        net::Duration aggregationBase = net::ms(440);
        net::Duration aggregationJitter = net::ms(40);
        /// Give up when NOTHING answers within this bound.
        net::Duration timeout = net::ms(15000);
        /// Re-ask the question every interval until the first answer lands
        /// (mDNS queriers re-query with increasing intervals, RFC 6762
        /// section 5.2). 0 = never retransmit (default).
        net::Duration retransmitInterval = net::ms(0);
        std::uint64_t seed = 13;
    };

    struct Result {
        std::vector<std::string> urls;       // empty == timed out
        net::Duration elapsed = net::ms(0);  // question out -> report
    };
    using Callback = std::function<void(const Result&)>;

    Resolver(net::Network& network, Config config);

    /// One browse at a time per resolver.
    void browse(const std::string& serviceName, Callback callback);

private:
    void onDatagram(const Bytes& payload, const net::Address& from);
    void report();

    net::Network& network_;
    Config config_;
    Rng rng_;
    std::unique_ptr<net::UdpSocket> socket_;

    std::optional<std::uint16_t> pendingId_;
    net::TimePoint sentAt_{};
    std::vector<std::string> collected_;
    std::optional<net::EventId> timeoutEvent_;
    std::optional<net::EventId> resendEvent_;
    Bytes lastQuestion_;
    Callback callback_;
    std::uint16_t nextId_ = 0x2000;

    void scheduleResend();
};

}  // namespace starlink::mdns
