#include "protocols/mdns/mdns_agents.hpp"

#include "common/log.hpp"

namespace starlink::mdns {

// ---------------------------------------------------------------------------
// Responder

Responder::Responder(net::Network& network, Config config)
    : network_(network), config_(std::move(config)), rng_(config_.seed) {
    socket_ = network_.openUdp(config_.host, kPort);
    socket_->joinGroup(net::Address{kGroup, kPort});
    socket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onDatagram(payload, from);
    });
}

void Responder::onDatagram(const Bytes& payload, const net::Address& from) {
    const auto message = decode(payload);
    if (!message || message->isResponse()) return;
    for (const Question& question : message->questions) {
        if (question.qname != config_.serviceName) continue;
        const Bytes reply = encode(makeResponse(message->id, config_.serviceName, config_.url));
        const auto jitterUs = config_.responseDelayJitter.count();
        const net::Duration delay =
            config_.responseDelayBase +
            (jitterUs > 0 ? net::us(rng_.range(0, jitterUs)) : net::us(0));
        // mDNS allows unicast responses to the querier (RFC 6762 QU).
        network_.scheduler().schedule(delay, [this, reply, from] {
            socket_->sendTo(from, reply);
            ++answered_;
        });
        return;
    }
}

// ---------------------------------------------------------------------------
// Resolver

Resolver::Resolver(net::Network& network, Config config)
    : network_(network), config_(std::move(config)), rng_(config_.seed) {
    socket_ = network_.openUdp(config_.host);
    socket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onDatagram(payload, from);
    });
}

void Resolver::browse(const std::string& serviceName, Callback callback) {
    if (pendingId_) {
        STARLINK_LOG(Warn, "mdns-resolver") << "browse already in flight; ignoring";
        return;
    }
    const std::uint16_t id = nextId_++;
    pendingId_ = id;
    callback_ = std::move(callback);
    collected_.clear();
    sentAt_ = network_.now();
    lastQuestion_ = encode(makeQuestion(id, serviceName));
    socket_->sendTo(net::Address{kGroup, kPort}, lastQuestion_);
    scheduleResend();

    timeoutEvent_ = network_.scheduler().schedule(config_.timeout, [this] {
        timeoutEvent_.reset();
        report();
    });
}

void Resolver::scheduleResend() {
    if (config_.retransmitInterval.count() <= 0) return;
    resendEvent_ = network_.scheduler().schedule(config_.retransmitInterval, [this] {
        resendEvent_.reset();
        // Re-query only while the browse is still unanswered.
        if (!pendingId_ || !collected_.empty()) return;
        socket_->sendTo(net::Address{kGroup, kPort}, lastQuestion_);
        scheduleResend();
    });
}

void Resolver::onDatagram(const Bytes& payload, const net::Address&) {
    if (!pendingId_) return;
    const auto message = decode(payload);
    if (!message || !message->isResponse() || message->id != *pendingId_) return;
    const bool first = collected_.empty();
    for (const Record& record : message->answers) {
        collected_.push_back(toString(record.rdata));
    }
    if (first && !collected_.empty()) {
        // First answer arrived: stop the no-answer timeout and aggregate
        // further answers over a short window before reporting.
        if (timeoutEvent_) {
            network_.scheduler().cancel(*timeoutEvent_);
            timeoutEvent_.reset();
        }
        if (resendEvent_) {
            network_.scheduler().cancel(*resendEvent_);
            resendEvent_.reset();
        }
        const auto jitterUs = config_.aggregationJitter.count();
        const net::Duration window =
            config_.aggregationBase +
            (jitterUs > 0 ? net::us(rng_.range(0, jitterUs)) : net::us(0));
        network_.scheduler().schedule(window, [this] { report(); });
    }
}

void Resolver::report() {
    if (!pendingId_) return;
    if (resendEvent_) {
        network_.scheduler().cancel(*resendEvent_);
        resendEvent_.reset();
    }
    Result result;
    result.urls = std::move(collected_);
    collected_.clear();
    result.elapsed = std::chrono::duration_cast<net::Duration>(network_.now() - sentAt_);
    pendingId_.reset();
    Callback cb = std::move(callback_);
    callback_ = nullptr;
    if (cb) cb(result);
}

}  // namespace starlink::mdns
