#include "protocols/mdns/dns_codec.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace starlink::mdns {

namespace {

void appendName(Bytes& out, const std::string& name) {
    if (!name.empty()) {
        for (const std::string& label : split(name, '.')) {
            if (label.empty() || label.size() > 63) {
                throw ProtocolError("dns: bad label in name '" + name + "'");
            }
            out.push_back(static_cast<std::uint8_t>(label.size()));
            out.insert(out.end(), label.begin(), label.end());
        }
    }
    out.push_back(0);
}

struct Reader {
    const Bytes& data;
    std::size_t pos = 0;

    bool readUint(int bytes, std::uint64_t& value) {
        if (!starlink::readUint(data, pos, bytes, value)) return false;
        pos += static_cast<std::size_t>(bytes);
        return true;
    }
    /// RFC 1035 section 4.1.4 name decoding: a sequence of length-prefixed
    /// labels, where any length octet with the top two bits set is instead a
    /// 14-bit compression pointer to an earlier occurrence of the name's
    /// tail. Adversarial packets are guarded two ways: a hard cap on the
    /// number of jumps, and the requirement that every pointer target lies
    /// strictly before both the pointer itself and any previous target --
    /// so chains can only walk backwards and must terminate.
    bool readName(std::string& out) {
        static constexpr int kMaxJumps = 32;
        static constexpr std::size_t kMaxNameLength = 255;  // RFC 1035 section 2.3.4
        std::vector<std::string> labels;
        std::size_t cursor = pos;
        std::optional<std::size_t> resume;  // reader position after the first pointer
        std::size_t previousTarget = data.size();
        std::size_t nameLength = 0;
        int jumps = 0;
        while (true) {
            if (cursor >= data.size()) return false;
            const std::uint8_t length = data[cursor];
            if ((length & 0xC0) == 0xC0) {
                if (cursor + 1 >= data.size()) return false;  // truncated pointer
                const std::size_t target =
                    static_cast<std::size_t>(length & 0x3F) << 8 | data[cursor + 1];
                if (!resume) resume = cursor + 2;
                if (++jumps > kMaxJumps) return false;
                if (target >= cursor || target >= previousTarget) return false;  // loop guard
                previousTarget = target;
                cursor = target;
                continue;
            }
            if ((length & 0xC0) != 0) return false;  // 0x40/0x80 label types are reserved
            ++cursor;
            if (length == 0) break;
            nameLength += static_cast<std::size_t>(length) + 1;
            if (nameLength > kMaxNameLength) return false;
            if (cursor + length > data.size()) return false;
            labels.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(cursor),
                                data.begin() + static_cast<std::ptrdiff_t>(cursor + length));
            cursor += length;
        }
        pos = resume.value_or(cursor);
        out = join(labels, ".");
        return true;
    }
    bool readBytes(std::size_t count, Bytes& out) {
        if (pos + count > data.size()) return false;
        out.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                   data.begin() + static_cast<std::ptrdiff_t>(pos + count));
        pos += count;
        return true;
    }
};

}  // namespace

namespace {

void appendRecord(Bytes& out, const Record& r) {
    appendName(out, r.name);
    appendUint(out, r.type, 2);
    appendUint(out, r.klass, 2);
    appendUint(out, r.ttl, 4);
    appendUint(out, r.rdata.size(), 2);
    out.insert(out.end(), r.rdata.begin(), r.rdata.end());
}

}  // namespace

Bytes encode(const DnsMessage& message) {
    Bytes out;
    appendUint(out, message.id, 2);
    appendUint(out, message.flags, 2);
    appendUint(out, message.questions.size(), 2);
    appendUint(out, message.answers.size(), 2);
    appendUint(out, message.authority.size(), 2);
    appendUint(out, message.additional.size(), 2);
    for (const Question& q : message.questions) {
        appendName(out, q.qname);
        appendUint(out, q.qtype, 2);
        appendUint(out, q.qclass, 2);
    }
    for (const Record& r : message.answers) appendRecord(out, r);
    for (const Record& r : message.authority) appendRecord(out, r);
    for (const Record& r : message.additional) appendRecord(out, r);
    return out;
}

std::optional<DnsMessage> decode(const Bytes& data) {
    Reader reader{data};
    DnsMessage out;
    std::uint64_t id = 0;
    std::uint64_t flags = 0;
    std::uint64_t qd = 0;
    std::uint64_t an = 0;
    std::uint64_t ns = 0;
    std::uint64_t ar = 0;
    if (!reader.readUint(2, id) || !reader.readUint(2, flags) || !reader.readUint(2, qd) ||
        !reader.readUint(2, an) || !reader.readUint(2, ns) || !reader.readUint(2, ar)) {
        return std::nullopt;
    }
    out.id = static_cast<std::uint16_t>(id);
    out.flags = static_cast<std::uint16_t>(flags);
    for (std::uint64_t i = 0; i < qd; ++i) {
        Question q;
        std::uint64_t qtype = 0;
        std::uint64_t qclass = 0;
        if (!reader.readName(q.qname) || !reader.readUint(2, qtype) ||
            !reader.readUint(2, qclass)) {
            return std::nullopt;
        }
        q.qtype = static_cast<std::uint16_t>(qtype);
        q.qclass = static_cast<std::uint16_t>(qclass);
        out.questions.push_back(std::move(q));
    }
    auto readRecords = [&reader](std::uint64_t count, std::vector<Record>& section) -> bool {
        for (std::uint64_t i = 0; i < count; ++i) {
            Record r;
            std::uint64_t type = 0;
            std::uint64_t klass = 0;
            std::uint64_t ttl = 0;
            std::uint64_t rdlength = 0;
            if (!reader.readName(r.name) || !reader.readUint(2, type) ||
                !reader.readUint(2, klass) || !reader.readUint(4, ttl) ||
                !reader.readUint(2, rdlength) || !reader.readBytes(rdlength, r.rdata)) {
                return false;
            }
            r.type = static_cast<std::uint16_t>(type);
            r.klass = static_cast<std::uint16_t>(klass);
            r.ttl = static_cast<std::uint32_t>(ttl);
            section.push_back(std::move(r));
        }
        return true;
    };
    if (!readRecords(an, out.answers) || !readRecords(ns, out.authority) ||
        !readRecords(ar, out.additional)) {
        return std::nullopt;
    }
    if (reader.pos != data.size()) return std::nullopt;
    return out;
}

DnsMessage makeQuestion(std::uint16_t id, const std::string& serviceName) {
    DnsMessage message;
    message.id = id;
    message.flags = kFlagsQuery;
    message.questions.push_back(Question{serviceName, kTypePtr, kClassIn});
    return message;
}

DnsMessage makeResponse(std::uint16_t id, const std::string& serviceName,
                        const std::string& url) {
    DnsMessage message;
    message.id = id;
    message.flags = kFlagsResponse;
    Record record;
    record.name = serviceName;
    record.type = kTypeTxt;
    record.rdata = toBytes(url);
    message.answers.push_back(std::move(record));
    return message;
}

}  // namespace starlink::mdns
