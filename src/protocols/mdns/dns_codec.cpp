#include "protocols/mdns/dns_codec.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace starlink::mdns {

namespace {

void appendName(Bytes& out, const std::string& name) {
    if (!name.empty()) {
        for (const std::string& label : split(name, '.')) {
            if (label.empty() || label.size() > 63) {
                throw ProtocolError("dns: bad label in name '" + name + "'");
            }
            out.push_back(static_cast<std::uint8_t>(label.size()));
            out.insert(out.end(), label.begin(), label.end());
        }
    }
    out.push_back(0);
}

struct Reader {
    const Bytes& data;
    std::size_t pos = 0;

    bool readUint(int bytes, std::uint64_t& value) {
        if (!starlink::readUint(data, pos, bytes, value)) return false;
        pos += static_cast<std::size_t>(bytes);
        return true;
    }
    bool readName(std::string& out) {
        std::vector<std::string> labels;
        while (true) {
            if (pos >= data.size()) return false;
            const std::uint8_t length = data[pos++];
            if (length == 0) break;
            if (length > 63) return false;  // compression pointers unsupported
            if (pos + length > data.size()) return false;
            labels.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(pos),
                                data.begin() + static_cast<std::ptrdiff_t>(pos + length));
            pos += length;
        }
        out = join(labels, ".");
        return true;
    }
    bool readBytes(std::size_t count, Bytes& out) {
        if (pos + count > data.size()) return false;
        out.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                   data.begin() + static_cast<std::ptrdiff_t>(pos + count));
        pos += count;
        return true;
    }
};

}  // namespace

Bytes encode(const DnsMessage& message) {
    Bytes out;
    appendUint(out, message.id, 2);
    appendUint(out, message.flags, 2);
    appendUint(out, message.questions.size(), 2);
    appendUint(out, message.answers.size(), 2);
    appendUint(out, 0, 2);  // NSCOUNT
    appendUint(out, 0, 2);  // ARCOUNT
    for (const Question& q : message.questions) {
        appendName(out, q.qname);
        appendUint(out, q.qtype, 2);
        appendUint(out, q.qclass, 2);
    }
    for (const Record& r : message.answers) {
        appendName(out, r.name);
        appendUint(out, r.type, 2);
        appendUint(out, r.klass, 2);
        appendUint(out, r.ttl, 4);
        appendUint(out, r.rdata.size(), 2);
        out.insert(out.end(), r.rdata.begin(), r.rdata.end());
    }
    return out;
}

std::optional<DnsMessage> decode(const Bytes& data) {
    Reader reader{data};
    DnsMessage out;
    std::uint64_t id = 0;
    std::uint64_t flags = 0;
    std::uint64_t qd = 0;
    std::uint64_t an = 0;
    std::uint64_t ns = 0;
    std::uint64_t ar = 0;
    if (!reader.readUint(2, id) || !reader.readUint(2, flags) || !reader.readUint(2, qd) ||
        !reader.readUint(2, an) || !reader.readUint(2, ns) || !reader.readUint(2, ar)) {
        return std::nullopt;
    }
    out.id = static_cast<std::uint16_t>(id);
    out.flags = static_cast<std::uint16_t>(flags);
    for (std::uint64_t i = 0; i < qd; ++i) {
        Question q;
        std::uint64_t qtype = 0;
        std::uint64_t qclass = 0;
        if (!reader.readName(q.qname) || !reader.readUint(2, qtype) ||
            !reader.readUint(2, qclass)) {
            return std::nullopt;
        }
        q.qtype = static_cast<std::uint16_t>(qtype);
        q.qclass = static_cast<std::uint16_t>(qclass);
        out.questions.push_back(std::move(q));
    }
    for (std::uint64_t i = 0; i < an; ++i) {
        Record r;
        std::uint64_t type = 0;
        std::uint64_t klass = 0;
        std::uint64_t ttl = 0;
        std::uint64_t rdlength = 0;
        if (!reader.readName(r.name) || !reader.readUint(2, type) ||
            !reader.readUint(2, klass) || !reader.readUint(4, ttl) ||
            !reader.readUint(2, rdlength) || !reader.readBytes(rdlength, r.rdata)) {
            return std::nullopt;
        }
        r.type = static_cast<std::uint16_t>(type);
        r.klass = static_cast<std::uint16_t>(klass);
        r.ttl = static_cast<std::uint32_t>(ttl);
        out.answers.push_back(std::move(r));
    }
    if (ns != 0 || ar != 0) return std::nullopt;  // subset: no authority/additional
    if (reader.pos != data.size()) return std::nullopt;
    return out;
}

DnsMessage makeQuestion(std::uint16_t id, const std::string& serviceName) {
    DnsMessage message;
    message.id = id;
    message.flags = kFlagsQuery;
    message.questions.push_back(Question{serviceName, kTypePtr, kClassIn});
    return message;
}

DnsMessage makeResponse(std::uint16_t id, const std::string& serviceName,
                        const std::string& url) {
    DnsMessage message;
    message.id = id;
    message.flags = kFlagsResponse;
    Record record;
    record.name = serviceName;
    record.type = kTypeTxt;
    record.rdata = toBytes(url);
    message.answers.push_back(std::move(record));
    return message;
}

}  // namespace starlink::mdns
