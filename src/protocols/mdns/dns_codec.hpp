// DNS wire codec for multicast DNS (Bonjour) discovery.
//
// LEGACY stack, hand-written and independent of the MDL machinery; stands in
// for the Apple Bonjour SDK (DESIGN.md section 1). "Bonjour uses DNS
// messages so this MDL describes DNS questions and responses" -- the same
// simplification applies here:
//   - standard 12-byte header (ID, Flags, QD/AN/NS/AR counts);
//   - questions: QNAME (label encoding; RFC 1035 compression pointers are
//     followed on decode, with jump-count and backwards-only-offset guards
//     against malicious loops; encode always emits uncompressed names),
//     QTYPE, QCLASS;
//   - answers/authority/additional: NAME, TYPE, CLASS, TTL, RDLENGTH, RDATA;
//   - discovery answers carry the service URL directly in RDATA (TXT-style),
//     mirroring the paper: "the URL reply of the service (this was
//     transfered from the RDATA value of the DNS Response)".
// A response carries no question section (QDCOUNT 0) and one answer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace starlink::mdns {

inline constexpr const char* kGroup = "224.0.0.251";
inline constexpr std::uint16_t kPort = 5353;

inline constexpr std::uint16_t kFlagsQuery = 0x0000;
inline constexpr std::uint16_t kFlagsResponse = 0x8400;  // QR + AA
inline constexpr std::uint16_t kTypePtr = 12;
inline constexpr std::uint16_t kTypeTxt = 16;
inline constexpr std::uint16_t kClassIn = 1;

struct Question {
    std::string qname;  // "_printer._tcp.local"
    std::uint16_t qtype = kTypePtr;
    std::uint16_t qclass = kClassIn;
};

struct Record {
    std::string name;
    std::uint16_t type = kTypeTxt;
    std::uint16_t klass = kClassIn;
    std::uint32_t ttl = 120;
    Bytes rdata;
};

struct DnsMessage {
    std::uint16_t id = 0;
    std::uint16_t flags = kFlagsQuery;
    std::vector<Question> questions;
    std::vector<Record> answers;
    std::vector<Record> authority;   // NSCOUNT section
    std::vector<Record> additional;  // ARCOUNT section

    bool isResponse() const { return (flags & 0x8000) != 0; }
};

Bytes encode(const DnsMessage& message);
std::optional<DnsMessage> decode(const Bytes& data);

/// Convenience builders for the discovery exchange.
DnsMessage makeQuestion(std::uint16_t id, const std::string& serviceName);
DnsMessage makeResponse(std::uint16_t id, const std::string& serviceName,
                        const std::string& url);

}  // namespace starlink::mdns
