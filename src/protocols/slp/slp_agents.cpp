#include "protocols/slp/slp_agents.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"

namespace starlink::slp {

namespace {
/// Evaluates a single-term "(key=value)" predicate against the service's
/// attributes; empty matches, malformed rejects.
bool predicateMatches(const std::string& predicate,
                      const std::map<std::string, std::string>& attributes) {
    const std::string text = trim(predicate);
    if (text.empty()) return true;
    if (text.size() < 2 || text.front() != '(' || text.back() != ')') return false;
    const auto halves = splitFirst(text.substr(1, text.size() - 2), '=');
    if (!halves) return false;
    const auto it = attributes.find(trim(halves->first));
    return it != attributes.end() && it->second == trim(halves->second);
}
}  // namespace

// ---------------------------------------------------------------------------
// ServiceAgent

ServiceAgent::ServiceAgent(net::Network& network, Config config)
    : network_(network), config_(std::move(config)), rng_(config_.seed) {
    socket_ = network_.openUdp(config_.host, kPort);
    socket_->joinGroup(net::Address{kGroup, kPort});
    socket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onDatagram(payload, from);
    });
}

void ServiceAgent::onDatagram(const Bytes& payload, const net::Address& from) {
    const auto request = decodeRequest(payload);
    if (!request) return;
    // Match on service type; an empty request type means "any".
    if (!request->serviceType.empty() && request->serviceType != config_.serviceType) return;
    // Respect the previous-responder list (RFC 2608 section 8.1).
    if (request->prList.find(config_.host) != std::string::npos) return;
    // Attribute-based selection: the predicate must hold.
    if (!predicateMatches(request->predicate, config_.attributes)) return;

    SrvReply reply;
    reply.xid = request->xid;
    reply.langTag = request->langTag;
    reply.url = config_.url;

    const auto jitterUs = config_.responseDelayJitter.count();
    const net::Duration delay =
        config_.responseDelayBase + (jitterUs > 0 ? net::us(rng_.range(0, jitterUs)) : net::us(0));
    const Bytes encoded = encode(reply);
    network_.scheduler().schedule(delay, [this, encoded, from] {
        socket_->sendTo(from, encoded);
        ++served_;
    });
}

// ---------------------------------------------------------------------------
// UserAgent

UserAgent::UserAgent(net::Network& network, Config config)
    : network_(network), config_(std::move(config)) {
    socket_ = network_.openUdp(config_.host);  // ephemeral port, per lookup socket reuse
    socket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onDatagram(payload, from);
    });
}

void UserAgent::lookup(const std::string& serviceType, Callback callback) {
    if (pendingXid_) {
        STARLINK_LOG(Warn, "slp-ua") << "lookup already in flight; ignoring";
        return;
    }
    SrvRequest request;
    request.xid = nextXid_++;
    request.serviceType = serviceType;

    pendingXid_ = request.xid;
    callback_ = std::move(callback);
    sentAt_ = network_.now();
    lastRequest_ = encode(request);
    socket_->sendTo(net::Address{kGroup, kPort}, lastRequest_);
    scheduleResend();

    timeoutEvent_ = network_.scheduler().schedule(config_.timeout, [this] {
        timeoutEvent_.reset();
        Result result;
        result.elapsed = std::chrono::duration_cast<net::Duration>(network_.now() - sentAt_);
        finish(std::move(result));
    });
}

void UserAgent::onDatagram(const Bytes& payload, const net::Address&) {
    if (!pendingXid_) return;
    const auto reply = decodeReply(payload);
    if (!reply || reply->xid != *pendingXid_ || reply->errorCode != 0) return;

    Result result;
    result.urls.push_back(reply->url);
    result.elapsed = std::chrono::duration_cast<net::Duration>(network_.now() - sentAt_);
    if (timeoutEvent_) {
        network_.scheduler().cancel(*timeoutEvent_);
        timeoutEvent_.reset();
    }
    finish(std::move(result));
}

void UserAgent::scheduleResend() {
    if (config_.retransmitInterval.count() <= 0) return;
    resendEvent_ = network_.scheduler().schedule(config_.retransmitInterval, [this] {
        resendEvent_.reset();
        if (!pendingXid_) return;
        socket_->sendTo(net::Address{kGroup, kPort}, lastRequest_);
        scheduleResend();
    });
}

void UserAgent::finish(Result result) {
    pendingXid_.reset();
    if (resendEvent_) {
        network_.scheduler().cancel(*resendEvent_);
        resendEvent_.reset();
    }
    Callback callback = std::move(callback_);
    callback_ = nullptr;
    if (callback) callback(result);
}

}  // namespace starlink::slp
