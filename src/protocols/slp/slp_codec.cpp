#include "protocols/slp/slp_codec.hpp"

#include "common/error.hpp"

namespace starlink::slp {

namespace {

void appendLengthPrefixed(Bytes& out, const std::string& text) {
    if (text.size() > 0xffff) throw ProtocolError("slp: string exceeds 16-bit length");
    appendUint(out, text.size(), 2);
    out.insert(out.end(), text.begin(), text.end());
}

/// Header is identical for both messages; body starts at the returned offset.
Bytes encodeHeader(std::uint8_t function, std::uint16_t xid, const std::string& langTag) {
    Bytes out;
    out.push_back(kVersion);
    out.push_back(function);
    appendUint(out, 0, 3);  // MessageLength backpatched by finalize()
    appendUint(out, 0, 2);  // Reserved
    appendUint(out, 0, 3);  // NextExtOffset
    appendUint(out, xid, 2);
    appendLengthPrefixed(out, langTag);
    return out;
}

void finalize(Bytes& out) {
    const std::size_t length = out.size();
    if (length > 0xffffff) throw ProtocolError("slp: message exceeds 24-bit length");
    out[2] = static_cast<std::uint8_t>(length >> 16);
    out[3] = static_cast<std::uint8_t>(length >> 8);
    out[4] = static_cast<std::uint8_t>(length);
}

/// Cursor-style reader for decode; every method returns false on truncation.
struct Reader {
    const Bytes& data;
    std::size_t pos = 0;

    bool readUint(int bytes, std::uint64_t& value) {
        if (!starlink::readUint(data, pos, bytes, value)) return false;
        pos += static_cast<std::size_t>(bytes);
        return true;
    }
    bool readString(std::string& out) {
        std::uint64_t length = 0;
        if (!readUint(2, length)) return false;
        if (pos + length > data.size()) return false;
        out.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                   data.begin() + static_cast<std::ptrdiff_t>(pos + length));
        pos += length;
        return true;
    }
};

struct Header {
    std::uint8_t function = 0;
    std::uint16_t xid = 0;
    std::string langTag;
};

std::optional<Header> decodeHeader(Reader& reader) {
    std::uint64_t version = 0;
    std::uint64_t function = 0;
    std::uint64_t messageLength = 0;
    std::uint64_t reserved = 0;
    std::uint64_t nextExt = 0;
    std::uint64_t xid = 0;
    Header header;
    if (!reader.readUint(1, version) || version != kVersion) return std::nullopt;
    if (!reader.readUint(1, function)) return std::nullopt;
    if (!reader.readUint(3, messageLength) || messageLength != reader.data.size()) {
        return std::nullopt;
    }
    if (!reader.readUint(2, reserved) || !reader.readUint(3, nextExt)) return std::nullopt;
    if (!reader.readUint(2, xid)) return std::nullopt;
    if (!reader.readString(header.langTag)) return std::nullopt;
    header.function = static_cast<std::uint8_t>(function);
    header.xid = static_cast<std::uint16_t>(xid);
    return header;
}

}  // namespace

Bytes encode(const SrvRequest& message) {
    Bytes out = encodeHeader(kFnSrvRqst, message.xid, message.langTag);
    appendLengthPrefixed(out, message.prList);
    appendLengthPrefixed(out, message.serviceType);
    appendLengthPrefixed(out, message.predicate);
    appendLengthPrefixed(out, message.spi);
    finalize(out);
    return out;
}

Bytes encode(const SrvReply& message) {
    Bytes out = encodeHeader(kFnSrvRply, message.xid, message.langTag);
    appendUint(out, message.errorCode, 2);
    appendUint(out, 1, 2);  // URL entry count (this subset carries exactly one)
    appendUint(out, 0, 1);  // URL entry: reserved
    appendUint(out, message.lifetime, 2);
    appendLengthPrefixed(out, message.url);
    finalize(out);
    return out;
}

std::optional<std::uint8_t> peekFunction(const Bytes& data) {
    if (data.size() < 2 || data[0] != kVersion) return std::nullopt;
    return data[1];
}

std::optional<SrvRequest> decodeRequest(const Bytes& data) {
    Reader reader{data};
    const auto header = decodeHeader(reader);
    if (!header || header->function != kFnSrvRqst) return std::nullopt;
    SrvRequest out;
    out.xid = header->xid;
    out.langTag = header->langTag;
    if (!reader.readString(out.prList) || !reader.readString(out.serviceType) ||
        !reader.readString(out.predicate) || !reader.readString(out.spi)) {
        return std::nullopt;
    }
    if (reader.pos != data.size()) return std::nullopt;
    return out;
}

std::optional<SrvReply> decodeReply(const Bytes& data) {
    Reader reader{data};
    const auto header = decodeHeader(reader);
    if (!header || header->function != kFnSrvRply) return std::nullopt;
    SrvReply out;
    out.xid = header->xid;
    out.langTag = header->langTag;
    std::uint64_t errorCode = 0;
    std::uint64_t count = 0;
    std::uint64_t reserved = 0;
    std::uint64_t lifetime = 0;
    if (!reader.readUint(2, errorCode) || !reader.readUint(2, count)) return std::nullopt;
    if (count != 1) return std::nullopt;  // subset: exactly one URL entry
    if (!reader.readUint(1, reserved) || !reader.readUint(2, lifetime)) return std::nullopt;
    if (!reader.readString(out.url)) return std::nullopt;
    if (reader.pos != data.size()) return std::nullopt;
    out.errorCode = static_cast<std::uint16_t>(errorCode);
    out.lifetime = static_cast<std::uint16_t>(lifetime);
    return out;
}

}  // namespace starlink::slp
