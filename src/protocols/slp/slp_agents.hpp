// Legacy SLP applications: a Service Agent (answers lookups) and a User
// Agent (issues lookups) -- the OpenSLP stand-ins of the case study.
//
// Latency model: the paper's Fig 12(a) measures OpenSLP answering a lookup
// in ~6.0 s (min 5982 / median 6022 / max 6053 ms); that cost sits on the
// SERVICE side of the exchange, which is why the paper's bridge cases ending
// in SLP (UPnP->SLP, Bonjour->SLP) also pay ~6.2 s (Fig 12(b) cases 3/6):
// "the cost of translation is bounded by the response of the legacy
// protocols". The ServiceAgent therefore charges a configurable
// responseDelay before replying, defaulting to the calibrated OpenSLP-like
// window; the UserAgent returns at the first matching reply.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "protocols/slp/slp_codec.hpp"

namespace starlink::slp {

/// Answers SrvRqst multicasts for one advertised service.
class ServiceAgent {
public:
    struct Config {
        std::string host = "10.0.0.2";
        std::string serviceType = "service:printer";
        std::string url = "service:printer://10.0.0.2:515/queue1";
        /// Service attributes, matched against request predicates (RFC 2608
        /// section 8.1; this subset evaluates single "(key=value)" terms).
        std::map<std::string, std::string> attributes;
        /// OpenSLP-like processing window before the reply leaves.
        net::Duration responseDelayBase = net::ms(5980);
        net::Duration responseDelayJitter = net::ms(70);
        std::uint64_t seed = 7;
    };

    ServiceAgent(net::Network& network, Config config);

    std::size_t requestsServed() const { return served_; }
    const Config& config() const { return config_; }

private:
    void onDatagram(const Bytes& payload, const net::Address& from);

    net::Network& network_;
    Config config_;
    Rng rng_;
    std::unique_ptr<net::UdpSocket> socket_;
    std::size_t served_ = 0;
};

/// Issues one SrvRqst and reports the replies.
class UserAgent {
public:
    struct Config {
        std::string host = "10.0.0.1";
        /// Give up if nothing answers within this window (OpenSLP's default
        /// multicast wait is 15 s).
        net::Duration timeout = net::ms(15000);
        /// Re-multicast the pending SrvRqst every interval until a reply
        /// lands (OpenSLP paces multicast convergence the same way).
        /// 0 = never retransmit (the default keeps runs byte-identical).
        net::Duration retransmitInterval = net::ms(0);
    };

    struct Result {
        std::vector<std::string> urls;       // empty == lookup timed out
        net::Duration elapsed = net::ms(0);  // request out -> first reply (or timeout)
    };
    using Callback = std::function<void(const Result&)>;

    UserAgent(net::Network& network, Config config);

    /// Multicasts a lookup for `serviceType`; the callback fires at the
    /// first matching reply or at timeout. One lookup may be in flight at a
    /// time per agent.
    void lookup(const std::string& serviceType, Callback callback);

private:
    void onDatagram(const Bytes& payload, const net::Address& from);
    void finish(Result result);

    net::Network& network_;
    Config config_;
    std::unique_ptr<net::UdpSocket> socket_;
    std::uint16_t nextXid_ = 0x1000;

    std::optional<std::uint16_t> pendingXid_;
    net::TimePoint sentAt_{};
    std::optional<net::EventId> timeoutEvent_;
    std::optional<net::EventId> resendEvent_;
    Bytes lastRequest_;
    Callback callback_;

    void scheduleResend();
};

}  // namespace starlink::slp
