// Service Location Protocol v2 wire codec (RFC 2608 subset).
//
// This is a LEGACY protocol stack: hand-written, entirely independent of the
// Starlink MDL machinery, standing in for OpenSLP in the paper's evaluation
// (DESIGN.md section 1). The subset covers service discovery as the paper
// exercises it:
//   - SrvRqst (FunctionID 1) with PR list, service type, predicate and SPI
//     (the exact field list of the paper's Fig 7 MDL);
//   - SrvRply (FunctionID 2) with an error code and ONE URL entry, without
//     authentication blocks.
//
// Header layout (bits): Version 8 | FunctionID 8 | MessageLength 24 |
// Reserved 16 | NextExtOffset 24 | XID 16 | LangTagLen 16 | LangTag ...
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace starlink::slp {

inline constexpr std::uint8_t kVersion = 2;
inline constexpr std::uint8_t kFnSrvRqst = 1;
inline constexpr std::uint8_t kFnSrvRply = 2;

/// SLP's administratively scoped discovery group (RFC 2608 uses
/// 239.255.255.253; the paper quotes port 427).
inline constexpr const char* kGroup = "239.255.255.253";
inline constexpr std::uint16_t kPort = 427;

struct SrvRequest {
    std::uint16_t xid = 0;
    std::string langTag = "en";
    std::string prList;      // previous responders
    std::string serviceType; // e.g. "service:printer"
    std::string predicate;
    std::string spi;
};

struct SrvReply {
    std::uint16_t xid = 0;
    std::string langTag = "en";
    std::uint16_t errorCode = 0;
    std::uint16_t lifetime = 65535;
    std::string url;  // single URL entry
};

Bytes encode(const SrvRequest& message);
Bytes encode(const SrvReply& message);

/// Function ID of an encoded message; nullopt when the buffer is not an SLP
/// v2 message.
std::optional<std::uint8_t> peekFunction(const Bytes& data);

std::optional<SrvRequest> decodeRequest(const Bytes& data);
std::optional<SrvReply> decodeReply(const Bytes& data);

}  // namespace starlink::slp
