#include "protocols/ssdp/ssdp_agents.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"

namespace starlink::ssdp {

// ---------------------------------------------------------------------------
// Device

Device::Device(net::Network& network, Config config)
    : network_(network), config_(std::move(config)), rng_(config_.seed) {
    socket_ = network_.openUdp(config_.host, kPort);
    socket_->joinGroup(net::Address{kGroup, kPort});
    socket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onDatagram(payload, from);
    });

    http::Server::Config httpConfig;
    httpConfig.host = config_.host;
    httpConfig.port = config_.httpPort;
    httpConfig.seed = config_.seed + 1;
    httpServer_ = std::make_unique<http::Server>(network_, httpConfig);
    httpServer_->addResource(config_.descriptionPath, descriptionBody());
}

std::string Device::location() const {
    return "http://" + config_.host + ":" + std::to_string(config_.httpPort) +
           config_.descriptionPath;
}

std::string Device::descriptionBody() const {
    return "<root xmlns=\"urn:schemas-upnp-org:device-1-0\"><device>"
           "<deviceType>urn:schemas-upnp-org:device:Printer:1</deviceType>"
           "<friendlyName>Simulated printer</friendlyName>"
           "<URLBase>" + config_.serviceUrl + "</URLBase>"
           "<serviceList><service><serviceType>" + config_.st + "</serviceType>"
           "</service></serviceList>"
           "</device></root>";
}

void Device::onDatagram(const Bytes& payload, const net::Address& from) {
    const auto search = decodeMSearch(payload);
    if (!search) return;
    if (search->st != "ssdp:all" && search->st != config_.st) return;

    Response response;
    response.st = config_.st;
    response.usn = config_.usn + "::" + config_.st;
    response.location = location();

    const auto jitterUs = config_.responseDelayJitter.count();
    const net::Duration delay =
        config_.responseDelayBase + (jitterUs > 0 ? net::us(rng_.range(0, jitterUs)) : net::us(0));
    const Bytes encoded = encode(response);
    network_.scheduler().schedule(delay, [this, encoded, from] {
        socket_->sendTo(from, encoded);
        ++answered_;
    });
}

// ---------------------------------------------------------------------------
// ControlPoint

ControlPoint::ControlPoint(net::Network& network, Config config)
    : network_(network),
      config_(std::move(config)),
      rng_(config_.seed),
      httpClient_(network, config_.host) {
    socket_ = network_.openUdp(config_.host);
    socket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onDatagram(payload, from);
    });
}

void ControlPoint::search(const std::string& st, Callback callback) {
    if (searching_) {
        STARLINK_LOG(Warn, "ssdp-cp") << "search already in flight; ignoring";
        return;
    }
    searching_ = true;
    windowExpired_ = false;
    fetching_ = false;
    callback_ = std::move(callback);
    collected_.clear();
    sentAt_ = network_.now();

    MSearch search;
    search.st = st;
    lastSearch_ = encode(search);
    socket_->sendTo(net::Address{kGroup, kPort}, lastSearch_);
    scheduleResend();

    const auto jitterUs = config_.mxWindowJitter.count();
    const net::Duration window =
        config_.mxWindowBase + (jitterUs > 0 ? net::us(rng_.range(0, jitterUs)) : net::us(0));
    network_.scheduler().schedule(window, [this] { windowClosed(); });
    if (config_.timeout.count() > 0) {
        timeoutEvent_ = network_.scheduler().schedule(config_.timeout, [this] {
            timeoutEvent_.reset();
            if (!searching_ || fetching_) return;
            Result result;
            result.elapsed = std::chrono::duration_cast<net::Duration>(network_.now() - sentAt_);
            finish(std::move(result));
        });
    }
}

void ControlPoint::onDatagram(const Bytes& payload, const net::Address&) {
    if (!searching_ || fetching_) return;
    const auto response = decodeResponse(payload);
    if (!response) return;
    collected_.push_back(*response);
    // A response after the empty window closed resumes processing at once.
    if (windowExpired_) windowClosed();
}

void ControlPoint::scheduleResend() {
    if (config_.retransmitInterval.count() <= 0) return;
    resendEvent_ = network_.scheduler().schedule(config_.retransmitInterval, [this] {
        resendEvent_.reset();
        // Keep searching only while no device has answered at all.
        if (!searching_ || fetching_ || !collected_.empty()) return;
        socket_->sendTo(net::Address{kGroup, kPort}, lastSearch_);
        scheduleResend();
    });
}

void ControlPoint::finish(Result result) {
    searching_ = false;
    fetching_ = false;
    if (timeoutEvent_) {
        network_.scheduler().cancel(*timeoutEvent_);
        timeoutEvent_.reset();
    }
    if (resendEvent_) {
        network_.scheduler().cancel(*resendEvent_);
        resendEvent_.reset();
    }
    Callback cb = std::move(callback_);
    callback_ = nullptr;
    if (cb) cb(result);
}

void ControlPoint::windowClosed() {
    if (!searching_ || fetching_) return;
    if (collected_.empty()) {
        // Unbounded wait: stay subscribed until a device answers.
        windowExpired_ = true;
        return;
    }
    fetching_ = true;

    // Fetch the first device's description and surface its URLBase.
    const Response first = collected_.front();
    std::string host;
    std::uint16_t port = 80;
    std::string path = "/";
    {
        std::string rest = first.location;
        if (const std::size_t scheme = rest.find("://"); scheme != std::string::npos) {
            rest = rest.substr(scheme + 3);
        }
        const std::size_t slash = rest.find('/');
        const std::string authority = slash == std::string::npos ? rest : rest.substr(0, slash);
        path = slash == std::string::npos ? "/" : rest.substr(slash);
        const auto hostPort = splitFirst(authority, ':');
        if (hostPort) {
            host = hostPort->first;
            const auto parsed = parseInt(hostPort->second);
            if (parsed) port = static_cast<std::uint16_t>(*parsed);
        } else {
            host = authority;
        }
    }

    httpClient_.get(host, port, path, [this](std::optional<http::Response> response) {
        Result result;
        if (response && response->status == 200) {
            if (const auto urlBase = extractUrlBase(response->body)) {
                result.urls.push_back(*urlBase);
            }
        }
        result.elapsed = std::chrono::duration_cast<net::Duration>(network_.now() - sentAt_);
        finish(std::move(result));
    });
}

std::optional<std::string> extractUrlBase(const std::string& description) {
    const std::size_t open = description.find("<URLBase>");
    if (open == std::string::npos) return std::nullopt;
    const std::size_t start = open + 9;
    const std::size_t close = description.find("</URLBase>", start);
    if (close == std::string::npos) return std::nullopt;
    return trim(description.substr(start, close - start));
}

}  // namespace starlink::ssdp
