#include "protocols/ssdp/ssdp_codec.hpp"

#include <map>

#include "common/strings.hpp"

namespace starlink::ssdp {

namespace {

constexpr const char* kCrlf = "\r\n";

/// Splits a text datagram into (request line, lowercased-header map).
/// Returns false when there is no request line.
bool splitMessage(const Bytes& data, std::string& requestLine,
                  std::map<std::string, std::string>& headers) {
    const std::string text = toString(data);
    const std::vector<std::string> lines = split(text, std::string_view(kCrlf));
    if (lines.empty()) return false;
    requestLine = lines[0];
    for (std::size_t i = 1; i < lines.size(); ++i) {
        if (lines[i].empty()) break;
        const auto halves = splitFirst(lines[i], ':');
        if (!halves) continue;  // lenient: skip malformed lines
        headers[toLower(trim(halves->first))] = trim(halves->second);
    }
    return true;
}

}  // namespace

Bytes encode(const MSearch& message) {
    std::string out = "M-SEARCH * HTTP/1.1";
    out += kCrlf;
    out += "HOST: " + message.host + kCrlf;
    out += "MAN: " + message.man + kCrlf;
    out += "MX: " + std::to_string(message.mx) + kCrlf;
    out += "ST: " + message.st + kCrlf;
    out += kCrlf;
    return toBytes(out);
}

Bytes encode(const Response& message) {
    std::string out = "HTTP/1.1 200 OK";
    out += kCrlf;
    out += "CACHE-CONTROL: " + message.cacheControl + kCrlf;
    out += "EXT: " + std::string(kCrlf);
    out += "LOCATION: " + message.location + kCrlf;
    out += "SERVER: " + message.server + kCrlf;
    out += "ST: " + message.st + kCrlf;
    out += "USN: " + message.usn + kCrlf;
    out += kCrlf;
    return toBytes(out);
}

std::optional<MSearch> decodeMSearch(const Bytes& data) {
    std::string requestLine;
    std::map<std::string, std::string> headers;
    if (!splitMessage(data, requestLine, headers)) return std::nullopt;
    if (!startsWith(requestLine, "M-SEARCH")) return std::nullopt;
    MSearch out;
    if (const auto it = headers.find("st"); it != headers.end()) out.st = it->second;
    if (const auto it = headers.find("host"); it != headers.end()) out.host = it->second;
    if (const auto it = headers.find("man"); it != headers.end()) out.man = it->second;
    if (const auto it = headers.find("mx"); it != headers.end()) {
        const auto mx = parseInt(it->second);
        if (mx) out.mx = static_cast<int>(*mx);
    }
    return out;
}

std::optional<Response> decodeResponse(const Bytes& data) {
    std::string requestLine;
    std::map<std::string, std::string> headers;
    if (!splitMessage(data, requestLine, headers)) return std::nullopt;
    if (!startsWith(requestLine, "HTTP/1.1 200")) return std::nullopt;
    Response out;
    if (const auto it = headers.find("st"); it != headers.end()) out.st = it->second;
    if (const auto it = headers.find("usn"); it != headers.end()) out.usn = it->second;
    if (const auto it = headers.find("location"); it != headers.end()) out.location = it->second;
    if (const auto it = headers.find("cache-control"); it != headers.end()) {
        out.cacheControl = it->second;
    }
    if (const auto it = headers.find("server"); it != headers.end()) out.server = it->second;
    if (out.location.empty()) return std::nullopt;  // discovery response must point somewhere
    return out;
}

}  // namespace starlink::ssdp
