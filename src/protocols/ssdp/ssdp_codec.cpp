#include "protocols/ssdp/ssdp_codec.hpp"

#include "common/strings.hpp"

namespace starlink::ssdp {

namespace {

constexpr const char* kCrlf = "\r\n";

/// Splits a text datagram into (request line, header list). Casing is
/// preserved; lookups go through the shared case-insensitive findHeader,
/// same as the HTTP codec. Returns false when there is no request line.
bool splitMessage(const Bytes& data, std::string& requestLine, HeaderList& headers) {
    const std::string text = toString(data);
    const std::vector<std::string> lines = split(text, std::string_view(kCrlf));
    if (lines.empty()) return false;
    requestLine = lines[0];
    for (std::size_t i = 1; i < lines.size(); ++i) {
        if (lines[i].empty()) break;
        const auto halves = splitFirst(lines[i], ':');
        if (!halves) continue;  // lenient: skip malformed lines
        headers.emplace_back(trim(halves->first), trim(halves->second));
    }
    return true;
}

}  // namespace

Bytes encode(const MSearch& message) {
    std::string out = "M-SEARCH * HTTP/1.1";
    out += kCrlf;
    out += "HOST: " + message.host + kCrlf;
    out += "MAN: " + message.man + kCrlf;
    out += "MX: " + std::to_string(message.mx) + kCrlf;
    out += "ST: " + message.st + kCrlf;
    out += kCrlf;
    return toBytes(out);
}

Bytes encode(const Response& message) {
    std::string out = "HTTP/1.1 200 OK";
    out += kCrlf;
    out += "CACHE-CONTROL: " + message.cacheControl + kCrlf;
    out += "EXT: " + std::string(kCrlf);
    out += "LOCATION: " + message.location + kCrlf;
    out += "SERVER: " + message.server + kCrlf;
    out += "ST: " + message.st + kCrlf;
    out += "USN: " + message.usn + kCrlf;
    out += kCrlf;
    return toBytes(out);
}

std::optional<MSearch> decodeMSearch(const Bytes& data) {
    std::string requestLine;
    HeaderList headers;
    if (!splitMessage(data, requestLine, headers)) return std::nullopt;
    if (!startsWith(requestLine, "M-SEARCH")) return std::nullopt;
    MSearch out;
    if (const auto st = findHeader(headers, "ST")) out.st = *st;
    if (const auto host = findHeader(headers, "Host")) out.host = *host;
    if (const auto man = findHeader(headers, "MAN")) out.man = *man;
    if (const auto mxText = findHeader(headers, "MX")) {
        const auto mx = parseInt(*mxText);
        if (mx) out.mx = static_cast<int>(*mx);
    }
    return out;
}

std::optional<Response> decodeResponse(const Bytes& data) {
    std::string requestLine;
    HeaderList headers;
    if (!splitMessage(data, requestLine, headers)) return std::nullopt;
    if (!startsWith(requestLine, "HTTP/1.1 200")) return std::nullopt;
    Response out;
    if (const auto st = findHeader(headers, "ST")) out.st = *st;
    if (const auto usn = findHeader(headers, "USN")) out.usn = *usn;
    if (const auto location = findHeader(headers, "Location")) out.location = *location;
    if (const auto cache = findHeader(headers, "Cache-Control")) out.cacheControl = *cache;
    if (const auto server = findHeader(headers, "Server")) out.server = *server;
    if (out.location.empty()) return std::nullopt;  // discovery response must point somewhere
    return out;
}

}  // namespace starlink::ssdp
