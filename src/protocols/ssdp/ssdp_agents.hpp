// Legacy UPnP applications: an SSDP device (with its HTTP description
// server) and a control point -- the Cyberlink stand-ins.
//
// UPnP discovery is two protocols in sequence (exactly how the paper models
// it, Figs 2-4): the control point multicasts an SSDP M-SEARCH, devices
// answer with a LOCATION URL, then the control point fetches the device
// description over HTTP and reads its URLBase.
//
// Latency model: Fig 12(a) puts a native UPnP lookup at ~1.0 s (945/1014/
// 1079 ms). Cyberlink-style control points wait out an MX-derived window
// before processing answers, then pay the HTTP fetch; the device itself
// answers M-SEARCH after ~250 ms and its HTTP server after ~40 ms, which is
// all a Starlink bridge pays on the UPnP leg (Fig 12(b) case 1 at ~337 ms).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "protocols/http/http_agents.hpp"
#include "protocols/ssdp/ssdp_codec.hpp"

namespace starlink::ssdp {

/// An advertised UPnP device: SSDP answering + HTTP description serving.
class Device {
public:
    struct Config {
        std::string host = "10.0.0.3";
        std::string st = "urn:schemas-upnp-org:service:printer:1";
        std::string usn = "uuid:sim-device-0001";
        std::uint16_t httpPort = 8080;
        std::string descriptionPath = "/desc.xml";
        /// The service control URL advertised through URLBase.
        std::string serviceUrl = "http://10.0.0.3:9090/print";
        net::Duration responseDelayBase = net::ms(240);
        net::Duration responseDelayJitter = net::ms(25);
        std::uint64_t seed = 19;
    };

    Device(net::Network& network, Config config);

    std::size_t searchesAnswered() const { return answered_; }
    const Config& config() const { return config_; }
    std::string location() const;
    std::string descriptionBody() const;

private:
    void onDatagram(const Bytes& payload, const net::Address& from);

    net::Network& network_;
    Config config_;
    Rng rng_;
    std::unique_ptr<net::UdpSocket> socket_;
    std::unique_ptr<http::Server> httpServer_;
    std::size_t answered_ = 0;
};

/// Searches for a device and resolves its service URL (SSDP + HTTP GET).
class ControlPoint {
public:
    struct Config {
        std::string host = "10.0.0.1";
        /// Cyberlink-style response aggregation window before the HTTP fetch.
        net::Duration mxWindowBase = net::ms(900);
        net::Duration mxWindowJitter = net::ms(90);
        /// When the window closes empty the control point KEEPS WAITING and
        /// proceeds at the first late response ("Cyberlink does not bound
        /// the response time" -- paper section VI). A non-zero timeout
        /// bounds that wait for fault-injection tests; 0 = unbounded.
        net::Duration timeout = net::ms(0);
        /// Re-multicast the M-SEARCH every interval while no device has
        /// answered (UPnP 1.1 recommends sending the search more than once).
        /// 0 = never retransmit (default).
        net::Duration retransmitInterval = net::ms(0);
        std::uint64_t seed = 23;
    };

    struct Result {
        std::vector<std::string> urls;       // URLBase of each resolved device
        net::Duration elapsed = net::ms(0);  // search out -> description parsed
    };
    using Callback = std::function<void(const Result&)>;

    ControlPoint(net::Network& network, Config config);

    /// One search at a time per control point.
    void search(const std::string& st, Callback callback);

private:
    void onDatagram(const Bytes& payload, const net::Address& from);
    void windowClosed();
    void finish(Result result);

    net::Network& network_;
    Config config_;
    Rng rng_;
    std::unique_ptr<net::UdpSocket> socket_;
    http::Client httpClient_;

    bool searching_ = false;
    bool windowExpired_ = false;
    bool fetching_ = false;
    net::TimePoint sentAt_{};
    std::vector<Response> collected_;
    std::optional<net::EventId> timeoutEvent_;
    std::optional<net::EventId> resendEvent_;
    Bytes lastSearch_;
    Callback callback_;

    void scheduleResend();
};

/// Pulls the URLBase element out of a device description document.
std::optional<std::string> extractUrlBase(const std::string& description);

}  // namespace starlink::ssdp
