// SSDP text codec (UPnP discovery step 1).
//
// LEGACY stack standing in for Cyberlink's SSDP layer. Wire format per the
// UPnP Device Architecture:
//
//   M-SEARCH * HTTP/1.1\r\n          HTTP/1.1 200 OK\r\n
//   HOST: 239.255.255.250:1900\r\n   CACHE-CONTROL: max-age=1800\r\n
//   MAN: "ssdp:discover"\r\n         EXT:\r\n
//   MX: 2\r\n                        LOCATION: http://10.0.0.3:8080/desc.xml\r\n
//   ST: urn:...:service:printer:1    SERVER: Starlink-Sim/1.0\r\n
//   \r\n                             ST: urn:...\r\n
//                                    USN: uuid:...::urn:...\r\n\r\n
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace starlink::ssdp {

inline constexpr const char* kGroup = "239.255.255.250";
inline constexpr std::uint16_t kPort = 1900;

struct MSearch {
    std::string st = "ssdp:all";  // search target
    int mx = 2;                   // seconds a device may delay its answer
    std::string host = std::string(kGroup) + ":1900";
    std::string man = "\"ssdp:discover\"";
};

struct Response {
    std::string st;
    std::string usn;
    std::string location;  // URL of the device description
    std::string cacheControl = "max-age=1800";
    std::string server = "Starlink-Sim/1.0 UPnP/1.0";
};

Bytes encode(const MSearch& message);
Bytes encode(const Response& message);

std::optional<MSearch> decodeMSearch(const Bytes& data);
std::optional<Response> decodeResponse(const Bytes& data);

}  // namespace starlink::ssdp
