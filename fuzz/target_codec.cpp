// Differential codec fuzzing: arbitrary wire bytes through every in-tree
// dialect codec, comparing the compiled CodecPlan path against the retained
// interpreter oracle. The two paths were written independently (PR 2 kept the
// interpreter precisely as a reference semantics), so any disagreement --
// accept/reject verdict, parsed field values, re-composed bytes, or the
// error code of a throw -- is a real bug in one of them.
//
// Input layout: byte 0 selects the protocol (mod #codecs), the rest is the
// wire image handed to parse().
#include "fuzz/targets.hpp"

#include <array>
#include <exception>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/mdl/codec.hpp"

namespace starlink::fuzz {
namespace {

const std::array<std::shared_ptr<mdl::MessageCodec>, 6>& codecs() {
    // Built once: the six MDLs are trusted in-tree documents; the fuzz input
    // only ever touches the wire-bytes side.
    static const std::array<std::shared_ptr<mdl::MessageCodec>, 6> instances = {
        mdl::MessageCodec::fromXml(bridge::models::slpMdl()),
        mdl::MessageCodec::fromXml(bridge::models::dnsMdl()),
        mdl::MessageCodec::fromXml(bridge::models::ssdpMdl()),
        mdl::MessageCodec::fromXml(bridge::models::httpMdl()),
        mdl::MessageCodec::fromXml(bridge::models::ldapMdl()),
        mdl::MessageCodec::fromXml(bridge::models::wsdMdl()),
    };
    return instances;
}

/// Outcome of one compose attempt: either bytes or the taxonomy code of the
/// StarlinkError it threw. A raw (uncoded) exception aborts immediately.
struct ComposeOutcome {
    bool threw = false;
    errc::ErrorCode code = errc::ErrorCode::Ok;
    Bytes bytes;
};

template <typename Fn>
ComposeOutcome runCompose(const char* path, Fn&& fn) {
    ComposeOutcome outcome;
    try {
        outcome.bytes = fn();
    } catch (const StarlinkError& error) {
        outcome.threw = true;
        outcome.code = error.code();
    } catch (const std::exception& error) {
        fail("codec compose must throw coded StarlinkError only",
             std::string(path) + " threw uncoded " + error.what());
    }
    return outcome;
}

}  // namespace

int fuzzCodecInput(const std::uint8_t* data, std::size_t size) {
    if (size == 0) return 0;
    const auto& all = codecs();
    const auto& codec = all[data[0] % all.size()];
    const Bytes wire(data + 1, data + size);

    // Parse differentially. Rejections come back as (nullopt, reason), never
    // as exceptions -- a throw out of parse() is itself a finding.
    std::optional<AbstractMessage> viaPlan, viaInterp;
    std::string planError, interpError;
    try {
        viaPlan = codec->parse(wire, &planError);
        viaInterp = codec->parseInterpreted(wire, &interpError);
    } catch (const std::exception& error) {
        fail("codec parse must reject via nullopt, never throw",
             codec->protocol() + ": " + error.what());
    }

    require(viaPlan.has_value() == viaInterp.has_value(),
            "plan and interpreter must agree on accept/reject",
            codec->protocol() + ": plan=" + (viaPlan ? "accept" : "reject [" + planError + "]") +
                " interp=" + (viaInterp ? "accept" : "reject [" + interpError + "]"));
    if (!viaPlan) return 0;

    require(*viaPlan == *viaInterp, "plan and interpreter must parse identical messages",
            codec->protocol() + ": message '" + viaPlan->type() + "' differs between paths");

    // Re-compose what was parsed, again through both paths. Both must agree:
    // identical bytes, or a throw with the same taxonomy code.
    const ComposeOutcome plan = runCompose("plan", [&] {
        Bytes out;
        codec->composeInto(*viaPlan, out);
        return out;
    });
    const ComposeOutcome interp =
        runCompose("interpreter", [&] { return codec->composeInterpreted(*viaInterp); });

    require(plan.threw == interp.threw, "plan and interpreter must agree on compose throw",
            codec->protocol() + ": plan " + (plan.threw ? "threw" : "composed") + ", interp " +
                (interp.threw ? "threw" : "composed"));
    if (plan.threw) {
        require(plan.code == interp.code, "compose throws must carry the same taxonomy code",
                codec->protocol() + ": plan=" + errc::to_string(plan.code) +
                    " interp=" + errc::to_string(interp.code));
        return 0;
    }
    require(plan.bytes == interp.bytes, "plan and interpreter must compose identical bytes",
            codec->protocol() + ": compose output differs for '" + viaPlan->type() + "'");
    return 0;
}

}  // namespace starlink::fuzz
