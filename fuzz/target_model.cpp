// Model-document fuzzing: arbitrary bytes treated as an XML model document
// and pushed through every loader that accepts untrusted files -- the linter
// front door, the MDL codec loader, the colored-automaton loader, and the
// bridge loader. The contract under test is the taxonomy itself:
//
//   * the linter NEVER throws (it converts every defect into diagnostics,
//     and every diagnostic carries a mapped taxonomy code);
//   * the runtime loaders either succeed or throw a coded StarlinkError --
//     a raw std::exception (or worse, a crash / runaway recursion) escaping
//     a loader is a finding.
#include "fuzz/targets.hpp"

#include <exception>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/automata/color.hpp"
#include "core/lint/linter.hpp"
#include "core/mdl/codec.hpp"
#include "core/merge/spec_loader.hpp"

namespace starlink::fuzz {
namespace {

/// Runs one loader; success and coded throws are both fine, anything else
/// aborts with the loader's name in the crash log.
template <typename Fn>
void mustSucceedOrThrowCoded(const char* loader, Fn&& fn) {
    try {
        fn();
    } catch (const StarlinkError& error) {
        // Coded rejection -- the expected failure mode. Unclassified would
        // mean someone constructed a StarlinkError without a real code;
        // treat that as a taxonomy escape too.
        require(error.code() != errc::ErrorCode::Unclassified,
                "loader errors must carry a classified taxonomy code",
                std::string(loader) + ": " + error.what());
    } catch (const std::exception& error) {
        fail("loaders must throw coded StarlinkError only",
             std::string(loader) + " threw uncoded " + error.what());
    }
}

}  // namespace

int fuzzModelInput(const std::uint8_t* data, std::size_t size) {
    const std::string text(reinterpret_cast<const char*>(data), size);

    // Linter: the no-throw front door. Every finding must map into the
    // taxonomy (codeForRule leaves unknown rule ids Unclassified, so an
    // unmapped diagnostic here means a rule was added without a code).
    try {
        lint::Linter linter;
        linter.addModel("fuzz-input", text);
        for (const auto& diagnostic : linter.run()) {
            require(diagnostic.code != errc::ErrorCode::Unclassified,
                    "every lint diagnostic must alias a taxonomy code",
                    "rule '" + diagnostic.rule + "': " + diagnostic.message);
        }
    } catch (const std::exception& error) {
        fail("the linter must never throw", error.what());
    }

    // Runtime loaders: each parses the same bytes independently, so a
    // document that happens to look like one kind still exercises the
    // "wrong root element" paths of the other two.
    mustSucceedOrThrowCoded("MessageCodec::fromXml",
                            [&] { mdl::MessageCodec::fromXml(text); });
    mustSucceedOrThrowCoded("merge::loadAutomaton", [&] {
        automata::ColorRegistry registry;
        merge::loadAutomaton(text, registry);
    });
    mustSucceedOrThrowCoded("merge::loadBridge", [&] { merge::loadBridge(text, {}); });
    return 0;
}

}  // namespace starlink::fuzz
