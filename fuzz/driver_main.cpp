// Entry point for the fuzz driver executables. Compiled once per target with
// -DSTARLINK_FUZZ_ENTRY=<fuzzCodecInput|fuzzModelInput|fuzzSessionInput>.
//
// Under clang, CMake links -fsanitize=fuzzer and this file only provides
// LLVMFuzzerTestOneInput. Under gcc (no libFuzzer runtime in the image) the
// same binary gets a standalone main() that can
//   * replay corpus files / directories (the CI smoke mode), and
//   * run a bounded deterministic mutation loop over those seeds
//     (--mutate N [rngSeed]) -- a poor man's fuzzer, but reproducible:
//     the same (seeds, rngSeed) always explores the same inputs.
#include "fuzz/targets.hpp"

#ifndef STARLINK_FUZZ_ENTRY
#error "compile with -DSTARLINK_FUZZ_ENTRY=<target function name>"
#endif

namespace starlink::fuzz {
int STARLINK_FUZZ_ENTRY(const std::uint8_t* data, std::size_t size);
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    return starlink::fuzz::STARLINK_FUZZ_ENTRY(data, size);
}

#ifndef STARLINK_USE_LIBFUZZER

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace {

#define STARLINK_STRINGIFY_(x) #x
#define STARLINK_STRINGIFY(x) STARLINK_STRINGIFY_(x)

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--mutate N [rngSeed]] <file-or-dir>...\n"
                 "  target: %s\n"
                 "  Replays each input through the target; with --mutate, additionally\n"
                 "  runs N deterministic mutations per seed. Exits 0 unless an\n"
                 "  invariant aborts the process.\n",
                 argv0, STARLINK_STRINGIFY(STARLINK_FUZZ_ENTRY));
}

std::vector<std::string> collectInputs(const std::vector<std::string>& paths) {
    std::vector<std::string> files;
    for (const auto& path : paths) {
        if (std::filesystem::is_directory(path)) {
            for (const auto& entry : std::filesystem::recursive_directory_iterator(path)) {
                if (entry.is_regular_file()) files.push_back(entry.path().string());
            }
        } else {
            files.push_back(path);
        }
    }
    // Directory iteration order is unspecified; sort so runs are comparable.
    std::sort(files.begin(), files.end());
    return files;
}

}  // namespace

int main(int argc, char** argv) {
    long mutations = 0;
    std::uint64_t rngSeed = 0x5eed5eedULL;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mutate") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            mutations = std::strtol(argv[++i], nullptr, 10);
            if (i + 1 < argc && argv[i + 1][0] != '-' &&
                !std::filesystem::exists(argv[i + 1])) {
                rngSeed = std::strtoull(argv[++i], nullptr, 10);
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage(argv[0]);
        return 2;
    }

    const auto files = collectInputs(paths);
    std::size_t executions = 0;
    for (const auto& file : files) {
        const auto seed = starlink::fuzz::loadCorpusInput(file);
        LLVMFuzzerTestOneInput(seed.data(), seed.size());
        ++executions;
        std::uint64_t rng = rngSeed ^ (0x9e3779b97f4a7c15ULL * (executions + 1));
        for (long round = 0; round < mutations; ++round) {
            const auto mutated = starlink::fuzz::mutate(seed, rng);
            LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
            ++executions;
        }
    }
    std::printf("%s: %zu inputs (%zu seeds), all invariants held\n",
                STARLINK_STRINGIFY(STARLINK_FUZZ_ENTRY), executions, files.size());
    return 0;
}

#endif  // !STARLINK_USE_LIBFUZZER
