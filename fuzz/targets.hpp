// Fuzz targets: one entry point per trust boundary the taxonomy hardens.
//
// Each target consumes an arbitrary byte string and checks the INVARIANTS
// the rest of the repo relies on, aborting the process on any violation
// (that is the fuzzing contract: a crash is a finding):
//
//   fuzzCodecInput    wire bytes -> every dialect codec, differentially:
//                     the compiled CodecPlan and the retained interpreter
//                     oracle must agree byte-for-byte -- same accept/reject
//                     verdict, equal parsed messages, identical re-composed
//                     bytes, and identical coded throws.
//   fuzzModelInput    document bytes -> xml parser, linter, MDL loader,
//                     automaton loader, bridge loader: each must either
//                     succeed or raise a CODED StarlinkError -- never a raw
//                     std::exception, never a crash, never unbounded work.
//   fuzzSessionInput  datagram stream -> a deployed slp-to-upnp bridge on
//                     the sim network: the engine must survive (keep
//                     running), and every session abort must land in the
//                     taxonomy (code != Ok, != Unclassified).
//
// The targets are a plain library so the committed corpus replays as an
// ordinary ctest (tests/test_fuzz_corpus.cpp) without a fuzzing toolchain;
// the STARLINK_FUZZ CMake option additionally builds driver executables
// (libFuzzer under clang, a standalone replay/mutation driver under gcc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace starlink::fuzz {

int fuzzCodecInput(const std::uint8_t* data, std::size_t size);
int fuzzModelInput(const std::uint8_t* data, std::size_t size);
int fuzzSessionInput(const std::uint8_t* data, std::size_t size);

/// Abort with a message when a fuzz invariant is violated. Inlined into the
/// targets so the failure text names the broken invariant in the crash log.
[[noreturn]] void fail(const std::string& invariant, const std::string& detail);

inline void require(bool ok, const std::string& invariant, const std::string& detail) {
    if (!ok) fail(invariant, detail);
}

/// Loads one corpus input. Files ending in ".hex" are hex-encoded with
/// '#'-prefixed provenance/comment lines (the committed seed format under
/// tests/corpus/); anything else is read as raw bytes.
std::vector<std::uint8_t> loadCorpusInput(const std::string& path);

/// Deterministic mutation of `seed` (bit flips, byte sets, truncation,
/// duplication, insertion) driven by an xorshift64 state. Both the
/// standalone driver and the in-tree corpus test use this, so a mutation
/// that found a bug is reproducible from (seed file, rng seed, round).
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed, std::uint64_t& rng);

}  // namespace starlink::fuzz
