// Session-stream fuzzing: arbitrary datagrams fired at a live slp-to-upnp
// bridge on the simulated network. This drives the runtime half of the
// taxonomy -- whatever the engine does with hostile traffic, it must
//
//   * keep running (a poisoned session must never take the bridge down),
//   * quiesce (the event queue drains; no runaway retransmit loops), and
//   * account for every session: completed, or aborted with a precise
//     taxonomy code. FailureCause and code must agree, and Unclassified
//     is the escape marker the whole exercise exists to catch.
//
// Input layout: byte 0 = datagram count (1..4); per datagram a 2-byte
// big-endian length prefix then payload bytes (clamped to what remains).
// Datagrams are injected 50 virtual ms apart from the client host into the
// SLP multicast group the bridge listens on, so consecutive datagrams can
// land inside one session's lifetime as easily as across sessions.
#include "fuzz/targets.hpp"

#include <algorithm>
#include <exception>
#include <string>

#include "common/bytes.hpp"
#include "common/log.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/engine/automata_engine.hpp"
#include "net/clock.hpp"
#include "net/scheduler.hpp"
#include "net/sim_network.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"

namespace starlink::fuzz {
namespace {

/// SLP service-request multicast endpoint from the in-tree model: this is
/// where the deployed bridge's client-facing color listens.
const net::Address kSlpMulticast{"239.255.255.253", 427};

constexpr std::size_t kMaxDatagrams = 4;
constexpr std::size_t kMaxSchedulerEvents = 200'000;

}  // namespace

int fuzzSessionInput(const std::uint8_t* data, std::size_t size) {
    if (size == 0) return 0;
    // Hostile datagrams legitimately produce warn-level engine chatter; at
    // fuzzing rates that log I/O dominates the run, so silence it once.
    [[maybe_unused]] static const bool quiet = [] {
        setLogLevel(LogLevel::Off);
        return true;
    }();
    try {
        net::VirtualClock clock;
        net::EventScheduler scheduler(clock);
        net::SimNetwork network(scheduler);
        bridge::Starlink starlink(network);
        auto& deployed = starlink.deploy(
            bridge::models::forCase(bridge::models::Case::SlpToUpnp, "10.0.0.9"), "10.0.0.9");
        // A real UPnP device answers the bridge's SSDP side, so inputs that
        // happen to be valid SLP requests exercise the COMPLETE translation
        // path, not just the abort paths.
        ssdp::Device upnpService(network, ssdp::Device::Config{});

        std::size_t offset = 0;
        const std::size_t count = 1 + data[offset++] % kMaxDatagrams;
        auto client = network.openUdp("10.0.0.1", 0);
        for (std::size_t i = 0; i < count && offset < size; ++i) {
            std::size_t length = 0;
            if (offset + 2 <= size) {
                length = static_cast<std::size_t>(data[offset]) << 8 | data[offset + 1];
                offset += 2;
            }
            length = std::min(length, size - offset);
            const Bytes payload(data + offset, data + offset + length);
            offset += length;
            scheduler.schedule(net::ms(static_cast<std::int64_t>(50 * i)),
                               [&client, payload] { client->sendTo(kSlpMulticast, payload); });
        }
        scheduler.runUntilIdle(kMaxSchedulerEvents);

        require(scheduler.pendingEvents() == 0, "the network must quiesce",
                "event queue still busy after " + std::to_string(kMaxSchedulerEvents) +
                    " events -- runaway loop");
        require(deployed.engine().running(), "the engine must survive hostile traffic",
                "engine stopped after fuzzed datagrams");

        for (const auto& session : deployed.engine().sessions()) {
            const errc::ErrorCode code = session.code;
            if (session.completed) {
                require(code == errc::ErrorCode::Ok && session.cause == engine::FailureCause::None,
                        "completed sessions must carry Ok",
                        "completed session has code " + std::string(errc::to_string(code)));
                continue;
            }
            require(code != errc::ErrorCode::Ok, "aborted sessions must carry an error code",
                    "aborted session recorded Ok");
            require(code != errc::ErrorCode::Unclassified,
                    "aborted sessions must land in the taxonomy",
                    "taxonomy escape: abort recorded common.unclassified");
            require(errc::fromInt(errc::to_error_code(code)).has_value(),
                    "session codes must be registered taxonomy members",
                    "abort code " + std::to_string(errc::to_error_code(code)) +
                        " is not in the catalogue");
            require(errc::layerOf(code) == errc::Layer::Engine ||
                        errc::layerOf(code) == errc::Layer::Net ||
                        errc::layerOf(code) == errc::Layer::Mdl ||
                        errc::layerOf(code) == errc::Layer::Merge ||
                        errc::layerOf(code) == errc::Layer::Bridge,
                    "session aborts must come from runtime layers",
                    std::string("abort code ") + errc::to_string(code) +
                        " is from a non-runtime layer");
        }
    } catch (const std::exception& error) {
        fail("the deployed bridge must absorb hostile traffic without throwing", error.what());
    }
    return 0;
}

}  // namespace starlink::fuzz
