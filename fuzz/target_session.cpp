// Session-stream fuzzing: arbitrary datagrams fired at a live bridge on the
// simulated network -- ALL SIX deployed directions, not just slp-to-upnp.
// This drives the runtime half of the taxonomy -- whatever the engine does
// with hostile traffic, it must
//
//   * keep running (a poisoned session must never take the bridge down),
//   * quiesce (the event queue drains; no runaway retransmit loops), and
//   * account for every session: completed, or aborted with a precise
//     taxonomy code. FailureCause and code must agree, and Unclassified
//     is the escape marker the whole exercise exists to catch.
//
// Input layout (v2):
//   byte 0          direction selector (mod 6 over bridge::models::Case)
//   byte 1          datagram count (1..4)
//   per datagram    1 channel byte: even = udp multicast into the
//                   direction's client-facing group; odd = raw tcp to the
//                   bridge's HTTP description leg (exercises the tcp-server
//                   parse path; on directions without an HTTP listener the
//                   connect is refused, which must also be absorbed),
//                   2-byte big-endian length prefix, then payload bytes
//                   (clamped to what remains).
// Datagrams are injected 50 virtual ms apart from the client host, so
// consecutive datagrams can land inside one session's lifetime as easily as
// across sessions.
#include "fuzz/targets.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/log.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/engine/automata_engine.hpp"
#include "net/clock.hpp"
#include "net/scheduler.hpp"
#include "net/sim_network.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"

namespace starlink::fuzz {
namespace {

using bridge::models::Case;

constexpr std::size_t kMaxDatagrams = 4;
constexpr std::size_t kMaxSchedulerEvents = 200'000;

/// The bridge's tcp HTTP description leg (models::forCase default port).
const net::Address kBridgeHttp{"10.0.0.9", 8085};

/// The client-facing multicast group the deployed bridge listens on: the
/// served protocol's well-known discovery endpoint.
net::Address clientMulticastFor(Case c) {
    switch (c) {
        case Case::SlpToUpnp:
        case Case::SlpToBonjour: return net::Address{"239.255.255.253", 427};
        case Case::UpnpToSlp:
        case Case::UpnpToBonjour: return net::Address{"239.255.255.250", 1900};
        case Case::BonjourToSlp:
        case Case::BonjourToUpnp: return net::Address{"224.0.0.251", 5353};
    }
    return net::Address{"239.255.255.253", 427};
}

/// Stands up the legacy service answering the bridge's QUERIED side (mirrors
/// the shard engine's per-direction switch), so inputs that happen to be
/// valid requests exercise the COMPLETE translation path, not just aborts.
struct ServiceSide {
    std::optional<slp::ServiceAgent> slp;
    std::optional<mdns::Responder> mdns;
    std::optional<ssdp::Device> upnp;

    ServiceSide(net::Network& network, Case c) {
        switch (c) {
            case Case::UpnpToSlp:
            case Case::BonjourToSlp: slp.emplace(network, slp::ServiceAgent::Config{}); break;
            case Case::SlpToBonjour:
            case Case::UpnpToBonjour: mdns.emplace(network, mdns::Responder::Config{}); break;
            case Case::SlpToUpnp:
            case Case::BonjourToUpnp: upnp.emplace(network, ssdp::Device::Config{}); break;
        }
    }
};

}  // namespace

int fuzzSessionInput(const std::uint8_t* data, std::size_t size) {
    if (size < 2) return 0;
    // Hostile datagrams legitimately produce warn-level engine chatter; at
    // fuzzing rates that log I/O dominates the run, so silence it once.
    [[maybe_unused]] static const bool quiet = [] {
        setLogLevel(LogLevel::Off);
        return true;
    }();
    try {
        net::VirtualClock clock;
        net::EventScheduler scheduler(clock);
        net::SimNetwork network(scheduler);
        bridge::Starlink starlink(network);

        std::size_t offset = 0;
        const Case caseId = static_cast<Case>(data[offset++] % 6);
        auto& deployed =
            starlink.deploy(bridge::models::forCase(caseId, "10.0.0.9"), "10.0.0.9");
        ServiceSide service(network, caseId);
        const net::Address group = clientMulticastFor(caseId);

        const std::size_t count = 1 + data[offset++] % kMaxDatagrams;
        auto client = network.openUdp("10.0.0.1", 0);
        for (std::size_t i = 0; i < count && offset < size; ++i) {
            const bool viaTcp = (data[offset++] & 1) != 0;
            std::size_t length = 0;
            if (offset + 2 <= size) {
                length = static_cast<std::size_t>(data[offset]) << 8 | data[offset + 1];
                offset += 2;
            }
            length = std::min(length, size - offset);
            const Bytes payload(data + offset, data + offset + length);
            offset += length;
            const net::Duration at = net::ms(static_cast<std::int64_t>(50 * i));
            if (viaTcp) {
                scheduler.schedule(at, [&network, payload] {
                    network.connectTcp(
                        "10.0.0.1", kBridgeHttp,
                        [payload](std::shared_ptr<net::TcpConnection> connection) {
                            if (!connection) return;  // no HTTP leg: refused, absorbed
                            try {
                                connection->send(payload);
                            } catch (const std::exception&) {
                                // Raced the bridge's session-end close; the
                                // CLIENT failing to send is not a bridge bug.
                            }
                        });
                });
            } else {
                scheduler.schedule(at, [&client, &group, payload] {
                    client->sendTo(group, payload);
                });
            }
        }
        scheduler.runUntilIdle(kMaxSchedulerEvents);

        require(scheduler.pendingEvents() == 0, "the network must quiesce",
                "event queue still busy after " + std::to_string(kMaxSchedulerEvents) +
                    " events -- runaway loop");
        require(deployed.engine().running(), "the engine must survive hostile traffic",
                "engine stopped after fuzzed datagrams");

        const auto& history = deployed.engine().sessions();
        require(history.totalEnded() == history.totalCompleted() + history.totalAborted(),
                "history aggregates must balance",
                "ended != completed + aborted after hostile traffic");
        for (const auto& session : history) {
            const errc::ErrorCode code = session.code;
            if (session.completed) {
                require(code == errc::ErrorCode::Ok && session.cause == engine::FailureCause::None,
                        "completed sessions must carry Ok",
                        "completed session has code " + std::string(errc::to_string(code)));
                continue;
            }
            require(code != errc::ErrorCode::Ok, "aborted sessions must carry an error code",
                    "aborted session recorded Ok");
            require(code != errc::ErrorCode::Unclassified,
                    "aborted sessions must land in the taxonomy",
                    "taxonomy escape: abort recorded common.unclassified");
            require(errc::fromInt(errc::to_error_code(code)).has_value(),
                    "session codes must be registered taxonomy members",
                    "abort code " + std::to_string(errc::to_error_code(code)) +
                        " is not in the catalogue");
            require(errc::layerOf(code) == errc::Layer::Engine ||
                        errc::layerOf(code) == errc::Layer::Net ||
                        errc::layerOf(code) == errc::Layer::Mdl ||
                        errc::layerOf(code) == errc::Layer::Merge ||
                        errc::layerOf(code) == errc::Layer::Bridge,
                    "session aborts must come from runtime layers",
                    std::string("abort code ") + errc::to_string(code) +
                        " is from a non-runtime layer");
        }
    } catch (const std::exception& error) {
        fail("the deployed bridge must absorb hostile traffic without throwing", error.what());
    }
    return 0;
}

}  // namespace starlink::fuzz
