// Shared plumbing for the fuzz harness: invariant-failure reporting, the
// committed-seed file format, and the deterministic mutator used when no
// libFuzzer toolchain is available.
#include "fuzz/targets.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace starlink::fuzz {

void fail(const std::string& invariant, const std::string& detail) {
    // stderr + abort, not an exception: under a fuzzer (or the corpus ctest)
    // the process death IS the signal, and abort() keeps the stack for the
    // sanitizer/debugger to report.
    std::fprintf(stderr, "\nFUZZ INVARIANT VIOLATED: %s\n  %s\n", invariant.c_str(),
                 detail.c_str());
    std::fflush(stderr);
    std::abort();
}

namespace {

int hexValue(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

std::vector<std::uint8_t> loadCorpusInput(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open corpus input: " + path);
    std::string raw((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

    const bool hex = path.size() >= 4 && path.compare(path.size() - 4, 4, ".hex") == 0;
    if (!hex) return std::vector<std::uint8_t>(raw.begin(), raw.end());

    // .hex format: '#' starts a comment until end of line (provenance notes);
    // everything else is hex digit pairs, whitespace ignored.
    std::vector<std::uint8_t> bytes;
    int pending = -1;
    bool inComment = false;
    for (char c : raw) {
        if (inComment) {
            if (c == '\n') inComment = false;
            continue;
        }
        if (c == '#') {
            inComment = true;
            continue;
        }
        const int v = hexValue(c);
        if (v < 0) {
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
            throw std::runtime_error("bad hex character in corpus input: " + path);
        }
        if (pending < 0) {
            pending = v;
        } else {
            bytes.push_back(static_cast<std::uint8_t>(pending << 4 | v));
            pending = -1;
        }
    }
    if (pending >= 0) throw std::runtime_error("odd hex digit count in corpus input: " + path);
    return bytes;
}

namespace {

std::uint64_t next(std::uint64_t& state) {
    // xorshift64: deterministic, dependency-free, good enough to drive
    // structural mutations. Never seeded from wall time -- runs replay.
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

}  // namespace

std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed, std::uint64_t& rng) {
    std::vector<std::uint8_t> out = seed;
    const int rounds = 1 + static_cast<int>(next(rng) % 8);
    for (int round = 0; round < rounds; ++round) {
        switch (next(rng) % 5) {
            case 0: {  // flip one bit
                if (out.empty()) break;
                const std::size_t at = next(rng) % out.size();
                out[at] ^= static_cast<std::uint8_t>(1u << (next(rng) % 8));
                break;
            }
            case 1: {  // overwrite one byte
                if (out.empty()) break;
                out[next(rng) % out.size()] = static_cast<std::uint8_t>(next(rng));
                break;
            }
            case 2: {  // truncate
                if (out.empty()) break;
                out.resize(next(rng) % out.size());
                break;
            }
            case 3: {  // duplicate a chunk onto the end (bounded growth)
                if (out.empty() || out.size() > 4096) break;
                const std::size_t from = next(rng) % out.size();
                const std::size_t len = 1 + next(rng) % (out.size() - from);
                out.insert(out.end(), out.begin() + static_cast<std::ptrdiff_t>(from),
                           out.begin() + static_cast<std::ptrdiff_t>(from + len));
                break;
            }
            default: {  // insert a random byte
                if (out.size() > 8192) break;
                const std::size_t at = out.empty() ? 0 : next(rng) % out.size();
                out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                           static_cast<std::uint8_t>(next(rng)));
                break;
            }
        }
    }
    return out;
}

}  // namespace starlink::fuzz
