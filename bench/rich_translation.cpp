// Experiment E9 (extension): rich translations vs greatest-common-divisor
// intermediaries (paper section III-A).
//
// "As opposed to other approaches such as ESBs, INDISS, OSDA and uMiddle
//  that consider the mapping of message content to a common intermediary
//  message representation, we do not limit interoperability to the greatest
//  subset of behaviour for all protocols. In the case of discovery protocols
//  for example, the greatest common divisor may be service type requests
//  only. Therefore, interoperability between two protocols such as SLP and
//  LDAP that both support attribute-based requests is restricted."
//
// Setup: an LDAP directory holds N printers, exactly one matching the
// attribute predicate each SLP client sends. Two bridges answer the same
// lookups: the full Starlink SLP->LDAP connector (predicate translated) and
// a GCD-style variant with the predicate assignment removed. The table
// reports how often each returns the CORRECT service.
#include <cstdio>
#include <optional>

#include "net/sim_network.hpp"
#include "common/rng.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "protocols/ldap/ldap_agents.hpp"
#include "protocols/slp/slp_codec.hpp"

namespace {

using namespace starlink;

constexpr int kLookups = 100;
constexpr int kPrinters = 4;  // one per attribute value

struct Outcome {
    int correct = 0;
    int wrong = 0;
    int unanswered = 0;
};

Outcome runScenario(bool carryPredicate) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    starlink.deploy(carryPredicate
                        ? bridge::models::slpToLdap("10.0.0.3")
                        : bridge::models::slpToLdapWithoutPredicate("10.0.0.3"),
                    "10.0.0.9");

    ldap::DirectoryServer::Config directoryConfig;
    directoryConfig.responseDelayBase = net::ms(20);
    ldap::DirectoryServer directory(network, directoryConfig);
    for (int i = 0; i < kPrinters; ++i) {
        ldap::Entry entry;
        entry.dn = "cn=p" + std::to_string(i) + ",dc=services,dc=local";
        entry.serviceClass = "service:printer";
        entry.url = "service:printer://10.0.0.3:515/p" + std::to_string(i);
        entry.attributes = {{"queue", "p" + std::to_string(i)}};
        directory.addEntry(entry);
    }

    auto socket = network.openUdp("10.0.0.1");
    std::optional<slp::SrvReply> reply;
    socket->onDatagram([&reply](const Bytes& payload, const net::Address&) {
        reply = slp::decodeReply(payload);
    });

    Rng rng(99);
    Outcome outcome;
    for (int i = 0; i < kLookups; ++i) {
        const int wanted = static_cast<int>(rng.range(0, kPrinters - 1));
        slp::SrvRequest request;
        request.xid = static_cast<std::uint16_t>(1000 + i);
        request.serviceType = "service:printer";
        request.predicate = "(queue=p" + std::to_string(wanted) + ")";
        reply.reset();
        socket->sendTo(net::Address{slp::kGroup, slp::kPort}, slp::encode(request));
        scheduler.runUntilIdle();
        if (!reply) {
            ++outcome.unanswered;
        } else if (reply->url == "service:printer://10.0.0.3:515/p" + std::to_string(wanted)) {
            ++outcome.correct;
        } else {
            ++outcome.wrong;
        }
    }
    return outcome;
}

}  // namespace

int main() {
    std::printf("E9: attribute-based requests through the bridge "
                "(SLP predicate -> LDAP filter)\n");
    std::printf("(%d lookups, %d candidate services, exactly one matching each predicate)\n\n",
                kLookups, kPrinters);
    std::printf("%-34s %9s %9s %12s\n", "bridge", "correct", "wrong", "unanswered");

    const Outcome starlinkOutcome = runScenario(/*carryPredicate=*/true);
    std::printf("%-34s %9d %9d %12d\n", "Starlink (predicate translated)",
                starlinkOutcome.correct, starlinkOutcome.wrong, starlinkOutcome.unanswered);

    const Outcome gcdOutcome = runScenario(/*carryPredicate=*/false);
    std::printf("%-34s %9d %9d %12d\n", "GCD intermediary (predicate lost)", gcdOutcome.correct,
                gcdOutcome.wrong, gcdOutcome.unanswered);

    const bool ok = starlinkOutcome.correct == kLookups && gcdOutcome.wrong > 0;
    std::printf("\nshape check (rich translation always correct; GCD misroutes): %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
