// Fig 12(a): "Response time measures for legacy discovery protocols".
//
// Reproduces the paper's native benchmark: for each protocol, one legacy
// client and one legacy service on the same simulated host pair, 100
// repetitions, min/median/max of the lookup response time. The legacy-stack
// latency models are calibrated against the paper's measurements of OpenSLP
// (~6.0 s service-side window), the Apple Bonjour SDK (~0.7 s browse) and
// Cyberlink UPnP (~1.0 s MX window + HTTP description fetch); see
// EXPERIMENTS.md for paper-vs-measured.
#include <cstdio>
#include <vector>

#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "native_bench.hpp"
#include "stats.hpp"

namespace {

using namespace starlink;

constexpr int kRepetitions = 100;

}  // namespace

int main() {
    std::printf("Fig 12(a): Response time measures for legacy discovery protocols\n");
    std::printf("(%d repetitions each, virtual-time milliseconds)\n\n", kRepetitions);
    std::printf("%-18s %8s %8s %8s\n", "Protocol", "Min", "Median", "Max");

    const auto slpSummary = bench::benchNativeSlp(kRepetitions);
    const auto bonjourSummary = bench::benchNativeBonjour(kRepetitions);
    const auto upnpSummary = bench::benchNativeUpnp(kRepetitions);
    bench::printRow("SLP", slpSummary, "5982 / 6022 / 6053");
    bench::printRow("Bonjour", bonjourSummary, " 687 /  710 /  726");
    bench::printRow("UPnP", upnpSummary, " 945 / 1014 / 1079");

    const bool shapeHolds = slpSummary.medianMs > 5 * upnpSummary.medianMs &&
                            upnpSummary.medianMs > bonjourSummary.medianMs &&
                            slpSummary.samples == kRepetitions &&
                            bonjourSummary.samples == kRepetitions &&
                            upnpSummary.samples == kRepetitions;
    std::printf("\nshape check (SLP >> UPnP > Bonjour, all lookups answered): %s\n",
                shapeHolds ? "PASS" : "FAIL");
    return shapeHolds ? 0 : 1;
}
