// Ablation A4: does automatic merge generation cost anything at runtime?
//
// The same SLP->Bonjour topology served by (a) the hand-written Fig 10
// bridge and (b) the ontology-synthesized bridge. Both execute in the same
// engine, so translation times should be indistinguishable -- the
// synthesizer's cost is paid once at deployment (measured separately in
// bench_automata_micro::SynthesizeMerge).
#include <cstdio>

#include "net/sim_network.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "stats.hpp"

namespace {

using namespace starlink;
using bridge::models::Case;
using bridge::models::ProtocolModel;
using bridge::models::Role;

constexpr int kRepetitions = 100;

mdns::Responder::Config fastResponder() {
    mdns::Responder::Config config;
    config.responseDelayBase = net::ms(10);
    config.responseDelayJitter = net::ms(2);
    return config;
}

bench::Summary run(bool synthesized) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    bridge::DeployedBridge* deployed = nullptr;
    if (synthesized) {
        deployed = &starlink.deploySynthesized(
            ProtocolModel{bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server)},
            ProtocolModel{bridge::models::dnsMdl(),
                          bridge::models::mdnsAutomaton(Role::Client)},
            merge::Ontology::discovery(), "10.0.0.9");
    } else {
        deployed =
            &starlink.deploy(bridge::models::forCase(Case::SlpToBonjour, "10.0.0.9"), "10.0.0.9");
    }

    mdns::Responder responder(network, fastResponder());
    slp::UserAgent client(network, {});
    for (int i = 0; i < kRepetitions; ++i) {
        client.lookup("service:printer", [](const slp::UserAgent::Result&) {});
        scheduler.runUntilIdle();
    }
    std::vector<double> samples;
    for (const auto& session : deployed->engine().sessions()) {
        if (session.completed) samples.push_back(bench::toMs(session.translationTime()));
    }
    return bench::summarize(std::move(samples));
}

}  // namespace

int main() {
    std::printf("Ablation A4: hand-written (Fig 10) vs synthesized SLP->Bonjour bridge\n");
    std::printf("(median translation time over %d lookups, fast Bonjour service)\n\n",
                kRepetitions);
    const bench::Summary handWritten = run(/*synthesized=*/false);
    const bench::Summary generated = run(/*synthesized=*/true);
    std::printf("hand-written  %7.1f / %7.1f / %7.1f ms   (%zu/%d ok)\n", handWritten.minMs,
                handWritten.medianMs, handWritten.maxMs, handWritten.samples, kRepetitions);
    std::printf("synthesized   %7.1f / %7.1f / %7.1f ms   (%zu/%d ok)\n", generated.minMs,
                generated.medianMs, generated.maxMs, generated.samples, kRepetitions);

    const bool ok = handWritten.samples == kRepetitions && generated.samples == kRepetitions &&
                    std::abs(handWritten.medianMs - generated.medianMs) < 5.0;
    std::printf("\nshape check (identical runtime behaviour): %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
