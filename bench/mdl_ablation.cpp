// Ablation A1: what does MDL-driven genericity cost per message?
//
// Compares the generic, runtime-specialised MDL parser/composer against the
// hand-written legacy codecs on identical wire messages, for a binary
// protocol (SLP) and a text protocol (SSDP). These are wall-clock
// micro-benchmarks (google-benchmark), not virtual-time: they measure real
// CPU cost of interpretation, the component the paper's Fig 12(b) overhead
// contains.
#include <benchmark/benchmark.h>

#include "core/bridge/models.hpp"
#include "core/mdl/codec.hpp"
#include "protocols/slp/slp_codec.hpp"
#include "protocols/ssdp/ssdp_codec.hpp"

namespace {

using namespace starlink;

const Bytes& slpRequestWire() {
    static const Bytes wire = [] {
        slp::SrvRequest request;
        request.xid = 42;
        request.serviceType = "service:printer";
        request.predicate = "(color=true)";
        return slp::encode(request);
    }();
    return wire;
}

const Bytes& ssdpResponseWire() {
    static const Bytes wire = [] {
        ssdp::Response response;
        response.st = "urn:schemas-upnp-org:service:printer:1";
        response.usn = "uuid:sim-device-0001::urn:schemas-upnp-org:service:printer:1";
        response.location = "http://10.0.0.3:8080/desc.xml";
        return ssdp::encode(response);
    }();
    return wire;
}

std::shared_ptr<mdl::MessageCodec> slpCodec() {
    static auto codec = mdl::MessageCodec::fromXml(bridge::models::slpMdl());
    return codec;
}

std::shared_ptr<mdl::MessageCodec> ssdpCodec() {
    static auto codec = mdl::MessageCodec::fromXml(bridge::models::ssdpMdl());
    return codec;
}

void MdlParseSlp(benchmark::State& state) {
    const auto codec = slpCodec();
    for (auto _ : state) {
        auto message = codec->parse(slpRequestWire());
        benchmark::DoNotOptimize(message);
    }
}
BENCHMARK(MdlParseSlp);

void LegacyParseSlp(benchmark::State& state) {
    for (auto _ : state) {
        auto message = slp::decodeRequest(slpRequestWire());
        benchmark::DoNotOptimize(message);
    }
}
BENCHMARK(LegacyParseSlp);

void MdlComposeSlp(benchmark::State& state) {
    const auto codec = slpCodec();
    const auto message = *codec->parse(slpRequestWire());
    for (auto _ : state) {
        Bytes wire = codec->compose(message);
        benchmark::DoNotOptimize(wire);
    }
}
BENCHMARK(MdlComposeSlp);

void LegacyComposeSlp(benchmark::State& state) {
    slp::SrvRequest request;
    request.xid = 42;
    request.serviceType = "service:printer";
    request.predicate = "(color=true)";
    for (auto _ : state) {
        Bytes wire = slp::encode(request);
        benchmark::DoNotOptimize(wire);
    }
}
BENCHMARK(LegacyComposeSlp);

void MdlParseSsdp(benchmark::State& state) {
    const auto codec = ssdpCodec();
    for (auto _ : state) {
        auto message = codec->parse(ssdpResponseWire());
        benchmark::DoNotOptimize(message);
    }
}
BENCHMARK(MdlParseSsdp);

void LegacyParseSsdp(benchmark::State& state) {
    for (auto _ : state) {
        auto message = ssdp::decodeResponse(ssdpResponseWire());
        benchmark::DoNotOptimize(message);
    }
}
BENCHMARK(LegacyParseSsdp);

void MdlComposeSsdp(benchmark::State& state) {
    const auto codec = ssdpCodec();
    const auto message = *codec->parse(ssdpResponseWire());
    for (auto _ : state) {
        Bytes wire = codec->compose(message);
        benchmark::DoNotOptimize(wire);
    }
}
BENCHMARK(MdlComposeSsdp);

void LegacyComposeSsdp(benchmark::State& state) {
    ssdp::Response response;
    response.st = "urn:schemas-upnp-org:service:printer:1";
    response.usn = "uuid:sim-device-0001::urn:x";
    response.location = "http://10.0.0.3:8080/desc.xml";
    for (auto _ : state) {
        Bytes wire = ssdp::encode(response);
        benchmark::DoNotOptimize(wire);
    }
}
BENCHMARK(LegacyComposeSsdp);

void MdlLoadDocument(benchmark::State& state) {
    const std::string xml = bridge::models::slpMdl();
    for (auto _ : state) {
        auto codec = mdl::MessageCodec::fromXml(xml);
        benchmark::DoNotOptimize(codec);
    }
}
BENCHMARK(MdlLoadDocument);

}  // namespace
