// Codec microbenchmark: compiled plans vs the pre-plan interpreters.
//
// For each built-in MDL (SLP + DNS binary, SSDP + HTTP text, WSD xml) this
// harness times parse and compose through BOTH execution paths the codecs
// keep side by side:
//
//   plan    -- the flat CodecPlan compiled at load time (the hot path the
//              engine runs: parse() / composeInto() with a reused buffer);
//   interp  -- parseInterpreted() / composeInterpreted(), the original
//              interpreters that re-derive marshallers, delimiters, paths
//              and rule dispatch from the MdlDocument per message.
//
// Wall-clock time (the virtual clock is irrelevant for CPU microbenches):
// each sample times kItersPerSample operations, kSamples samples per row,
// reported as min/median/max microseconds per operation.
//
//   bench_codec_micro          print the table + speedup column
//   bench_codec_micro --json   also write BENCH_codec.json (schema in
//                              stats.hpp; gated by tools/bench_compare.py)
//
// Exit status: 0 when every plan path parses/composes byte-identically to
// its interpreter AND the text parse+compose speedup is >= 1.5x (the
// optimisation target this PR claims); 1 otherwise.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/bridge/models.hpp"
#include "core/mdl/codec.hpp"
#include "protocols/http/http_codec.hpp"
#include "protocols/mdns/dns_codec.hpp"
#include "protocols/slp/slp_codec.hpp"
#include "protocols/ssdp/ssdp_codec.hpp"
#include "protocols/wsd/wsd_codec.hpp"
#include "stats.hpp"

namespace {

using namespace starlink;

constexpr int kSamples = 25;
constexpr int kItersPerSample = 1000;

/// Times `op` (one codec operation) and returns microseconds per call,
/// median over kSamples batches of kItersPerSample calls.
bench::Summary measure(const std::function<void()>& op) {
    using Clock = std::chrono::steady_clock;
    for (int i = 0; i < kItersPerSample / 10; ++i) op();  // warm-up
    std::vector<double> usPerOp;
    usPerOp.reserve(kSamples);
    for (int s = 0; s < kSamples; ++s) {
        const auto begin = Clock::now();
        for (int i = 0; i < kItersPerSample; ++i) op();
        const auto end = Clock::now();
        const double us =
            std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(end - begin)
                .count();
        usPerOp.push_back(us / kItersPerSample);
    }
    return bench::summarize(std::move(usPerOp));
}

struct CaseResult {
    std::string name;          // e.g. "text/ssdp"
    bench::Summary parsePlan, parseInterp, composePlan, composeInterp;
    bool identical = true;     // plan output byte-identical to interpreter
};

/// Benchmarks one codec on one wire sample. The message composed is the
/// parse of the wire bytes, so compose exercises exactly the fields a real
/// bridged session carries.
CaseResult benchCodec(const std::string& name, const mdl::MessageCodec& codec,
                      const Bytes& wire) {
    CaseResult out;
    out.name = name;

    const auto viaPlan = codec.parse(wire);
    const auto viaInterp = codec.parseInterpreted(wire);
    if (!viaPlan || !viaInterp) {
        std::fprintf(stderr, "%s: sample wire message does not parse\n", name.c_str());
        out.identical = false;
        return out;
    }
    const Bytes composedInterp = codec.composeInterpreted(*viaInterp);
    Bytes composedPlan;
    codec.composeInto(*viaPlan, composedPlan);
    out.identical = composedPlan == composedInterp;
    if (!out.identical) {
        std::fprintf(stderr, "%s: plan compose differs from interpreter\n", name.c_str());
    }

    const AbstractMessage message = *viaPlan;
    Bytes scratch;
    out.parsePlan = measure([&] { codec.parse(wire); });
    out.parseInterp = measure([&] { codec.parseInterpreted(wire); });
    out.composePlan = measure([&] { codec.composeInto(message, scratch); });
    out.composeInterp = measure([&] { codec.composeInterpreted(message); });
    return out;
}

void printCase(const CaseResult& r) {
    const auto row = [](const char* op, const bench::Summary& plan,
                        const bench::Summary& interp) {
        std::printf("  %-9s plan %8.2f us/op   interp %8.2f us/op   speedup %5.2fx\n", op,
                    plan.medianMs, interp.medianMs,
                    plan.medianMs > 0 ? interp.medianMs / plan.medianMs : 0.0);
    };
    std::printf("%s%s\n", r.name.c_str(), r.identical ? "" : "   [MISMATCH]");
    row("parse", r.parsePlan, r.parseInterp);
    row("compose", r.composePlan, r.composeInterp);
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json = true;
    }

    // One realistic wire sample per MDL, produced by the legacy stacks.
    slp::SrvRequest slpRequest;
    slpRequest.xid = 7;
    slpRequest.serviceType = "service:printer";
    slpRequest.predicate = "(colour=true)";
    const auto slpCodec = mdl::MessageCodec::fromXml(bridge::models::slpMdl());
    const Bytes slpWire = slp::encode(slpRequest);

    const auto dnsCodec = mdl::MessageCodec::fromXml(bridge::models::dnsMdl());
    const Bytes dnsWire = mdns::encode(
        mdns::makeResponse(9, "_printer._tcp.local", "service:printer://10.0.0.3:515/queue"));

    ssdp::Response ssdpResponse;
    ssdpResponse.st = "urn:schemas-upnp-org:service:printer:1";
    ssdpResponse.usn = "uuid:device-1::urn:schemas-upnp-org:service:printer:1";
    ssdpResponse.location = "http://10.0.0.3:8080/description.xml";
    const auto ssdpCodec = mdl::MessageCodec::fromXml(bridge::models::ssdpMdl());
    const Bytes ssdpWire = ssdp::encode(ssdpResponse);

    http::Request httpRequest;
    httpRequest.path = "/description.xml";
    httpRequest.headers.emplace_back("Host", "10.0.0.3:8080");
    httpRequest.headers.emplace_back("Accept", "text/xml");
    const auto httpCodec = mdl::MessageCodec::fromXml(bridge::models::httpMdl());
    const Bytes httpWire = http::encode(httpRequest);

    const auto wsdCodec = mdl::MessageCodec::fromXml(bridge::models::wsdMdl());
    const Bytes wsdWire = wsd::encode(
        wsd::ProbeMatch{"uuid:target-1", "uuid:client-9", "printer", "http://10.0.0.3:5357/p"});

    std::printf("Codec microbenchmark: compiled plans vs pre-plan interpreters\n");
    std::printf("(%d samples x %d ops, wall-clock microseconds per operation)\n\n", kSamples,
                kItersPerSample);

    const CaseResult results[] = {
        benchCodec("binary/slp", *slpCodec, slpWire),
        benchCodec("binary/dns", *dnsCodec, dnsWire),
        benchCodec("text/ssdp", *ssdpCodec, ssdpWire),
        benchCodec("text/http", *httpCodec, httpWire),
        benchCodec("xml/wsd", *wsdCodec, wsdWire),
    };
    for (const CaseResult& r : results) printCase(r);

    // The acceptance gate: text parse+compose, plan vs interpreter, summed
    // medians (the bridged-session text hot path does both per message).
    double textPlan = 0;
    double textInterp = 0;
    bool identical = true;
    for (const CaseResult& r : results) {
        identical = identical && r.identical;
        if (r.name.rfind("text/", 0) == 0) {
            textPlan += r.parsePlan.medianMs + r.composePlan.medianMs;
            textInterp += r.parseInterp.medianMs + r.composeInterp.medianMs;
        }
    }
    const double textSpeedup = textPlan > 0 ? textInterp / textPlan : 0.0;
    std::printf("\ntext parse+compose speedup (plan vs interpreter): %.2fx (target >= 1.5x)\n",
                textSpeedup);

    if (json) {
        std::vector<bench::JsonRow> rows;
        for (const CaseResult& r : results) {
            rows.push_back({r.name + "/parse/plan", r.parsePlan});
            rows.push_back({r.name + "/parse/interp", r.parseInterp});
            rows.push_back({r.name + "/compose/plan", r.composePlan});
            rows.push_back({r.name + "/compose/interp", r.composeInterp});
        }
        if (!bench::writeJson("BENCH_codec.json", "codec_micro", "us/op", rows)) return 1;
    }

    const bool ok = identical && textSpeedup >= 1.5;
    std::printf("shape check (plan==interpreter bytes; text speedup >= 1.5x): %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
