// Aggregate throughput of the sharded bridge engine at 1/2/4/8 shards.
//
// Every number here is VIRTUAL-time: a shard is a pool of single-threaded
// simulation islands, so its capacity is the virtual time its islands
// consume, and the aggregate rate of an N-shard run is completed sessions
// divided by the virtual MAKESPAN (the busiest shard). That makes the sweep
// fully deterministic -- the same workload always yields the same
// sessions/s on any machine, which is why the committed baseline is gated
// with bench_compare.py --absolute (drift in either direction fails).
//
// Two sweeps:
//   mixed@Nshards        240 sessions round-robin over all six directions --
//                        the headline scaling figure. The harness FAILS
//                        unless mixed@8shards >= 3x mixed@1shard.
//   <case>@Nshards       64 sessions of a single direction, showing how each
//                        direction's session cost (Fig 12(b): ~0.3 s for
//                        ->UPnP/->Bonjour, ~6 s for ->SLP) carries through
//                        to capacity.
//
// Per-session behaviour is shard-count invariant (the determinism contract
// of shard_engine.hpp, enforced by tests/test_shard_stress.cpp), so scaling
// comes only from partitioning work -- the per-session medians the paper
// reports are untouched.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/bridge/models.hpp"
#include "core/engine/shard_engine.hpp"
#include "stats.hpp"

namespace {

using namespace starlink;
using bridge::models::Case;
using bridge::models::kAllCases;

constexpr int kShardCounts[] = {1, 2, 4, 8};
constexpr int kMixedSessions = 240;
constexpr int kPerCaseSessions = 64;
constexpr double kRequiredSpeedup = 3.0;

struct SweepPoint {
    std::string name;
    double sessionsPerSecond = 0;
    std::size_t completed = 0;
    double makespanMs = 0;
};

/// Runs `sessions` jobs (all of `only`, or round-robin over the six cases
/// when `only` is null) on `shards` shards and returns the aggregate rate.
SweepPoint sweep(const std::string& label, int shards, int sessions, const Case* only) {
    engine::ShardEngineOptions options;
    options.shards = shards;
    engine::ShardEngine shardEngine(options);
    for (int i = 0; i < sessions; ++i) {
        engine::SessionJob job;
        job.caseId = only != nullptr ? *only : kAllCases[static_cast<std::size_t>(i) % 6];
        // Keys are shard-count independent, so every sweep point serves the
        // exact same session set (bit-identical outcomes, different layout).
        job.key = label + "-" + std::to_string(i);
        shardEngine.submit(job);
    }
    shardEngine.run();

    SweepPoint point;
    point.name = label + "@" + std::to_string(shards) + "shards";
    point.sessionsPerSecond = shardEngine.virtualSessionsPerSecond();
    point.makespanMs = bench::toMs(shardEngine.makespan());
    for (const auto& report : shardEngine.reports()) {
        point.completed += report.completedSessions;
    }
    return point;
}

bench::JsonRow toRow(const SweepPoint& point) {
    bench::Summary summary;
    summary.minMs = summary.medianMs = summary.maxMs = point.sessionsPerSecond;
    summary.samples = point.completed;
    return {point.name, summary};
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json = true;
    }

    std::printf("Aggregate throughput, sharded bridge engine (virtual time)\n");
    std::printf("%-26s %10s %12s %14s\n", "workload", "sessions", "makespan ms",
                "sessions/s");

    std::vector<bench::JsonRow> rows;
    double oneShard = 0;
    double eightShard = 0;
    for (const int shards : kShardCounts) {
        const SweepPoint point = sweep("mixed", shards, kMixedSessions, nullptr);
        std::printf("%-26s %10zu %12.0f %14.3f\n", point.name.c_str(), point.completed,
                    point.makespanMs, point.sessionsPerSecond);
        rows.push_back(toRow(point));
        if (shards == 1) oneShard = point.sessionsPerSecond;
        if (shards == 8) eightShard = point.sessionsPerSecond;
    }
    for (const Case c : kAllCases) {
        for (const int shards : kShardCounts) {
            std::string label = bridge::models::caseName(c);
            for (char& ch : label) {
                if (ch == ' ') ch = '-';
            }
            const SweepPoint point = sweep(label, shards, kPerCaseSessions, &c);
            std::printf("%-26s %10zu %12.0f %14.3f\n", point.name.c_str(), point.completed,
                        point.makespanMs, point.sessionsPerSecond);
            rows.push_back(toRow(point));
        }
    }

    const double speedup = oneShard > 0 ? eightShard / oneShard : 0;
    std::printf("mixed speedup 8 shards vs 1: %.2fx (gate: >= %.1fx)\n", speedup,
                kRequiredSpeedup);

    if (json) {
        if (!bench::writeJson("BENCH_throughput.json", "throughput_sweep",
                              "sessions/s (virtual)", rows)) {
            return 1;
        }
    }
    return speedup >= kRequiredSpeedup ? 0 : 1;
}
