// Tiny shared helpers for the table harnesses: min/median/max over repeated
// virtual-time measurements, matching the paper's reporting, plus the JSON
// emitter behind every harness's --json flag (consumed by
// tools/bench_compare.py and the CI bench-micro job).
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "net/clock.hpp"

namespace starlink::bench {

struct Summary {
    double minMs = 0;
    double medianMs = 0;
    double maxMs = 0;
    std::size_t samples = 0;
};

inline double toMs(net::Duration d) {
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(d).count();
}

inline Summary summarize(std::vector<double> ms) {
    Summary out;
    out.samples = ms.size();
    if (ms.empty()) return out;
    std::sort(ms.begin(), ms.end());
    out.minMs = ms.front();
    out.maxMs = ms.back();
    out.medianMs = ms[ms.size() / 2];
    return out;
}

inline void printRow(const char* label, const Summary& s, const char* paper) {
    std::printf("%-18s %8.0f %8.0f %8.0f   | paper: %s\n", label, s.minMs, s.medianMs, s.maxMs,
                paper);
}

/// One named measurement in a --json dump. The unit is whatever the harness
/// measured (BENCH_fig12b.json: virtual ms; BENCH_codec.json: wall us/op) --
/// the Summary field names stay "Ms" for the printRow helpers either way.
struct JsonRow {
    std::string name;
    Summary summary;
};

/// Writes `{"bench": ..., "unit": ..., "rows": [...]}` to `path`. Returns
/// false (after perror) when the file cannot be written.
inline bool writeJson(const std::string& path, const std::string& bench, const std::string& unit,
                      const std::vector<JsonRow>& rows) {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::perror(path.c_str());
        return false;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"unit\": \"%s\",\n  \"rows\": [\n",
                 bench.c_str(), unit.c_str());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Summary& s = rows[i].summary;
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"min\": %.6g, \"median\": %.6g, \"max\": %.6g, "
                     "\"samples\": %zu}%s\n",
                     rows[i].name.c_str(), s.minMs, s.medianMs, s.maxMs, s.samples,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

}  // namespace starlink::bench
