// Tiny shared helpers for the table harnesses: min/median/max over repeated
// virtual-time measurements, matching the paper's reporting.
#pragma once

#include <algorithm>
#include <cstdio>
#include <vector>

#include "net/clock.hpp"

namespace starlink::bench {

struct Summary {
    double minMs = 0;
    double medianMs = 0;
    double maxMs = 0;
    std::size_t samples = 0;
};

inline double toMs(net::Duration d) {
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(d).count();
}

inline Summary summarize(std::vector<double> ms) {
    Summary out;
    out.samples = ms.size();
    if (ms.empty()) return out;
    std::sort(ms.begin(), ms.end());
    out.minMs = ms.front();
    out.maxMs = ms.back();
    out.medianMs = ms[ms.size() / 2];
    return out;
}

inline void printRow(const char* label, const Summary& s, const char* paper) {
    std::printf("%-18s %8.0f %8.0f %8.0f   | paper: %s\n", label, s.minMs, s.medianMs, s.maxMs,
                paper);
}

}  // namespace starlink::bench
