// Shared native-protocol benchmark runs (Fig 12(a) measurements), used by
// the fig12a harness directly and by fig12b to compute the paper's
// "percentage increase in response time" comparison.
//
// The drive loop goes through net::Network::runUntil, so the measurement
// harness itself is backend-generic; only the construction (and the virtual
// clock that makes the numbers deterministic) names the sim.
#pragma once

#include "net/sim_network.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "stats.hpp"

namespace starlink::bench {

/// Virtual-time budget for one lookup round; native discovery converges in
/// well under a second, so hitting this means the round livelocked.
inline const net::Duration kLookupBudget = net::ms(30000);

inline Summary benchNativeSlp(int repetitions) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    net::Network& net = network;
    slp::ServiceAgent service(net, {});
    slp::UserAgent client(net, {});
    std::vector<double> samples;
    for (int i = 0; i < repetitions; ++i) {
        bool settled = false;
        client.lookup("service:printer",
                      [&samples, &settled](const slp::UserAgent::Result& result) {
                          if (!result.urls.empty()) samples.push_back(toMs(result.elapsed));
                          settled = true;
                      });
        net.runUntil([&settled] { return settled; }, kLookupBudget);
        scheduler.runUntilIdle();  // drain stragglers so rounds stay independent
    }
    return summarize(std::move(samples));
}

inline Summary benchNativeBonjour(int repetitions) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    net::Network& net = network;
    mdns::Responder responder(net, {});
    mdns::Resolver client(net, {});
    std::vector<double> samples;
    for (int i = 0; i < repetitions; ++i) {
        bool settled = false;
        client.browse("_printer._tcp.local",
                      [&samples, &settled](const mdns::Resolver::Result& result) {
                          if (!result.urls.empty()) samples.push_back(toMs(result.elapsed));
                          settled = true;
                      });
        net.runUntil([&settled] { return settled; }, kLookupBudget);
        scheduler.runUntilIdle();  // drain stragglers so rounds stay independent
    }
    return summarize(std::move(samples));
}

inline Summary benchNativeUpnp(int repetitions) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    net::Network& net = network;
    ssdp::Device device(net, {});
    ssdp::ControlPoint client(net, {});
    std::vector<double> samples;
    for (int i = 0; i < repetitions; ++i) {
        bool settled = false;
        client.search(device.config().st,
                      [&samples, &settled](const ssdp::ControlPoint::Result& result) {
                          if (!result.urls.empty()) samples.push_back(toMs(result.elapsed));
                          settled = true;
                      });
        net.runUntil([&settled] { return settled; }, kLookupBudget);
        scheduler.runUntilIdle();  // drain stragglers so rounds stay independent
    }
    return summarize(std::move(samples));
}

}  // namespace starlink::bench
