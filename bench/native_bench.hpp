// Shared native-protocol benchmark runs (Fig 12(a) measurements), used by
// the fig12a harness directly and by fig12b to compute the paper's
// "percentage increase in response time" comparison.
#pragma once

#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "stats.hpp"

namespace starlink::bench {

inline Summary benchNativeSlp(int repetitions) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    slp::ServiceAgent service(network, {});
    slp::UserAgent client(network, {});
    std::vector<double> samples;
    for (int i = 0; i < repetitions; ++i) {
        client.lookup("service:printer", [&samples](const slp::UserAgent::Result& result) {
            if (!result.urls.empty()) samples.push_back(toMs(result.elapsed));
        });
        scheduler.runUntilIdle();
    }
    return summarize(std::move(samples));
}

inline Summary benchNativeBonjour(int repetitions) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    mdns::Responder responder(network, {});
    mdns::Resolver client(network, {});
    std::vector<double> samples;
    for (int i = 0; i < repetitions; ++i) {
        client.browse("_printer._tcp.local", [&samples](const mdns::Resolver::Result& result) {
            if (!result.urls.empty()) samples.push_back(toMs(result.elapsed));
        });
        scheduler.runUntilIdle();
    }
    return summarize(std::move(samples));
}

inline Summary benchNativeUpnp(int repetitions) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    ssdp::Device device(network, {});
    ssdp::ControlPoint client(network, {});
    std::vector<double> samples;
    for (int i = 0; i < repetitions; ++i) {
        client.search(device.config().st,
                      [&samples](const ssdp::ControlPoint::Result& result) {
                          if (!result.urls.empty()) samples.push_back(toMs(result.elapsed));
                      });
        scheduler.runUntilIdle();
    }
    return summarize(std::move(samples));
}

}  // namespace starlink::bench
