// Ablation A2: Starlink's interpreted, model-driven connectors vs hand-coded
// z2z-style static bridges, on identical topologies.
//
// Measures the same quantity as Fig 12(b) -- first-message-in to
// last-message-out at the bridge -- for the three cases with a static
// counterpart. The gap quantifies the cost of runtime interpretation
// (generic parsing into abstract messages, translation-logic evaluation,
// model-driven composition) that Starlink pays for being deployable at
// runtime.
#include <cstdio>
#include <optional>
#include <vector>

#include "net/sim_network.hpp"
#include "baseline/static_bridges.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "stats.hpp"

namespace {

using namespace starlink;
using bridge::models::Case;

constexpr int kRepetitions = 100;

// Fast services so the bridge's own cost dominates the comparison.
slp::ServiceAgent::Config fastSlp() {
    slp::ServiceAgent::Config config;
    config.responseDelayBase = net::ms(10);
    config.responseDelayJitter = net::ms(2);
    return config;
}
mdns::Responder::Config fastMdns() {
    mdns::Responder::Config config;
    config.responseDelayBase = net::ms(10);
    config.responseDelayJitter = net::ms(2);
    return config;
}
ssdp::Device::Config fastUpnp() {
    ssdp::Device::Config config;
    config.responseDelayBase = net::ms(10);
    config.responseDelayJitter = net::ms(2);
    return config;
}

// --- SLP -> Bonjour -------------------------------------------------------------

bench::Summary starlinkSlpToBonjour() {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    auto& deployed =
        starlink.deploy(bridge::models::forCase(Case::SlpToBonjour, "10.0.0.9"), "10.0.0.9");
    mdns::Responder responder(network, fastMdns());
    slp::UserAgent client(network, {});
    for (int i = 0; i < kRepetitions; ++i) {
        client.lookup("service:printer", [](const slp::UserAgent::Result&) {});
        scheduler.runUntilIdle();
    }
    std::vector<double> samples;
    for (const auto& session : deployed.engine().sessions()) {
        if (session.completed) samples.push_back(bench::toMs(session.translationTime()));
    }
    return bench::summarize(std::move(samples));
}

bench::Summary staticSlpToBonjour() {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    baseline::SlpToBonjourStatic bridge(network, "10.0.0.9");
    mdns::Responder responder(network, fastMdns());
    slp::UserAgent client(network, {});
    for (int i = 0; i < kRepetitions; ++i) {
        client.lookup("service:printer", [](const slp::UserAgent::Result&) {});
        scheduler.runUntilIdle();
    }
    std::vector<double> samples;
    for (const auto& session : bridge.sessions()) {
        if (session.completed) samples.push_back(bench::toMs(session.translationTime()));
    }
    return bench::summarize(std::move(samples));
}

// --- SLP -> UPnP ----------------------------------------------------------------

bench::Summary starlinkSlpToUpnp() {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    auto& deployed =
        starlink.deploy(bridge::models::forCase(Case::SlpToUpnp, "10.0.0.9"), "10.0.0.9");
    ssdp::Device device(network, fastUpnp());
    slp::UserAgent client(network, {});
    for (int i = 0; i < kRepetitions; ++i) {
        client.lookup("service:printer", [](const slp::UserAgent::Result&) {});
        scheduler.runUntilIdle();
    }
    std::vector<double> samples;
    for (const auto& session : deployed.engine().sessions()) {
        if (session.completed) samples.push_back(bench::toMs(session.translationTime()));
    }
    return bench::summarize(std::move(samples));
}

bench::Summary staticSlpToUpnp() {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    baseline::SlpToUpnpStatic bridge(network, "10.0.0.9");
    ssdp::Device device(network, fastUpnp());
    slp::UserAgent client(network, {});
    for (int i = 0; i < kRepetitions; ++i) {
        client.lookup("service:printer", [](const slp::UserAgent::Result&) {});
        scheduler.runUntilIdle();
    }
    std::vector<double> samples;
    for (const auto& session : bridge.sessions()) {
        if (session.completed) samples.push_back(bench::toMs(session.translationTime()));
    }
    return bench::summarize(std::move(samples));
}

// --- Bonjour -> SLP --------------------------------------------------------------

bench::Summary starlinkBonjourToSlp() {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    auto& deployed =
        starlink.deploy(bridge::models::forCase(Case::BonjourToSlp, "10.0.0.9"), "10.0.0.9");
    slp::ServiceAgent service(network, fastSlp());
    mdns::Resolver client(network, {});
    for (int i = 0; i < kRepetitions; ++i) {
        client.browse("_printer._tcp.local", [](const mdns::Resolver::Result&) {});
        scheduler.runUntilIdle();
    }
    std::vector<double> samples;
    for (const auto& session : deployed.engine().sessions()) {
        if (session.completed) samples.push_back(bench::toMs(session.translationTime()));
    }
    return bench::summarize(std::move(samples));
}

bench::Summary staticBonjourToSlp() {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    baseline::BonjourToSlpStatic bridge(network, "10.0.0.9");
    slp::ServiceAgent service(network, fastSlp());
    mdns::Resolver client(network, {});
    for (int i = 0; i < kRepetitions; ++i) {
        client.browse("_printer._tcp.local", [](const mdns::Resolver::Result&) {});
        scheduler.runUntilIdle();
    }
    std::vector<double> samples;
    for (const auto& session : bridge.sessions()) {
        if (session.completed) samples.push_back(bench::toMs(session.translationTime()));
    }
    return bench::summarize(std::move(samples));
}

void printPair(const char* label, const bench::Summary& starlinkSummary,
               const bench::Summary& staticSummary) {
    std::printf("%-18s starlink %7.1f ms   static %7.1f ms   overhead %+6.1f ms (%zu/%zu ok)\n",
                label, starlinkSummary.medianMs, staticSummary.medianMs,
                starlinkSummary.medianMs - staticSummary.medianMs, starlinkSummary.samples,
                staticSummary.samples);
}

}  // namespace

int main() {
    std::printf("Ablation A2: interpreted Starlink connectors vs hand-coded static bridges\n");
    std::printf("(median bridge-side translation time over %d lookups; fast services so the\n"
                " bridge cost dominates)\n\n",
                kRepetitions);

    const auto slpBonjourStarlink = starlinkSlpToBonjour();
    const auto slpBonjourStatic = staticSlpToBonjour();
    printPair("SLP->Bonjour", slpBonjourStarlink, slpBonjourStatic);

    const auto slpUpnpStarlink = starlinkSlpToUpnp();
    const auto slpUpnpStatic = staticSlpToUpnp();
    printPair("SLP->UPnP", slpUpnpStarlink, slpUpnpStatic);

    const auto bonjourSlpStarlink = starlinkBonjourToSlp();
    const auto bonjourSlpStatic = staticBonjourToSlp();
    printPair("Bonjour->SLP", bonjourSlpStarlink, bonjourSlpStatic);

    const bool ok = slpBonjourStarlink.samples == kRepetitions &&
                    slpBonjourStatic.samples == kRepetitions &&
                    slpUpnpStarlink.samples == kRepetitions &&
                    slpUpnpStatic.samples == kRepetitions &&
                    bonjourSlpStarlink.samples == kRepetitions &&
                    bonjourSlpStatic.samples == kRepetitions &&
                    slpBonjourStarlink.medianMs >= slpBonjourStatic.medianMs;
    std::printf("\nshape check (both bridge kinds complete everything; interpretation costs "
                "extra): %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
