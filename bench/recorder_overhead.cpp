// Recorder overhead harness: the flight recorder must be invisible when off
// and cheap when on.
//
// The same deterministic chaos workload (mixed six-direction batch through a
// single-shard engine, seeded loss) runs twice per pass:
//
//   session_ns_recorder_off    wall ns/session with recorderSessionBytes = 0
//                              (the default-off configuration every capacity
//                              and Fig 12(b) harness runs under)
//   session_ns_recorder_on     wall ns/session with a 1 MiB per-session cap,
//                              no postmortem spool -- steady-state recording
//   recorder_overhead_pct      (on - off) / off * 100 over the medians
//
// The hard gate is BEHAVIOURAL, not temporal: every pass asserts that the
// recorder-on run produces bit-identical SessionOutcome vectors to the
// recorder-off run (same codes, causes, message counts, retransmits). Wall
// time is reported for bench_compare.py trend lines but not gated here --
// the CI capacity/Fig-12(b) jobs gate the recorder-off path against their
// committed baselines, which is where a recorder-off regression would show.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/bridge/models.hpp"
#include "core/engine/shard_engine.hpp"
#include "stats.hpp"

namespace {

using namespace starlink;
using bridge::models::kAllCases;

constexpr int kJobs = 120;
constexpr int kWarmupPasses = 1;
constexpr int kMeasurePasses = 5;
constexpr std::size_t kRecorderBytes = 1024 * 1024;

struct PassResult {
    std::vector<engine::SessionOutcome> outcomes;
    double nsPerSession = 0;
};

/// One full workload at the given recorder cap. Everything else -- seed,
/// chaos profile, job mix -- is pinned, so the outcome vector is a pure
/// function of `recorderBytes` (and must not be a function of it at all).
PassResult runPass(std::size_t recorderBytes) {
    engine::ShardEngineOptions options;
    options.shards = 1;
    options.baseSeed = 1234;
    options.chaos = true;
    options.chaosLoss = 0.25;
    options.engine.receiveTimeout = net::ms(7000);
    options.engine.maxRetransmits = 5;
    options.engine.retransmitBackoff = 1.5;
    options.engine.retransmitJitter = net::ms(100);
    options.engine.sessionTimeout = net::ms(30000);
    options.engine.recorderSessionBytes = recorderBytes;
    engine::ShardEngine shardEngine(options);
    for (int i = 0; i < kJobs; ++i) {
        engine::SessionJob job;
        job.caseId = kAllCases[static_cast<std::size_t>(i) % 6];
        job.key = "rec-" + std::to_string(i);
        shardEngine.submit(job);
    }
    const auto begin = std::chrono::steady_clock::now();
    const auto& results = shardEngine.run();
    const auto end = std::chrono::steady_clock::now();

    PassResult pass;
    for (const auto& result : results) {
        for (const auto& outcome : result.outcomes) pass.outcomes.push_back(outcome);
    }
    pass.nsPerSession =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count()) /
        static_cast<double>(kJobs);
    return pass;
}

bench::JsonRow makeRow(const std::string& name, const bench::Summary& summary) {
    return {name, summary};
}

bench::JsonRow makeScalarRow(const std::string& name, double value, std::size_t samples) {
    bench::Summary summary;
    summary.minMs = summary.medianMs = summary.maxMs = value;
    summary.samples = samples;
    return {name, summary};
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json = true;
    }

    std::printf("Recorder overhead: %d mixed chaos sessions, recorder off vs 1 MiB cap\n", kJobs);

    for (int i = 0; i < kWarmupPasses; ++i) {
        runPass(0);
        runPass(kRecorderBytes);
    }

    std::vector<double> offNs;
    std::vector<double> onNs;
    bool pass = true;
    for (int i = 0; i < kMeasurePasses; ++i) {
        const PassResult off = runPass(0);
        const PassResult on = runPass(kRecorderBytes);
        offNs.push_back(off.nsPerSession);
        onNs.push_back(on.nsPerSession);
        if (off.outcomes != on.outcomes) {
            std::fprintf(stderr,
                         "FAIL: pass %d -- recording changed session outcomes "
                         "(%zu vs %zu outcomes)\n",
                         i, off.outcomes.size(), on.outcomes.size());
            pass = false;
        }
    }

    const bench::Summary offSummary = bench::summarize(offNs);
    const bench::Summary onSummary = bench::summarize(onNs);
    const double overheadPct =
        offSummary.medianMs > 0
            ? 100.0 * (onSummary.medianMs - offSummary.medianMs) / offSummary.medianMs
            : 0.0;

    std::printf("%-28s %12.0f / %12.0f / %12.0f ns/session (min/med/max)\n", "recorder off",
                offSummary.minMs, offSummary.medianMs, offSummary.maxMs);
    std::printf("%-28s %12.0f / %12.0f / %12.0f ns/session (min/med/max)\n", "recorder on (1 MiB)",
                onSummary.minMs, onSummary.medianMs, onSummary.maxMs);
    std::printf("%-28s %11.1f%%  (median-over-median; informational)\n", "recording overhead",
                overheadPct);
    std::printf("%-28s %12s\n", "outcome equality",
                pass ? "identical across every pass" : "DIVERGED");

    if (json) {
        std::vector<bench::JsonRow> rows;
        rows.push_back(makeRow("session_ns_recorder_off", offSummary));
        rows.push_back(makeRow("session_ns_recorder_on", onSummary));
        rows.push_back(makeScalarRow("recorder_overhead_pct", overheadPct,
                                     static_cast<std::size_t>(kMeasurePasses)));
        if (!bench::writeJson("BENCH_recorder.json", "recorder_overhead",
                              "wall ns/session (pct for the overhead row)", rows)) {
            return 1;
        }
    }
    return pass ? 0 : 1;
}
