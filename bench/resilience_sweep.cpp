// Resilience sweep: discovery success under per-hop datagram loss.
//
// For each of the six interoperability cases and each loss probability in
// the sweep, this harness deploys the bridge with the resilience layer
// enabled (receive deadlines + bounded retransmission + watchdog), gives the
// legacy clients their own periodic re-send knob (real OpenSLP/mDNS/UPnP
// stacks all re-send discovery requests), and drives repeated lookups over
// the lossy fabric. It reports, per (case, loss) cell:
//   - discovery success rate (client callback delivered a non-empty result),
//   - bridge sessions started / completed and engine retransmissions,
//   - median translation time of completed sessions (degradation vs loss 0),
//   - datagrams lost on the wire.
// A JSON dump of every cell follows the table for downstream tooling.
//
// Exit status enforces the resilience bar: at 25% per-hop loss every case
// must still discover in >= 95% of lookups (and lossless runs in 100%).
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/sim_network.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/telemetry/span.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "stats.hpp"

namespace {

using namespace starlink;
using bridge::models::Case;

constexpr int kLookups = 40;
constexpr double kLossSweep[] = {0.0, 0.10, 0.25};
constexpr double kRequiredSuccessAtWorstLoss = 0.95;

struct Cell {
    const char* caseName = "";
    double loss = 0;
    int lookups = 0;
    int successes = 0;
    std::size_t sessionsStarted = 0;
    std::size_t sessionsCompleted = 0;
    std::size_t bridgeRetransmits = 0;
    std::size_t datagramsLost = 0;
    double medianTranslationMs = 0;
    // Median per-session leg totals of completed sessions (see fig12b for
    // the tiling invariant these two legs satisfy).
    double medianTranslateLegMs = 0;
    double medianWaitLegMs = 0;

    double successRate() const {
        return lookups == 0 ? 0.0 : static_cast<double>(successes) / lookups;
    }
};

/// The resilient engine configuration for the sweep. The receive deadline
/// must clear the slowest healthy legacy reply (the ~6.1 s SLP service), so
/// one value serves every case; the watchdog bounds each conversation so an
/// unlucky session frees the connector for the client's next re-send.
engine::EngineOptions sweepEngineOptions() {
    engine::EngineOptions options;
    options.receiveTimeout = net::ms(7000);
    options.maxRetransmits = 5;
    options.retransmitBackoff = 1.5;
    options.retransmitJitter = net::ms(100);
    options.sessionTimeout = net::ms(30000);
    // Span collection costs no virtual time; sized for every session the
    // sweep can start (lookups x retransmission storms stay well under this).
    options.spanCapacity = 1 << 16;
    return options;
}

Cell sweepCase(Case c, double loss) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler, /*seed=*/1234);
    network.latency().lossProbability = loss;

    bridge::Starlink starlink(network);
    auto& deployed =
        starlink.deploy(bridge::models::forCase(c, "10.0.0.9"), "10.0.0.9", sweepEngineOptions());

    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    switch (c) {
        case Case::UpnpToSlp:
        case Case::BonjourToSlp:
            slpService.emplace(network, slp::ServiceAgent::Config{});
            break;
        case Case::SlpToBonjour:
        case Case::UpnpToBonjour:
            mdnsService.emplace(network, mdns::Responder::Config{});
            break;
        case Case::SlpToUpnp:
        case Case::BonjourToUpnp:
            upnpService.emplace(network, ssdp::Device::Config{});
            break;
    }

    // Clients re-send their pending request every 8 s (clear of the ~6.5 s
    // worst-case healthy conversation) and keep trying for up to two virtual
    // minutes before declaring the lookup failed.
    const net::Duration clientResend = net::ms(8000);
    const net::Duration clientTimeout = net::ms(120000);

    std::optional<slp::UserAgent> slpClient;
    std::optional<mdns::Resolver> mdnsClient;
    std::optional<ssdp::ControlPoint> upnpClient;

    Cell cell;
    cell.caseName = bridge::models::caseName(c);
    cell.loss = loss;
    cell.lookups = kLookups;

    for (int i = 0; i < kLookups; ++i) {
        bool success = false;
        switch (c) {
            case Case::SlpToUpnp:
            case Case::SlpToBonjour: {
                if (!slpClient) {
                    slp::UserAgent::Config config;
                    config.timeout = clientTimeout;
                    config.retransmitInterval = clientResend;
                    slpClient.emplace(network, config);
                }
                slpClient->lookup("service:printer",
                                  [&success](const slp::UserAgent::Result& result) {
                                      success = !result.urls.empty();
                                  });
                break;
            }
            case Case::UpnpToSlp:
            case Case::UpnpToBonjour: {
                if (!upnpClient) {
                    ssdp::ControlPoint::Config config;
                    config.timeout = clientTimeout;
                    config.retransmitInterval = clientResend;
                    upnpClient.emplace(network, config);
                }
                upnpClient->search("urn:schemas-upnp-org:service:printer:1",
                                   [&success](const ssdp::ControlPoint::Result& result) {
                                       success = !result.urls.empty();
                                   });
                break;
            }
            case Case::BonjourToUpnp:
            case Case::BonjourToSlp: {
                if (!mdnsClient) {
                    mdns::Resolver::Config config;
                    config.timeout = clientTimeout;
                    config.retransmitInterval = clientResend;
                    mdnsClient.emplace(network, config);
                }
                mdnsClient->browse("_printer._tcp.local",
                                   [&success](const mdns::Resolver::Result& result) {
                                       success = !result.urls.empty();
                                   });
                break;
            }
        }
        scheduler.runUntilIdle(2000000);
        if (success) ++cell.successes;
    }

    // Per-session leg totals from the span trees, restricted (like fig12b)
    // to spans ending at or before the client reply of a completed session.
    std::map<std::uint64_t, double> translateBySession;
    std::map<std::uint64_t, double> waitBySession;
    const auto& sessions = deployed.engine().sessions();
    for (const telemetry::Span& span : deployed.engine().spans().snapshot()) {
        if (span.session == 0 || span.session > sessions.size()) continue;
        const auto& record = sessions[span.session - 1];
        if (!record.completed) continue;
        const net::TimePoint replyAt = record.clientReply.value_or(record.lastSend);
        if (span.end > replyAt) continue;
        if (span.name == "translate") {
            translateBySession[span.session] += bench::toMs(span.duration());
        } else if (span.name == "receive-wait") {
            waitBySession[span.session] += bench::toMs(span.duration());
        }
    }

    std::vector<double> translationMs, translateLegMs, waitLegMs;
    std::uint64_t ordinal = 0;
    for (const auto& session : sessions) {
        ++ordinal;
        ++cell.sessionsStarted;
        cell.bridgeRetransmits += session.retransmits;
        if (session.completed) {
            ++cell.sessionsCompleted;
            translationMs.push_back(bench::toMs(session.translationTime()));
            translateLegMs.push_back(translateBySession[ordinal]);
            waitLegMs.push_back(waitBySession[ordinal]);
        }
    }
    cell.medianTranslationMs = bench::summarize(std::move(translationMs)).medianMs;
    cell.medianTranslateLegMs = bench::summarize(std::move(translateLegMs)).medianMs;
    cell.medianWaitLegMs = bench::summarize(std::move(waitLegMs)).medianMs;
    cell.datagramsLost = network.datagramsLost();
    return cell;
}

}  // namespace

int main() {
    std::printf("Resilience sweep: bridged discovery under per-hop datagram loss\n");
    std::printf("(%d lookups per cell; engine: receiveTimeout 7 s, <=5 retransmits,\n", kLookups);
    std::printf(" backoff x1.5 + 100 ms jitter, 30 s watchdog; clients re-send every 8 s)\n\n");
    std::printf("%-18s %6s %9s %10s %9s %8s %10s\n", "Case", "Loss", "Success", "Sessions",
                "Complete", "Retrans", "MedianMs");

    std::vector<Cell> cells;
    for (const Case c : bridge::models::kAllCases) {
        for (const double loss : kLossSweep) {
            const Cell cell = sweepCase(c, loss);
            std::printf("%-18s %5.0f%% %8.1f%% %10zu %9zu %8zu %10.0f\n", cell.caseName,
                        100 * cell.loss, 100 * cell.successRate(), cell.sessionsStarted,
                        cell.sessionsCompleted, cell.bridgeRetransmits,
                        cell.medianTranslationMs);
            cells.push_back(cell);
        }
        std::printf("\n");
    }

    // Machine-readable dump for downstream tooling / CI trend lines.
    std::printf("JSON: [");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& cell = cells[i];
        std::printf("%s{\"case\":\"%s\",\"loss\":%.2f,\"lookups\":%d,\"successes\":%d,"
                    "\"successRate\":%.4f,\"sessionsStarted\":%zu,\"sessionsCompleted\":%zu,"
                    "\"bridgeRetransmits\":%zu,\"datagramsLost\":%zu,"
                    "\"medianTranslationMs\":%.1f,"
                    "\"legs\":{\"translateMs\":%.1f,\"receiveWaitMs\":%.1f}}",
                    i == 0 ? "" : ",", cell.caseName, cell.loss, cell.lookups, cell.successes,
                    cell.successRate(), cell.sessionsStarted, cell.sessionsCompleted,
                    cell.bridgeRetransmits, cell.datagramsLost, cell.medianTranslationMs,
                    cell.medianTranslateLegMs, cell.medianWaitLegMs);
    }
    std::printf("]\n");

    bool ok = true;
    for (const Cell& cell : cells) {
        if (cell.loss == 0.0 && cell.successes != cell.lookups) ok = false;
        if (cell.loss >= 0.25 - 1e-9 && cell.successRate() < kRequiredSuccessAtWorstLoss) {
            ok = false;
        }
    }
    std::printf("\nresilience bar (100%% at no loss; >=95%% at 25%% per-hop loss): %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
