// Ablation A3: micro-costs of the automata machinery -- the color hash f,
// model loading, translation-function application, XPath compilation and
// evaluation over the abstract-message projection.
#include <benchmark/benchmark.h>

#include "core/automata/color.hpp"
#include "core/bridge/models.hpp"
#include "core/merge/spec_loader.hpp"
#include "core/merge/synthesizer.hpp"
#include "core/merge/translation.hpp"
#include "xml/parser.hpp"
#include "xml/xpath.hpp"

namespace {

using namespace starlink;

void ColorHash(benchmark::State& state) {
    automata::ColorRegistry registry;
    automata::Color color{{automata::keys::transport, "udp"},
                          {automata::keys::port, "427"},
                          {automata::keys::mode, "async"},
                          {automata::keys::multicast, "yes"},
                          {automata::keys::group, "239.255.255.253"}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(registry.colorOf(color));
    }
}
BENCHMARK(ColorHash);

void ColorHashFreshRegistry(benchmark::State& state) {
    // First-sight cost, including registration.
    automata::Color color{{automata::keys::transport, "udp"}, {automata::keys::port, "427"}};
    for (auto _ : state) {
        automata::ColorRegistry registry;
        benchmark::DoNotOptimize(registry.colorOf(color));
    }
}
BENCHMARK(ColorHashFreshRegistry);

void LoadColoredAutomaton(benchmark::State& state) {
    const std::string xml = bridge::models::slpAutomaton(bridge::models::Role::Server);
    for (auto _ : state) {
        automata::ColorRegistry registry;
        auto automaton = merge::loadAutomaton(xml, registry);
        benchmark::DoNotOptimize(automaton);
    }
}
BENCHMARK(LoadColoredAutomaton);

void LoadAndValidateBridgeSpec(benchmark::State& state) {
    const auto spec = bridge::models::forCase(bridge::models::Case::SlpToUpnp, "10.0.0.9");
    for (auto _ : state) {
        automata::ColorRegistry registry;
        std::vector<std::shared_ptr<automata::ColoredAutomaton>> components;
        for (const auto& protocol : spec.protocols) {
            components.push_back(merge::loadAutomaton(protocol.automatonXml, registry));
        }
        auto merged = merge::loadBridge(spec.bridgeXml, std::move(components));
        merged->validate();
        benchmark::DoNotOptimize(merged);
    }
}
BENCHMARK(LoadAndValidateBridgeSpec);

void TranslationFunctionApply(benchmark::State& state) {
    auto registry = merge::TranslationRegistry::withDefaults();
    const Value input = Value::ofString("service:printer");
    for (auto _ : state) {
        auto output = registry->apply("slp_to_urn", input);
        benchmark::DoNotOptimize(output);
    }
}
BENCHMARK(TranslationFunctionApply);

void XpathCompile(benchmark::State& state) {
    for (auto _ : state) {
        auto path = xml::Path::compile("/field/primitiveField[label='ST']/value");
        benchmark::DoNotOptimize(path);
    }
}
BENCHMARK(XpathCompile);

void XpathEvaluate(benchmark::State& state) {
    const auto path = xml::Path::compile("/field/primitiveField[label='ST']/value");
    const auto doc = xml::parse(
        "<field>"
        "<primitiveField><label>MX</label><value>2</value></primitiveField>"
        "<primitiveField><label>ST</label><value>urn:x</value></primitiveField>"
        "</field>");
    for (auto _ : state) {
        benchmark::DoNotOptimize(path.first(*doc));
    }
}
BENCHMARK(XpathEvaluate);

void SynthesizeMerge(benchmark::State& state) {
    // Full ontology-driven generation of the SLP<->Bonjour merged automaton
    // (assignments, equivalences, deltas, validation).
    const std::string slpMdlXml = bridge::models::slpMdl();
    const std::string dnsMdlXml = bridge::models::dnsMdl();
    const std::string slpAutomatonXml =
        bridge::models::slpAutomaton(bridge::models::Role::Server);
    const std::string dnsAutomatonXml =
        bridge::models::mdnsAutomaton(bridge::models::Role::Client);
    const auto ontology = merge::Ontology::discovery();
    const auto slpDoc = mdl::MdlDocument::fromXml(slpMdlXml);
    const auto dnsDoc = mdl::MdlDocument::fromXml(dnsMdlXml);
    for (auto _ : state) {
        automata::ColorRegistry registry;
        merge::SynthesisInput input;
        input.servedAutomaton = merge::loadAutomaton(slpAutomatonXml, registry);
        input.servedMdl = &slpDoc;
        input.queriedAutomaton = merge::loadAutomaton(dnsAutomatonXml, registry);
        input.queriedMdl = &dnsDoc;
        input.ontology = &ontology;
        input.translations = merge::TranslationRegistry::withDefaults();
        auto result = merge::synthesizeMerge(input);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(SynthesizeMerge);

void XpathToDottedPath(benchmark::State& state) {
    for (auto _ : state) {
        auto dotted = merge::xpathToFieldPath("/field/primitiveField[label='ST']/value");
        benchmark::DoNotOptimize(dotted);
    }
}
BENCHMARK(XpathToDottedPath);

}  // namespace
