// Capacity sweep: the allocation and overload profile behind the
// million-session headline.
//
// Every row is DETERMINISTIC -- no wall clocks anywhere:
//
//   parse_allocs_per_msg_*    global counting operator new/delete over the
//                             valid-message corpus, once through the owning
//                             parse path (heap std::strings per field) and
//                             once through the zero-copy path (string_views
//                             over a pooled RxArena, reset per pass like the
//                             engine resets per session). The harness FAILS
//                             unless the arena path allocates >= 30% less.
//   session_*_per_session     marginal heap cost of one full SLP->UPnP bridge
//                             session through the shard engine, measured as
//                             the allocation delta between a 16-session and a
//                             144-session run (differencing cancels the fixed
//                             deploy/teardown cost).
//   overload_p99_*            p99 translation time (virtual) of the admitted
//                             half of a 2x-overload burst: 64 mixed-direction
//                             jobs against maxPendingPerShard=32. The shed
//                             half must carry engine.overload, never block.
//   history_*/projected_*     bounded-residency figures: a 100k-session
//                             replay against the default 4096-record ring,
//                             and the records-per-GiB projection from
//                             sizeof(SessionRecord).
//
// Allocation counts are structural (libstdc++ container growth), so they are
// stable run-to-run on one toolchain; the committed baseline is gated with
// bench_compare.py --absolute like the other virtual-time benches.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "core/bridge/models.hpp"
#include "core/engine/session_history.hpp"
#include "core/engine/shard_engine.hpp"
#include "core/mdl/codec.hpp"
#include "core/mdl/rx_arena.hpp"
#include "stats.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every operator-new in the process goes through here.
// Relaxed atomics because shard workers allocate from their own threads.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocCalls{0};
std::atomic<std::uint64_t> g_allocBytes{0};

// noinline keeps GCC from pairing the malloc/free behind the replacement
// operators at inlined call sites (-Wmismatched-new-delete false positive).
[[gnu::noinline]] void* countedAlloc(std::size_t size) noexcept {
    void* p = std::malloc(size == 0 ? 1 : size);
    if (p != nullptr) {
        g_allocCalls.fetch_add(1, std::memory_order_relaxed);
        g_allocBytes.fetch_add(size, std::memory_order_relaxed);
    }
    return p;
}

[[gnu::noinline]] void countedFree(void* p) noexcept { std::free(p); }

struct AllocSnapshot {
    std::uint64_t calls = 0;
    std::uint64_t bytes = 0;
};

AllocSnapshot snapshotAllocs() {
    return {g_allocCalls.load(std::memory_order_relaxed),
            g_allocBytes.load(std::memory_order_relaxed)};
}
}  // namespace

void* operator new(std::size_t size) {
    void* p = countedAlloc(size);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size) {
    void* p = countedAlloc(size);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept { return countedAlloc(size); }
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return countedAlloc(size);
}
void operator delete(void* p) noexcept { countedFree(p); }
void operator delete[](void* p) noexcept { countedFree(p); }
void operator delete(void* p, std::size_t) noexcept { countedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { countedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { countedFree(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { countedFree(p); }

namespace {

using namespace starlink;
using bridge::models::Case;
using bridge::models::kAllCases;

constexpr int kParseWarmupPasses = 4;
constexpr int kParseMeasurePasses = 64;
constexpr double kRequiredParseSavingsPct = 30.0;

constexpr int kSessionRunSmall = 16;
constexpr int kSessionRunLarge = 144;

constexpr std::size_t kOverloadAdmitted = 32;
constexpr std::size_t kOverloadSubmitted = 64;  // 2x the admission capacity

constexpr std::size_t kResidencyReplay = 100'000;

// -- corpus -----------------------------------------------------------------
// The same valid wire images the codec fuzz corpus pins (selector byte
// stripped): binary payloads as hex, the HTTP-shaped text ones verbatim.

Bytes fromHex(const char* hex) {
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
        return -1;
    };
    Bytes out;
    int high = -1;
    for (const char* p = hex; *p != '\0'; ++p) {
        const int n = nibble(*p);
        if (n < 0) continue;
        if (high < 0) {
            high = n;
        } else {
            out.push_back(static_cast<std::uint8_t>((high << 4) | n));
            high = -1;
        }
    }
    return out;
}

Bytes fromText(const char* text) {
    const auto* begin = reinterpret_cast<const std::uint8_t*>(text);
    return Bytes(begin, begin + std::strlen(text));
}

struct CorpusEntry {
    const char* name;
    Bytes wire;
};

std::vector<CorpusEntry> buildCorpus() {
    std::vector<CorpusEntry> corpus;
    corpus.push_back({"slp-request",
                      fromHex("02010000340000000000000b0002656e0000000f73657276"
                              "6963653a7072696e746572000d28636f6c6f75723d747275"
                              "65290000")});
    corpus.push_back({"slp-reply",
                      fromHex("020200003d0000000000000b0002656e0000000100ffff00"
                              "24736572766963653a7072696e7465723a2f2f31302e302e"
                              "302e333a3531352f7175657565")});
    corpus.push_back({"ssdp-msearch",
                      fromText("M-SEARCH * HTTP/1.1\r\n"
                               "HOST: 239.255.255.250:1900\r\n"
                               "MAN: \"ssdp:discover\"\r\n"
                               "MX: 2\r\n"
                               "ST: urn:schemas-upnp-org:service:printer:1\r\n\r\n")});
    corpus.push_back({"ssdp-response",
                      fromText("HTTP/1.1 200 OK\r\n"
                               "CACHE-CONTROL: max-age=1800\r\n"
                               "EXT: \r\n"
                               "LOCATION: http://10.0.0.3:8080/description.xml\r\n"
                               "SERVER: Starlink-Sim/1.0 UPnP/1.0\r\n"
                               "ST: urn:schemas-upnp-org:service:printer:1\r\n"
                               "USN: uuid:device-1::urn:schemas-upnp-org:service:printer:1\r\n"
                               "\r\n")});
    corpus.push_back({"dns-question",
                      fromHex("000700000001000000000000085f7072696e746572045f74"
                              "6370056c6f63616c00000c0001")});
    corpus.push_back({"dns-response",
                      fromHex("000784000000000100000000085f7072696e746572045f74"
                              "6370056c6f63616c0000100001000000780017687474703a"
                              "2f2f31302e302e302e333a3633312f697070")});
    corpus.push_back({"http-request",
                      fromText("GET /description.xml HTTP/1.1\r\n"
                               "Host: 10.0.0.3:8080\r\n\r\n")});
    corpus.push_back({"http-response",
                      fromText("HTTP/1.1 200 OK\r\n"
                               "Content-Type: text/xml\r\n"
                               "Content-Length: 22\r\n\r\n"
                               "<root><device/></root>")});
    return corpus;
}

/// All four MDL codecs the six bridge directions deploy (SLP, SSDP, DNS,
/// HTTP), deduped by protocol name.
std::vector<std::shared_ptr<mdl::MessageCodec>> buildCodecs() {
    std::vector<std::shared_ptr<mdl::MessageCodec>> codecs;
    for (const Case c : {Case::SlpToUpnp, Case::SlpToBonjour}) {
        const auto spec = bridge::models::forCase(c, "10.0.0.9");
        for (const auto& protocol : spec.protocols) {
            auto codec = mdl::MessageCodec::fromXml(protocol.mdlXml);
            const auto known = std::find_if(
                codecs.begin(), codecs.end(),
                [&codec](const auto& have) { return have->protocol() == codec->protocol(); });
            if (known == codecs.end()) codecs.push_back(std::move(codec));
        }
    }
    return codecs;
}

struct ParsePathCost {
    double allocsPerMsg = 0;
    double bytesPerMsg = 0;
    std::size_t messages = 0;
};

/// One measured sweep over the corpus: `arena` null = owning path. Consumes
/// the parsed message each iteration so destruction cost is counted too.
ParsePathCost measureParsePath(
    const std::vector<std::pair<const mdl::MessageCodec*, const CorpusEntry*>>& matched,
    mdl::RxArena* arena) {
    auto onePass = [&matched, arena]() {
        for (const auto& [codec, entry] : matched) {
            std::string error;
            auto message = codec->parse(entry->wire, arena, &error);
            if (!message.has_value()) {
                std::fprintf(stderr, "FATAL: %s stopped parsing mid-bench: %s\n", entry->name,
                             error.c_str());
                std::exit(1);
            }
        }
        if (arena != nullptr) arena->reset();  // the per-session boundary
    };

    for (int i = 0; i < kParseWarmupPasses; ++i) onePass();
    const AllocSnapshot before = snapshotAllocs();
    for (int i = 0; i < kParseMeasurePasses; ++i) onePass();
    const AllocSnapshot after = snapshotAllocs();

    ParsePathCost cost;
    cost.messages = matched.size() * kParseMeasurePasses;
    cost.allocsPerMsg = static_cast<double>(after.calls - before.calls) /
                        static_cast<double>(cost.messages);
    cost.bytesPerMsg = static_cast<double>(after.bytes - before.bytes) /
                       static_cast<double>(cost.messages);
    return cost;
}

/// Full shard-engine lifecycle (construct, submit, run, destruct) of
/// `sessions` clean SLP->UPnP sessions; returns the allocation total.
AllocSnapshot runSessionBatch(int sessions) {
    const AllocSnapshot before = snapshotAllocs();
    {
        engine::ShardEngineOptions options;
        options.shards = 1;
        engine::ShardEngine shardEngine(options);
        for (int i = 0; i < sessions; ++i) {
            engine::SessionJob job;
            job.caseId = Case::SlpToUpnp;
            job.key = "cap-" + std::to_string(i);
            shardEngine.submit(job);
        }
        shardEngine.run();
        std::size_t completed = 0;
        for (const auto& report : shardEngine.reports()) completed += report.completedSessions;
        if (completed != static_cast<std::size_t>(sessions)) {
            std::fprintf(stderr, "FATAL: session batch completed %zu of %d sessions\n", completed,
                         sessions);
            std::exit(1);
        }
    }
    const AllocSnapshot after = snapshotAllocs();
    return {after.calls - before.calls, after.bytes - before.bytes};
}

bench::JsonRow makeRow(const std::string& name, double value, std::size_t samples) {
    bench::Summary summary;
    summary.minMs = summary.medianMs = summary.maxMs = value;
    summary.samples = samples;
    return {name, summary};
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json = true;
    }

    std::vector<bench::JsonRow> rows;
    bool pass = true;
    std::printf("Capacity sweep: allocations, overload shedding, residency (deterministic)\n");

    // -- parse path: owning vs zero-copy -------------------------------------
    const auto corpus = buildCorpus();
    const auto codecs = buildCodecs();
    std::vector<std::pair<const mdl::MessageCodec*, const CorpusEntry*>> matched;
    for (const auto& entry : corpus) {
        const mdl::MessageCodec* owner = nullptr;
        for (const auto& codec : codecs) {
            if (codec->parse(entry.wire, nullptr, nullptr).has_value()) {
                owner = codec.get();
                break;
            }
        }
        if (owner == nullptr) {
            std::fprintf(stderr, "FATAL: no deployed codec parses corpus entry %s\n", entry.name);
            return 1;
        }
        matched.emplace_back(owner, &entry);
    }

    mdl::RxArena arena;
    const ParsePathCost heap = measureParsePath(matched, nullptr);
    const ParsePathCost zeroCopy = measureParsePath(matched, &arena);
    const double savingsPct =
        heap.allocsPerMsg > 0 ? 100.0 * (1.0 - zeroCopy.allocsPerMsg / heap.allocsPerMsg) : 0.0;

    std::printf("%-34s %10.2f allocs/msg %10.1f bytes/msg\n", "parse owning path",
                heap.allocsPerMsg, heap.bytesPerMsg);
    std::printf("%-34s %10.2f allocs/msg %10.1f bytes/msg (arena resident %zu KiB)\n",
                "parse zero-copy path", zeroCopy.allocsPerMsg, zeroCopy.bytesPerMsg,
                arena.bytesReserved() / 1024);
    std::printf("%-34s %10.1f%%  (gate: >= %.0f%%)\n", "parse allocation savings", savingsPct,
                kRequiredParseSavingsPct);
    rows.push_back(makeRow("parse_allocs_per_msg_heap", heap.allocsPerMsg, heap.messages));
    rows.push_back(
        makeRow("parse_allocs_per_msg_arena", zeroCopy.allocsPerMsg, zeroCopy.messages));
    rows.push_back(makeRow("parse_arena_savings_pct", savingsPct, heap.messages));
    if (savingsPct < kRequiredParseSavingsPct) {
        std::fprintf(stderr, "FAIL: zero-copy parse path saves %.1f%% allocations (< %.0f%%)\n",
                     savingsPct, kRequiredParseSavingsPct);
        pass = false;
    }

    // -- marginal heap cost of one bridge session ----------------------------
    const AllocSnapshot small = runSessionBatch(kSessionRunSmall);
    const AllocSnapshot large = runSessionBatch(kSessionRunLarge);
    const double sessionDelta = kSessionRunLarge - kSessionRunSmall;
    const double allocsPerSession =
        static_cast<double>(large.calls - small.calls) / sessionDelta;
    const double kibPerSession =
        static_cast<double>(large.bytes - small.bytes) / sessionDelta / 1024.0;
    std::printf("%-34s %10.1f allocs    %10.2f KiB heap\n", "marginal cost per session",
                allocsPerSession, kibPerSession);
    rows.push_back(makeRow("session_allocs_per_session", allocsPerSession,
                           kSessionRunLarge - kSessionRunSmall));
    rows.push_back(makeRow("session_heap_kib_per_session", kibPerSession,
                           kSessionRunLarge - kSessionRunSmall));

    // -- p99 translation under 2x overload -----------------------------------
    engine::ShardEngineOptions overload;
    overload.shards = 1;
    overload.maxPendingPerShard = kOverloadAdmitted;
    engine::ShardEngine burst(overload);
    for (std::size_t i = 0; i < kOverloadSubmitted; ++i) {
        engine::SessionJob job;
        job.caseId = kAllCases[i % 6];
        job.key = "burst-" + std::to_string(i);
        burst.submit(job);
    }
    burst.run();
    std::size_t shed = 0;
    std::vector<double> translationsMs;
    for (const auto& result : burst.results()) {
        if (result.shed) {
            ++shed;
            if (result.error != errc::ErrorCode::EngineOverload || !result.outcomes.empty()) {
                std::fprintf(stderr, "FAIL: shed job %s lacks the engine.overload code\n",
                             result.job.key.c_str());
                pass = false;
            }
            continue;
        }
        for (const auto& outcome : result.outcomes) {
            if (outcome.completed) {
                translationsMs.push_back(static_cast<double>(outcome.translationUs) / 1000.0);
            }
        }
    }
    if (shed != kOverloadSubmitted - kOverloadAdmitted) {
        std::fprintf(stderr, "FAIL: expected %zu shed jobs under 2x overload, saw %zu\n",
                     kOverloadSubmitted - kOverloadAdmitted, shed);
        pass = false;
    }
    double p99Ms = 0;
    if (!translationsMs.empty()) {
        std::sort(translationsMs.begin(), translationsMs.end());
        const std::size_t index =
            (translationsMs.size() * 99 + 99) / 100 - 1;  // ceil(0.99*n) - 1
        p99Ms = translationsMs[std::min(index, translationsMs.size() - 1)];
    }
    std::printf("%-34s %10.3f ms virtual (%zu admitted, %zu shed)\n",
                "overload p99 translation", p99Ms, translationsMs.size(), shed);
    rows.push_back(makeRow("overload_p99_translation_ms", p99Ms, translationsMs.size()));
    rows.push_back(makeRow("overload_shed_sessions", static_cast<double>(shed), shed));

    // -- bounded residency ----------------------------------------------------
    engine::SessionHistory history;  // the engine default: 4096-record ring
    for (std::size_t i = 0; i < kResidencyReplay; ++i) {
        engine::SessionRecord record;
        record.completed = (i % 2) == 0;
        if (!record.completed) {
            record.cause = engine::FailureCause::Timeout;
            record.code = errc::ErrorCode::EngineRetryExhausted;
        }
        history.record(std::move(record));
    }
    if (history.size() != engine::SessionHistory::kDefaultCapacity ||
        history.totalEnded() != kResidencyReplay) {
        std::fprintf(stderr, "FAIL: 100k replay left %zu resident records (want %zu)\n",
                     history.size(), engine::SessionHistory::kDefaultCapacity);
        pass = false;
    }
    const double recordsPerGib =
        static_cast<double>(1024ull * 1024 * 1024) / sizeof(engine::SessionRecord);
    std::printf("%-34s %10zu records after %zu sessions\n", "history residency", history.size(),
                kResidencyReplay);
    std::printf("%-34s %10.0f records/GiB (sizeof(SessionRecord)=%zu)\n",
                "projected retained capacity", recordsPerGib, sizeof(engine::SessionRecord));
    rows.push_back(makeRow("history_resident_records", static_cast<double>(history.size()),
                           kResidencyReplay));
    rows.push_back(makeRow("projected_sessions_per_gib", recordsPerGib, 1));

    if (json) {
        if (!bench::writeJson("BENCH_capacity.json", "capacity_sweep",
                              "count/ms/pct per row (deterministic)", rows)) {
            return 1;
        }
    }
    return pass ? 0 : 1;
}
