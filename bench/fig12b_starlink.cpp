// Fig 12(b): "Translation times of Starlink connectors".
//
// For each of the six interoperability cases: deploy the Starlink bridge,
// run 100 bridged lookups, and report min/median/max of the TRANSLATION time
// -- "the time from when the message was first received by the framework
// until the translated output response was sent on the output socket"
// (paper section VI). Cases ending in SLP are dominated by the ~6 s legacy
// SLP service response, exactly as the paper observes ("the cost of
// translation is bounded by the response of the legacy protocols").
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <vector>

#include "net/sim_network.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/telemetry/span.hpp"
#include "native_bench.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "stats.hpp"

namespace {

using namespace starlink;
using bridge::models::Case;

constexpr int kRepetitions = 100;

/// The translation-time distribution plus its decomposition into the two
/// legs that tile it: translate (the engine's interpretation windows) and
/// receive-wait (blocked on legacy peers). legsTile asserts the invariant
/// that per-session leg durations sum to translationTime within
/// max(1 ms, 1%).
struct CaseResult {
    bench::Summary overall;
    bench::Summary translateLeg;
    bench::Summary waitLeg;
    bool legsTile = true;
};

CaseResult benchCase(Case c, std::size_t* specLines) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    const auto models = bridge::models::forCase(c, "10.0.0.9");
    if (specLines != nullptr) *specLines = bridge::models::bridgeSpecLines(models);
    engine::EngineOptions options;
    // Span collection does not consume virtual time, so the translation
    // medians are identical with it on; size the buffer for every session.
    options.spanCapacity = 1 << 16;
    auto& deployed = starlink.deploy(models, "10.0.0.9", options);

    // Heterogeneous legacy service.
    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    switch (c) {
        case Case::UpnpToSlp:
        case Case::BonjourToSlp:
            slpService.emplace(network, slp::ServiceAgent::Config{});
            break;
        case Case::SlpToBonjour:
        case Case::UpnpToBonjour:
            mdnsService.emplace(network, mdns::Responder::Config{});
            break;
        case Case::SlpToUpnp:
        case Case::BonjourToUpnp:
            upnpService.emplace(network, ssdp::Device::Config{});
            break;
    }

    // Legacy client, driven for kRepetitions sequential lookups.
    std::optional<slp::UserAgent> slpClient;
    std::optional<mdns::Resolver> mdnsClient;
    std::optional<ssdp::ControlPoint> upnpClient;
    auto runOnce = [&] {
        switch (c) {
            case Case::SlpToUpnp:
            case Case::SlpToBonjour:
                if (!slpClient) slpClient.emplace(network, slp::UserAgent::Config{});
                slpClient->lookup("service:printer", [](const slp::UserAgent::Result&) {});
                break;
            case Case::UpnpToSlp:
            case Case::UpnpToBonjour:
                if (!upnpClient) upnpClient.emplace(network, ssdp::ControlPoint::Config{});
                upnpClient->search("urn:schemas-upnp-org:service:printer:1",
                                   [](const ssdp::ControlPoint::Result&) {});
                break;
            case Case::BonjourToUpnp:
            case Case::BonjourToSlp:
                if (!mdnsClient) mdnsClient.emplace(network, mdns::Resolver::Config{});
                mdnsClient->browse("_printer._tcp.local", [](const mdns::Resolver::Result&) {});
                break;
        }
        scheduler.runUntilIdle();
    };
    for (int i = 0; i < kRepetitions; ++i) runOnce();

    std::vector<double> samples;
    for (const auto& session : deployed.engine().sessions()) {
        if (session.completed) samples.push_back(bench::toMs(session.translationTime()));
    }

    // Per-leg decomposition from the session span trees: for each completed
    // session, total the translate and receive-wait legs that end at or
    // before the client reply -- those tile [firstReceive, clientReply].
    std::map<std::uint64_t, double> translateBySession;
    std::map<std::uint64_t, double> waitBySession;
    for (const telemetry::Span& span : deployed.engine().spans().snapshot()) {
        if (span.session == 0) continue;
        const auto& record = deployed.engine().sessions()[span.session - 1];
        if (!record.completed) continue;
        const net::TimePoint replyAt =
            record.clientReply.value_or(record.lastSend);
        if (span.end > replyAt) continue;
        if (span.name == "translate") {
            translateBySession[span.session] += bench::toMs(span.duration());
        } else if (span.name == "receive-wait") {
            waitBySession[span.session] += bench::toMs(span.duration());
        }
    }

    CaseResult result;
    bool legsTile = true;
    std::vector<double> translateMs, waitMs;
    std::uint64_t ordinal = 0;
    for (const auto& session : deployed.engine().sessions()) {
        ++ordinal;
        if (!session.completed) continue;
        const double t = translateBySession[ordinal];
        const double w = waitBySession[ordinal];
        translateMs.push_back(t);
        waitMs.push_back(w);
        const double total = bench::toMs(session.translationTime());
        const double slack = total > 100.0 ? total * 0.01 : 1.0;
        if (std::abs(t + w - total) > slack) legsTile = false;
    }
    result.overall = bench::summarize(std::move(samples));
    result.translateLeg = bench::summarize(std::move(translateMs));
    result.waitLeg = bench::summarize(std::move(waitMs));
    result.legsTile = legsTile;
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json = true;
    }
    std::printf("Fig 12(b): Translation times of Starlink connectors\n");
    std::printf("(%d bridged lookups per case, virtual-time milliseconds)\n\n", kRepetitions);
    std::printf("%-18s %8s %8s %8s\n", "Case", "Min", "Median", "Max");

    const char* paperRows[] = {
        " 319 /  337 /  343", " 255 /  271 /  287", "6208 / 6311 / 6450",
        " 253 /  289 /  311", " 334 /  359 /  379", "6168 / 6190 / 6244",
    };

    CaseResult results[6];
    std::size_t specLines[6] = {};
    int i = 0;
    for (const Case c : bridge::models::kAllCases) {
        results[i] = benchCase(c, &specLines[i]);
        bench::printRow(bridge::models::caseName(c), results[i].overall, paperRows[i]);
        ++i;
    }

    // Where the translation time goes: the engine's own interpretation
    // windows vs. time blocked on the legacy peers' replies.
    std::printf("\nPer-leg breakdown of the median session (virtual ms):\n");
    std::printf("%-18s %10s %13s\n", "Case", "translate", "receive-wait");
    i = 0;
    for (const Case c : bridge::models::kAllCases) {
        std::printf("%-18s %10.0f %13.0f\n", bridge::models::caseName(c),
                    results[i].translateLeg.medianMs, results[i].waitLeg.medianMs);
        ++i;
    }

    // The paper's overhead discussion: "in case 6 it is approximately a 600
    // percentage increase in response time, while in case 1 it is 5
    // percent" -- translation time relative to the CLIENT protocol's native
    // response time.
    const auto nativeSlp = bench::benchNativeSlp(20);
    const auto nativeBonjour = bench::benchNativeBonjour(20);
    const auto nativeUpnp = bench::benchNativeUpnp(20);
    const double nativeOfClient[6] = {nativeSlp.medianMs,     nativeSlp.medianMs,
                                      nativeUpnp.medianMs,    nativeUpnp.medianMs,
                                      nativeBonjour.medianMs, nativeBonjour.medianMs};
    std::printf("\nTranslation cost relative to the client protocol's native response\n");
    std::printf("(paper: case 1 ~5%%, case 6 ~600%%):\n");
    i = 0;
    for (const Case c : bridge::models::kAllCases) {
        std::printf("  %-18s %6.0f%%\n", bridge::models::caseName(c),
                    100.0 * results[i].overall.medianMs / nativeOfClient[i]);
        ++i;
    }

    std::printf("\nModel sizes (paper V-C: merged automata are ~100 lines of XML):\n");
    i = 0;
    for (const Case c : bridge::models::kAllCases) {
        std::printf("  %-18s %3zu lines of bridge XML\n", bridge::models::caseName(c),
                    specLines[i++]);
    }

    if (json) {
        std::vector<bench::JsonRow> rows;
        i = 0;
        for (const Case c : bridge::models::kAllCases) {
            const std::string name = bridge::models::caseName(c);
            rows.push_back({name, results[i].overall});
            rows.push_back({name + "/leg/translate", results[i].translateLeg});
            rows.push_back({name + "/leg/receive-wait", results[i].waitLeg});
            ++i;
        }
        if (!bench::writeJson("BENCH_fig12b.json", "fig12b_starlink", "ms", rows)) return 1;
    }

    // Shape checks: every case completes all sessions; the ->SLP cases are
    // dominated by the legacy SLP response; the non-SLP-target cases sit in
    // the few-hundred-ms band well below their native client experience;
    // and per-session span legs tile the translation window.
    bool ok = true;
    for (const auto& result : results) ok = ok && result.overall.samples == kRepetitions;
    const double slpBound = 5000;
    ok = ok && results[2].overall.medianMs > slpBound &&
         results[5].overall.medianMs > slpBound;  // cases 3, 6
    ok = ok && results[0].overall.medianMs < 1000 && results[1].overall.medianMs < 1000 &&
         results[3].overall.medianMs < 1000 && results[4].overall.medianMs < 1000;
    bool legsOk = true;
    for (const auto& result : results) legsOk = legsOk && result.legsTile;
    std::printf("\nshape check (100%% completion; ->SLP cases ~6 s; others sub-second): %s\n",
                ok ? "PASS" : "FAIL");
    std::printf("span-leg check (translate + receive-wait == translation time): %s\n",
                legsOk ? "PASS" : "FAIL");
    return ok && legsOk ? 0 : 1;
}
