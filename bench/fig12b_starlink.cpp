// Fig 12(b): "Translation times of Starlink connectors".
//
// For each of the six interoperability cases: deploy the Starlink bridge,
// run 100 bridged lookups, and report min/median/max of the TRANSLATION time
// -- "the time from when the message was first received by the framework
// until the translated output response was sent on the output socket"
// (paper section VI). Cases ending in SLP are dominated by the ~6 s legacy
// SLP service response, exactly as the paper observes ("the cost of
// translation is bounded by the response of the legacy protocols").
#include <cstdio>
#include <cstring>
#include <optional>
#include <vector>

#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "native_bench.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "stats.hpp"

namespace {

using namespace starlink;
using bridge::models::Case;

constexpr int kRepetitions = 100;

bench::Summary benchCase(Case c, std::size_t* specLines) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    const auto models = bridge::models::forCase(c, "10.0.0.9");
    if (specLines != nullptr) *specLines = bridge::models::bridgeSpecLines(models);
    auto& deployed = starlink.deploy(models, "10.0.0.9");

    // Heterogeneous legacy service.
    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    switch (c) {
        case Case::UpnpToSlp:
        case Case::BonjourToSlp:
            slpService.emplace(network, slp::ServiceAgent::Config{});
            break;
        case Case::SlpToBonjour:
        case Case::UpnpToBonjour:
            mdnsService.emplace(network, mdns::Responder::Config{});
            break;
        case Case::SlpToUpnp:
        case Case::BonjourToUpnp:
            upnpService.emplace(network, ssdp::Device::Config{});
            break;
    }

    // Legacy client, driven for kRepetitions sequential lookups.
    std::optional<slp::UserAgent> slpClient;
    std::optional<mdns::Resolver> mdnsClient;
    std::optional<ssdp::ControlPoint> upnpClient;
    auto runOnce = [&] {
        switch (c) {
            case Case::SlpToUpnp:
            case Case::SlpToBonjour:
                if (!slpClient) slpClient.emplace(network, slp::UserAgent::Config{});
                slpClient->lookup("service:printer", [](const slp::UserAgent::Result&) {});
                break;
            case Case::UpnpToSlp:
            case Case::UpnpToBonjour:
                if (!upnpClient) upnpClient.emplace(network, ssdp::ControlPoint::Config{});
                upnpClient->search("urn:schemas-upnp-org:service:printer:1",
                                   [](const ssdp::ControlPoint::Result&) {});
                break;
            case Case::BonjourToUpnp:
            case Case::BonjourToSlp:
                if (!mdnsClient) mdnsClient.emplace(network, mdns::Resolver::Config{});
                mdnsClient->browse("_printer._tcp.local", [](const mdns::Resolver::Result&) {});
                break;
        }
        scheduler.runUntilIdle();
    };
    for (int i = 0; i < kRepetitions; ++i) runOnce();

    std::vector<double> samples;
    for (const auto& session : deployed.engine().sessions()) {
        if (session.completed) samples.push_back(bench::toMs(session.translationTime()));
    }
    return bench::summarize(std::move(samples));
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json = true;
    }
    std::printf("Fig 12(b): Translation times of Starlink connectors\n");
    std::printf("(%d bridged lookups per case, virtual-time milliseconds)\n\n", kRepetitions);
    std::printf("%-18s %8s %8s %8s\n", "Case", "Min", "Median", "Max");

    const char* paperRows[] = {
        " 319 /  337 /  343", " 255 /  271 /  287", "6208 / 6311 / 6450",
        " 253 /  289 /  311", " 334 /  359 /  379", "6168 / 6190 / 6244",
    };

    bench::Summary results[6];
    std::size_t specLines[6] = {};
    int i = 0;
    for (const Case c : bridge::models::kAllCases) {
        results[i] = benchCase(c, &specLines[i]);
        bench::printRow(bridge::models::caseName(c), results[i], paperRows[i]);
        ++i;
    }

    // The paper's overhead discussion: "in case 6 it is approximately a 600
    // percentage increase in response time, while in case 1 it is 5
    // percent" -- translation time relative to the CLIENT protocol's native
    // response time.
    const auto nativeSlp = bench::benchNativeSlp(20);
    const auto nativeBonjour = bench::benchNativeBonjour(20);
    const auto nativeUpnp = bench::benchNativeUpnp(20);
    const double nativeOfClient[6] = {nativeSlp.medianMs,     nativeSlp.medianMs,
                                      nativeUpnp.medianMs,    nativeUpnp.medianMs,
                                      nativeBonjour.medianMs, nativeBonjour.medianMs};
    std::printf("\nTranslation cost relative to the client protocol's native response\n");
    std::printf("(paper: case 1 ~5%%, case 6 ~600%%):\n");
    i = 0;
    for (const Case c : bridge::models::kAllCases) {
        std::printf("  %-18s %6.0f%%\n", bridge::models::caseName(c),
                    100.0 * results[i].medianMs / nativeOfClient[i]);
        ++i;
    }

    std::printf("\nModel sizes (paper V-C: merged automata are ~100 lines of XML):\n");
    i = 0;
    for (const Case c : bridge::models::kAllCases) {
        std::printf("  %-18s %3zu lines of bridge XML\n", bridge::models::caseName(c),
                    specLines[i++]);
    }

    if (json) {
        std::vector<bench::JsonRow> rows;
        i = 0;
        for (const Case c : bridge::models::kAllCases) {
            rows.push_back({bridge::models::caseName(c), results[i++]});
        }
        if (!bench::writeJson("BENCH_fig12b.json", "fig12b_starlink", "ms", rows)) return 1;
    }

    // Shape checks: every case completes all sessions; the ->SLP cases are
    // dominated by the legacy SLP response; the non-SLP-target cases sit in
    // the few-hundred-ms band well below their native client experience.
    bool ok = true;
    for (const auto& summary : results) ok = ok && summary.samples == kRepetitions;
    const double slpBound = 5000;
    ok = ok && results[2].medianMs > slpBound && results[5].medianMs > slpBound;  // cases 3, 6
    ok = ok && results[0].medianMs < 1000 && results[1].medianMs < 1000 &&
         results[3].medianMs < 1000 && results[4].medianMs < 1000;
    std::printf("\nshape check (100%% completion; ->SLP cases ~6 s; others sub-second): %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
