// Round-trip tests for the model serializers: write -> load must reproduce
// the model, and written synthesized/learned models must redeploy.
#include <gtest/gtest.h>

#include "core/automata/learner.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/merge/spec_loader.hpp"
#include "core/merge/spec_writer.hpp"
#include "core/merge/synthesizer.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "sim_fixture.hpp"

namespace starlink::merge {
namespace {

using automata::Action;
using automata::ColoredAutomaton;
using bridge::models::Case;
using bridge::models::Role;
using testing::SimTest;

void expectSameAutomaton(const ColoredAutomaton& a, const ColoredAutomaton& b) {
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.initialState(), b.initialState());
    EXPECT_EQ(a.acceptingStates(), b.acceptingStates());
    ASSERT_EQ(a.states().size(), b.states().size());
    for (std::size_t i = 0; i < a.states().size(); ++i) {
        EXPECT_EQ(a.states()[i]->id(), b.states()[i]->id());
        EXPECT_EQ(a.states()[i]->color(), b.states()[i]->color());
    }
    ASSERT_EQ(a.transitions().size(), b.transitions().size());
    for (std::size_t i = 0; i < a.transitions().size(); ++i) {
        EXPECT_EQ(a.transitions()[i].from, b.transitions()[i].from);
        EXPECT_EQ(a.transitions()[i].to, b.transitions()[i].to);
        EXPECT_EQ(a.transitions()[i].action, b.transitions()[i].action);
        EXPECT_EQ(a.transitions()[i].messageType, b.transitions()[i].messageType);
    }
}

TEST(SpecWriter, AutomatonRoundTripsAllBuiltIns) {
    automata::ColorRegistry colors;
    const std::string documents[] = {
        bridge::models::slpAutomaton(Role::Server),
        bridge::models::slpAutomaton(Role::Client),
        bridge::models::mdnsAutomaton(Role::Server),
        bridge::models::ssdpAutomaton(Role::Client),
        bridge::models::httpAutomaton(Role::Server, 8123),
        bridge::models::ldapAutomaton(Role::Client, "10.0.0.3"),
    };
    for (const std::string& xml : documents) {
        const auto original = loadAutomaton(xml, colors);
        const std::string rewritten = writeAutomaton(*original, colors);
        const auto reloaded = loadAutomaton(rewritten, colors);
        expectSameAutomaton(*original, *reloaded);
    }
}

TEST(SpecWriter, BridgeRoundTripsAllSixCases) {
    for (const Case c : bridge::models::kAllCases) {
        automata::ColorRegistry colors;
        const auto spec = bridge::models::forCase(c, "10.0.0.9");
        std::vector<std::shared_ptr<ColoredAutomaton>> components;
        std::vector<std::shared_ptr<ColoredAutomaton>> componentsAgain;
        for (const auto& protocol : spec.protocols) {
            components.push_back(loadAutomaton(protocol.automatonXml, colors));
            componentsAgain.push_back(loadAutomaton(protocol.automatonXml, colors));
        }
        const auto original = loadBridge(spec.bridgeXml, std::move(components));
        original->validate();
        const std::string rewritten = writeBridge(*original);
        const auto reloaded = loadBridge(rewritten, std::move(componentsAgain));
        EXPECT_NO_THROW(reloaded->validate()) << bridge::models::caseName(c);
        EXPECT_EQ(reloaded->assignments().size(), original->assignments().size());
        EXPECT_EQ(reloaded->deltas().size(), original->deltas().size());
        EXPECT_EQ(reloaded->equivalences().size(), original->equivalences().size());
        EXPECT_EQ(reloaded->initialState(), original->initialState());
        // Delta actions (set_host args) survive.
        for (std::size_t i = 0; i < original->deltas().size(); ++i) {
            EXPECT_EQ(reloaded->deltas()[i].actions.size(),
                      original->deltas()[i].actions.size());
        }
    }
}

TEST(SpecWriter, LearnedAutomatonSerializes) {
    automata::BehaviourLearner learner;
    learner.observeSession(
        {{Action::Receive, "SLPSrvRequest"}, {Action::Send, "SLPSrvReply"}});
    automata::ColorRegistry colors;
    automata::Color color{{automata::keys::transport, "udp"},
                          {automata::keys::port, "427"},
                          {automata::keys::multicast, "yes"},
                          {automata::keys::group, "239.255.255.253"},
                          {automata::keys::mode, "async"}};
    const auto learned = learner.build("SLP", color, colors, "s1");
    const auto reloaded = loadAutomaton(writeAutomaton(*learned, colors), colors);
    expectSameAutomaton(*learned, *reloaded);
}

class SynthesizedRoundTripTest : public SimTest {};

TEST_F(SynthesizedRoundTripTest, SynthesizedBridgeSurvivesSaveAndRedeploy) {
    // Synthesize, serialize to XML, then deploy FROM THE XML -- the full
    // generate/store/distribute/redeploy cycle.
    automata::ColorRegistry colors;
    auto translations = TranslationRegistry::withDefaults();
    const auto slpCodec = mdl::MdlDocument::fromXml(bridge::models::slpMdl());
    const auto dnsCodec = mdl::MdlDocument::fromXml(bridge::models::dnsMdl());

    SynthesisInput input;
    input.servedAutomaton = loadAutomaton(bridge::models::slpAutomaton(Role::Server), colors);
    input.servedMdl = &slpCodec;
    input.queriedAutomaton =
        loadAutomaton(bridge::models::mdnsAutomaton(Role::Client), colors);
    input.queriedMdl = &dnsCodec;
    input.ontology = nullptr;
    const Ontology ontology = Ontology::discovery();
    input.ontology = &ontology;
    input.translations = translations;
    const SynthesisResult synthesis = synthesizeMerge(input);

    bridge::models::DeploymentSpec spec;
    spec.protocols = {{bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server)},
                      {bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Client)}};
    spec.bridgeXml = writeBridge(*synthesis.merged);

    // NOTE: the synthesized assignments may use composite "ont:..." T
    // functions, which must exist in the deploying facade's registry.
    bridge::Starlink starlink(network);
    for (const std::string& name : translations->names()) {
        if (name.rfind("ont:", 0) == 0) {
            auto* source = translations.get();
            starlink.translations().add(
                name, [source, name](const Value& v) { return source->apply(name, v); });
        }
    }
    auto& deployed = starlink.deploy(spec, "10.0.0.9");

    mdns::Responder::Config responderConfig;
    responderConfig.responseDelayBase = net::ms(5);
    mdns::Responder responder(network, responderConfig);
    slp::UserAgent client(network, {});
    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], responderConfig.url);
    EXPECT_TRUE(deployed.engine().sessions()[0].completed);
}

}  // namespace
}  // namespace starlink::merge
