// Backend-parametrized conformance suite: the six-direction interop matrix
// of test_integration.cpp, executed on BOTH transport backends through the
// net::Network interface alone, asserting the backends are observationally
// equivalent -- same lookup outcome, same session completion, same abort
// codes, same per-direction message tallies (docs/TRANSPORT.md).
//
// The sim rows run on virtual time; the OS rows run on real loopback sockets
// (kernel-assigned ports, so parallel ctest invocations never collide). OS
// rows are skipped -- not failed -- in sandboxes whose kernel does not
// deliver multicast on the loopback interface.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/net/os_network.hpp"
#include "net/sim_network.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"

namespace starlink {
namespace {

using bridge::models::Case;

constexpr const char* kBridgeHost = "10.0.0.9";
const net::Duration kSessionBudget = net::ms(15000);

/// Everything a direction's run exposes to equivalence assertions.
struct Outcome {
    std::string backend;
    bool success = false;
    std::string url;
    std::size_t sessions = 0;
    bool completed = false;
    engine::FailureCause cause = engine::FailureCause::None;
    errc::ErrorCode code = errc::ErrorCode::Ok;
    std::size_t messagesIn = 0;
    std::size_t messagesOut = 0;
};

/// Fast agent configs (mirroring test_integration.cpp): latency realism is
/// the benches' business; conformance only compares behaviour, and the OS
/// rows pay these delays in real wall-clock time.
slp::ServiceAgent::Config fastSlpService() {
    slp::ServiceAgent::Config config;
    config.responseDelayBase = net::ms(5);
    config.responseDelayJitter = net::ms(1);
    return config;
}
mdns::Responder::Config fastResponder() {
    mdns::Responder::Config config;
    config.responseDelayBase = net::ms(5);
    config.responseDelayJitter = net::ms(1);
    return config;
}
ssdp::Device::Config fastDevice() {
    ssdp::Device::Config config;
    config.responseDelayBase = net::ms(5);
    config.responseDelayJitter = net::ms(1);
    return config;
}
mdns::Resolver::Config fastResolver() {
    mdns::Resolver::Config config;
    config.aggregationBase = net::ms(20);
    config.aggregationJitter = net::ms(2);
    return config;
}
ssdp::ControlPoint::Config fastControlPoint() {
    ssdp::ControlPoint::Config config;
    config.mxWindowBase = net::ms(30);
    config.mxWindowJitter = net::ms(3);
    return config;
}

/// Runs one bridged conversation of `direction` on `net` and captures the
/// outcome. `withService` false leaves the legacy service side empty (the
/// abort-equivalence rows). Everything here goes through net::Network --
/// this function cannot tell which backend it is driving.
Outcome runDirection(net::Network& net, Case direction, bool withService = true,
                     engine::EngineOptions options = {}) {
    Outcome outcome;
    outcome.backend = net.backendName();

    bridge::Starlink starlink{net};
    auto& deployed =
        starlink.deploy(bridge::models::forCase(direction, kBridgeHost), kBridgeHost, options);

    // The legacy service for the far side of the bridge.
    std::unique_ptr<ssdp::Device> device;
    std::unique_ptr<mdns::Responder> responder;
    std::unique_ptr<slp::ServiceAgent> slpService;
    std::string serviceUrl;
    if (withService) {
        switch (direction) {
            case Case::SlpToUpnp:
            case Case::BonjourToUpnp:
                device = std::make_unique<ssdp::Device>(net, fastDevice());
                serviceUrl = device->config().serviceUrl;
                break;
            case Case::SlpToBonjour:
            case Case::UpnpToBonjour:
                responder = std::make_unique<mdns::Responder>(net, fastResponder());
                serviceUrl = responder->config().url;
                break;
            case Case::UpnpToSlp:
            case Case::BonjourToSlp:
                slpService = std::make_unique<slp::ServiceAgent>(net, fastSlpService());
                serviceUrl = slpService->config().url;
                break;
        }
    }

    // The legacy client on the near side; all three deliver urls the same way.
    bool settled = false;
    std::vector<std::string> urls;
    const auto capture = [&settled, &urls](std::vector<std::string> found) {
        urls = std::move(found);
        settled = true;
    };
    std::unique_ptr<slp::UserAgent> slpClient;
    std::unique_ptr<ssdp::ControlPoint> controlPoint;
    std::unique_ptr<mdns::Resolver> resolver;
    switch (direction) {
        case Case::SlpToUpnp:
        case Case::SlpToBonjour: {
            slp::UserAgent::Config config;
            config.timeout = net::ms(2000);
            slpClient = std::make_unique<slp::UserAgent>(net, config);
            slpClient->lookup("service:printer", [capture](const slp::UserAgent::Result& r) {
                capture(r.urls);
            });
            break;
        }
        case Case::UpnpToSlp:
        case Case::UpnpToBonjour:
            controlPoint = std::make_unique<ssdp::ControlPoint>(net, fastControlPoint());
            controlPoint->search("urn:schemas-upnp-org:service:printer:1",
                                 [capture](const ssdp::ControlPoint::Result& r) {
                                     capture(r.urls);
                                 });
            break;
        case Case::BonjourToUpnp:
        case Case::BonjourToSlp:
            resolver = std::make_unique<mdns::Resolver>(net, fastResolver());
            resolver->browse("_printer._tcp.local",
                             [capture](const mdns::Resolver::Result& r) { capture(r.urls); });
            break;
    }

    // Drive until the client settled AND the bridge recorded a terminal
    // session (post-reply legs, e.g. the UPnP description fetch, may still
    // be in flight when the client callback fires).
    auto& engine = deployed.engine();
    net.runUntil(
        [&settled, &engine] { return settled && engine.sessions().size() >= 1; },
        kSessionBudget);

    outcome.success = !urls.empty();
    if (!urls.empty()) outcome.url = urls[0];
    outcome.sessions = engine.sessions().size();
    if (outcome.sessions > 0) {
        const auto& record = engine.sessions()[0];
        outcome.completed = record.completed;
        outcome.cause = record.cause;
        outcome.code = record.code;
        outcome.messagesIn = record.messagesIn;
        outcome.messagesOut = record.messagesOut;
    }
    if (withService) {
        EXPECT_EQ(outcome.url, serviceUrl)
            << net.backendName() << " resolved the wrong service url";
    }
    return outcome;
}

/// Runs a direction on both backends and asserts observational equivalence.
void expectEquivalent(Case direction, bool withService = true,
                      engine::EngineOptions options = {}) {
    // Sim row: virtual time.
    net::VirtualClock clock;
    net::EventScheduler scheduler{clock};
    net::SimNetwork simNetwork{scheduler};
    const Outcome sim = runDirection(simNetwork, direction, withService, options);

    // OS row: real loopback sockets, kernel-assigned ports.
    net::OsNetwork osNetwork;
    const Outcome os = runDirection(osNetwork, direction, withService, options);

    EXPECT_EQ(sim.success, os.success) << "lookup outcome diverged";
    EXPECT_EQ(sim.url, os.url) << "resolved url diverged";
    EXPECT_EQ(sim.sessions, os.sessions) << "session count diverged";
    EXPECT_EQ(sim.completed, os.completed) << "session completion diverged";
    EXPECT_EQ(failureCauseName(sim.cause), failureCauseName(os.cause))
        << "abort cause diverged";
    EXPECT_EQ(errc::to_string(sim.code), errc::to_string(os.code))
        << "abort taxonomy code diverged";
    EXPECT_EQ(sim.messagesIn, os.messagesIn) << "inbound message tally diverged";
    EXPECT_EQ(sim.messagesOut, os.messagesOut) << "outbound message tally diverged";
}

class TransportConformance : public ::testing::Test {
protected:
    void SetUp() override {
        if (!net::OsNetwork::loopbackMulticastUsable()) {
            GTEST_SKIP() << "kernel does not deliver multicast on loopback; "
                            "OS-backend rows cannot run here";
        }
    }
};

// --- the six-direction matrix, both backends --------------------------------

TEST_F(TransportConformance, SlpClientToUpnpDevice) { expectEquivalent(Case::SlpToUpnp); }

TEST_F(TransportConformance, SlpClientToBonjourService) {
    expectEquivalent(Case::SlpToBonjour);
}

TEST_F(TransportConformance, UpnpControlPointToSlpService) {
    expectEquivalent(Case::UpnpToSlp);
}

TEST_F(TransportConformance, UpnpControlPointToBonjourService) {
    expectEquivalent(Case::UpnpToBonjour);
}

TEST_F(TransportConformance, BonjourBrowserToUpnpDevice) {
    expectEquivalent(Case::BonjourToUpnp);
}

TEST_F(TransportConformance, BonjourBrowserToSlpService) {
    expectEquivalent(Case::BonjourToSlp);
}

// --- abort equivalence -------------------------------------------------------

TEST_F(TransportConformance, MissingServiceAbortsIdenticallyCoded) {
    // No Bonjour responder behind the bridge: the session must abort with
    // the same cause and taxonomy code on both backends (message tallies are
    // retransmission-timing-sensitive on an aborting session, so outcome
    // equivalence here is cause + code, not counts).
    engine::EngineOptions options;
    options.sessionTimeout = net::ms(700);

    net::VirtualClock clock;
    net::EventScheduler scheduler{clock};
    net::SimNetwork simNetwork{scheduler};
    const Outcome sim =
        runDirection(simNetwork, Case::SlpToBonjour, /*withService=*/false, options);

    net::OsNetwork osNetwork;
    const Outcome os =
        runDirection(osNetwork, Case::SlpToBonjour, /*withService=*/false, options);

    for (const Outcome& outcome : {sim, os}) {
        EXPECT_FALSE(outcome.success) << outcome.backend;
        EXPECT_EQ(outcome.sessions, 1u) << outcome.backend;
        EXPECT_FALSE(outcome.completed) << outcome.backend;
    }
    EXPECT_EQ(failureCauseName(sim.cause), failureCauseName(os.cause));
    EXPECT_EQ(errc::to_string(sim.code), errc::to_string(os.code));
    EXPECT_NE(sim.code, errc::ErrorCode::Unclassified);
    EXPECT_NE(os.code, errc::ErrorCode::Unclassified);
}

// --- sustained equivalence ---------------------------------------------------

TEST_F(TransportConformance, ConsecutiveSessionTalliesMatch) {
    constexpr int kRounds = 5;

    const auto runRounds = [](net::Network& net) {
        bridge::Starlink starlink{net};
        auto& deployed = starlink.deploy(
            bridge::models::forCase(Case::SlpToUpnp, kBridgeHost), kBridgeHost);
        ssdp::Device device(net, fastDevice());
        slp::UserAgent client(net, {});

        std::vector<std::pair<std::size_t, std::size_t>> tallies;
        for (int round = 0; round < kRounds; ++round) {
            bool settled = false;
            client.lookup("service:printer",
                          [&settled](const slp::UserAgent::Result&) { settled = true; });
            auto& engine = deployed.engine();
            const std::size_t want = static_cast<std::size_t>(round) + 1;
            net.runUntil(
                [&settled, &engine, want] {
                    return settled && engine.sessions().size() >= want;
                },
                kSessionBudget);
        }
        std::vector<std::pair<std::size_t, std::size_t>> result;
        for (const auto& record : deployed.engine().sessions()) {
            EXPECT_TRUE(record.completed) << net.backendName();
            result.emplace_back(record.messagesIn, record.messagesOut);
        }
        return result;
    };

    net::VirtualClock clock;
    net::EventScheduler scheduler{clock};
    net::SimNetwork simNetwork{scheduler};
    const auto sim = runRounds(simNetwork);

    net::OsNetwork osNetwork;
    const auto os = runRounds(osNetwork);

    ASSERT_EQ(sim.size(), static_cast<std::size_t>(kRounds));
    ASSERT_EQ(os.size(), sim.size());
    EXPECT_EQ(sim, os) << "per-session message tallies diverged across backends";
}

}  // namespace
}  // namespace starlink
