// Tests for GraphViz export of colored and merged automata.
#include <gtest/gtest.h>

#include "core/bridge/models.hpp"
#include "core/merge/dot_export.hpp"
#include "core/merge/spec_loader.hpp"

namespace starlink::merge {
namespace {

using bridge::models::Case;
using bridge::models::Role;

TEST(DotExport, ColoredAutomatonStructure) {
    automata::ColorRegistry colors;
    const auto automaton = loadAutomaton(bridge::models::slpAutomaton(Role::Server), colors);
    const std::string dot = toDot(*automaton);
    EXPECT_NE(dot.find("digraph \"SLP\""), std::string::npos);
    EXPECT_NE(dot.find("\"s10\" -> \"s11\" [label=\"?SLPSrvRequest\"]"), std::string::npos);
    EXPECT_NE(dot.find("\"s11\" -> \"s12\" [label=\"!SLPSrvReply\"]"), std::string::npos);
    EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos);  // accepting s12
    EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(DotExport, MergedAutomatonHasClustersAndDeltas) {
    automata::ColorRegistry colors;
    const auto spec = bridge::models::forCase(Case::SlpToUpnp, "10.0.0.9");
    std::vector<std::shared_ptr<automata::ColoredAutomaton>> components;
    for (const auto& protocol : spec.protocols) {
        components.push_back(loadAutomaton(protocol.automatonXml, colors));
    }
    const auto merged = loadBridge(spec.bridgeXml, std::move(components));
    const std::string dot = toDot(*merged);
    EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
    EXPECT_NE(dot.find("subgraph cluster_2"), std::string::npos);  // three protocols
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);        // delta edges
    EXPECT_NE(dot.find("set_host()"), std::string::npos);          // lambda annotation
    // Three colors -> at least three distinct fills used.
    EXPECT_NE(dot.find("#cfe2f3"), std::string::npos);
    EXPECT_NE(dot.find("#d9ead3"), std::string::npos);
    EXPECT_NE(dot.find("#fff2cc"), std::string::npos);
}

TEST(DotExport, DistinctColorsGetDistinctFills) {
    automata::ColorRegistry colors;
    const auto slp = loadAutomaton(bridge::models::slpAutomaton(Role::Server), colors);
    const auto mdns = loadAutomaton(bridge::models::mdnsAutomaton(Role::Client), colors);
    MergedAutomaton merged("two");
    merged.addComponent(slp);
    merged.addComponent(mdns);
    const std::string dot = toDot(merged);
    const std::size_t first = dot.find("#cfe2f3");
    const std::size_t second = dot.find("#d9ead3");
    EXPECT_NE(first, std::string::npos);
    EXPECT_NE(second, std::string::npos);
}

}  // namespace
}  // namespace starlink::merge
