// Unit tests for the simulated network substrate: scheduler, UDP (unicast +
// multicast), TCP, latency, partitions, loss.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/net/os_network.hpp"
#include "sim_fixture.hpp"

namespace starlink {
namespace {

using testing::SimTest;

class NetTest : public SimTest {};

TEST_F(NetTest, SchedulerRunsInTimeOrder) {
    std::vector<int> order;
    scheduler.schedule(net::ms(20), [&order] { order.push_back(2); });
    scheduler.schedule(net::ms(10), [&order] { order.push_back(1); });
    scheduler.schedule(net::ms(30), [&order] { order.push_back(3); });
    run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(clock.now().time_since_epoch(), net::ms(30));
}

TEST_F(NetTest, SchedulerTiesBreakByInsertion) {
    std::vector<int> order;
    scheduler.schedule(net::ms(5), [&order] { order.push_back(1); });
    scheduler.schedule(net::ms(5), [&order] { order.push_back(2); });
    run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(NetTest, SchedulerCancel) {
    bool ran = false;
    const auto id = scheduler.schedule(net::ms(5), [&ran] { ran = true; });
    EXPECT_TRUE(scheduler.cancel(id));
    EXPECT_FALSE(scheduler.cancel(id));  // already gone
    run();
    EXPECT_FALSE(ran);
}

TEST_F(NetTest, SchedulerRunForAdvancesClockEvenWhenIdle) {
    scheduler.runFor(net::ms(100));
    EXPECT_EQ(clock.now().time_since_epoch(), net::ms(100));
}

TEST_F(NetTest, EventsScheduledDuringRunExecute) {
    int depth = 0;
    scheduler.schedule(net::ms(1), [this, &depth] {
        depth = 1;
        scheduler.schedule(net::ms(1), [&depth] { depth = 2; });
    });
    run();
    EXPECT_EQ(depth, 2);
}

TEST_F(NetTest, UdpUnicastDelivery) {
    auto a = network.openUdp("10.0.0.1", 1000);
    auto b = network.openUdp("10.0.0.2", 2000);
    Bytes received;
    net::Address from;
    b->onDatagram([&](const Bytes& payload, const net::Address& sender) {
        received = payload;
        from = sender;
    });
    a->sendTo(net::Address{"10.0.0.2", 2000}, toBytes("ping"));
    run();
    EXPECT_EQ(toString(received), "ping");
    EXPECT_EQ(from, (net::Address{"10.0.0.1", 1000}));
}

TEST_F(NetTest, UdpToUnboundPortVanishes) {
    auto a = network.openUdp("10.0.0.1", 1000);
    a->sendTo(net::Address{"10.0.0.2", 9999}, toBytes("x"));
    run();  // nothing to assert beyond "no crash, no delivery"
    EXPECT_EQ(network.datagramsSent(), 1u);
}

TEST_F(NetTest, MulticastReachesMembersNotSender) {
    const net::Address group{"239.255.255.253", 427};
    auto a = network.openUdp("10.0.0.1", 427);
    auto b = network.openUdp("10.0.0.2", 427);
    auto c = network.openUdp("10.0.0.3", 427);
    a->joinGroup(group);
    b->joinGroup(group);
    c->joinGroup(group);
    int aCount = 0;
    int bCount = 0;
    int cCount = 0;
    a->onDatagram([&](const Bytes&, const net::Address&) { ++aCount; });
    b->onDatagram([&](const Bytes&, const net::Address&) { ++bCount; });
    c->onDatagram([&](const Bytes&, const net::Address&) { ++cCount; });
    a->sendTo(group, toBytes("hello"));
    run();
    EXPECT_EQ(aCount, 0);  // no loopback to the sending socket
    EXPECT_EQ(bCount, 1);
    EXPECT_EQ(cCount, 1);
}

TEST_F(NetTest, MulticastRequiresMembership) {
    const net::Address group{"224.0.0.251", 5353};
    auto a = network.openUdp("10.0.0.1", 5353);
    auto b = network.openUdp("10.0.0.2", 5353);  // never joins
    int bCount = 0;
    b->onDatagram([&](const Bytes&, const net::Address&) { ++bCount; });
    a->sendTo(group, toBytes("x"));
    run();
    EXPECT_EQ(bCount, 0);
}

TEST_F(NetTest, LeaveGroupStopsDelivery) {
    const net::Address group{"224.0.0.251", 5353};
    auto a = network.openUdp("10.0.0.1", 5353);
    auto b = network.openUdp("10.0.0.2", 5353);
    b->joinGroup(group);
    b->leaveGroup(group);
    int count = 0;
    b->onDatagram([&](const Bytes&, const net::Address&) { ++count; });
    a->sendTo(group, toBytes("x"));
    run();
    EXPECT_EQ(count, 0);
}

TEST_F(NetTest, JoinNonMulticastAddressThrows) {
    auto a = network.openUdp("10.0.0.1");
    EXPECT_THROW(a->joinGroup(net::Address{"10.0.0.2", 80}), NetError);
}

TEST_F(NetTest, DoubleBindThrows) {
    auto a = network.openUdp("10.0.0.1", 1000);
    EXPECT_THROW(network.openUdp("10.0.0.1", 1000), NetError);
}

TEST_F(NetTest, PortFreedOnSocketDestruction) {
    { auto a = network.openUdp("10.0.0.1", 1000); }
    EXPECT_NO_THROW(network.openUdp("10.0.0.1", 1000));
}

TEST_F(NetTest, EphemeralPortsAreDistinct) {
    auto a = network.openUdp("10.0.0.1");
    auto b = network.openUdp("10.0.0.1");
    EXPECT_NE(a->localAddress().port, b->localAddress().port);
    EXPECT_GE(a->localAddress().port, 49152);
}

TEST_F(NetTest, LatencyDelaysDelivery) {
    network.latency().base = net::ms(10);
    network.latency().jitter = net::ms(0);
    auto a = network.openUdp("10.0.0.1", 1000);
    auto b = network.openUdp("10.0.0.2", 2000);
    net::TimePoint arrival{};
    b->onDatagram([&](const Bytes&, const net::Address&) { arrival = network.now(); });
    a->sendTo(net::Address{"10.0.0.2", 2000}, toBytes("x"));
    run();
    EXPECT_EQ(arrival.time_since_epoch(), net::ms(10));
}

TEST_F(NetTest, PacketLossDropsEverythingAtProbabilityOne) {
    network.latency().lossProbability = 1.0;
    auto a = network.openUdp("10.0.0.1", 1000);
    auto b = network.openUdp("10.0.0.2", 2000);
    int count = 0;
    b->onDatagram([&](const Bytes&, const net::Address&) { ++count; });
    for (int i = 0; i < 10; ++i) a->sendTo(net::Address{"10.0.0.2", 2000}, toBytes("x"));
    run();
    EXPECT_EQ(count, 0);
    EXPECT_EQ(network.datagramsDropped(), 10u);
}

TEST_F(NetTest, PartitionBlocksTraffic) {
    auto a = network.openUdp("10.0.0.1", 1000);
    auto b = network.openUdp("10.0.0.2", 2000);
    int count = 0;
    b->onDatagram([&](const Bytes&, const net::Address&) { ++count; });
    network.partitionHost("10.0.0.2");
    a->sendTo(net::Address{"10.0.0.2", 2000}, toBytes("x"));
    run();
    EXPECT_EQ(count, 0);
    network.healHost("10.0.0.2");
    a->sendTo(net::Address{"10.0.0.2", 2000}, toBytes("x"));
    run();
    EXPECT_EQ(count, 1);
}

TEST_F(NetTest, PerLinkLatencyOverride) {
    network.latency().base = net::ms(1);
    network.latency().jitter = net::ms(0);
    net::LatencyModel slow;
    slow.base = net::ms(50);
    slow.jitter = net::ms(0);
    network.setLinkLatency("10.0.0.1", "10.0.0.3", slow);

    auto a = network.openUdp("10.0.0.1", 1000);
    auto b = network.openUdp("10.0.0.2", 1000);
    auto c = network.openUdp("10.0.0.3", 1000);
    net::TimePoint bArrival{};
    net::TimePoint cArrival{};
    b->onDatagram([&](const Bytes&, const net::Address&) { bArrival = network.now(); });
    c->onDatagram([&](const Bytes&, const net::Address&) { cArrival = network.now(); });
    a->sendTo(net::Address{"10.0.0.2", 1000}, toBytes("x"));
    a->sendTo(net::Address{"10.0.0.3", 1000}, toBytes("x"));
    run();
    EXPECT_EQ(bArrival.time_since_epoch(), net::ms(1));   // default link
    EXPECT_EQ(cArrival.time_since_epoch(), net::ms(50));  // overridden link

    // Symmetric and clearable.
    net::TimePoint aArrival{};
    a->onDatagram([&](const Bytes&, const net::Address&) { aArrival = network.now(); });
    c->sendTo(net::Address{"10.0.0.1", 1000}, toBytes("y"));
    run();
    EXPECT_EQ((aArrival - cArrival), net::ms(50));
    network.clearLinkLatency("10.0.0.3", "10.0.0.1");
    c->sendTo(net::Address{"10.0.0.1", 1000}, toBytes("z"));
    const auto before = network.now();
    run();
    EXPECT_EQ((aArrival - before), net::ms(1));
}

TEST_F(NetTest, PerLinkLossOverride) {
    network.latency().lossProbability = 0.0;
    net::LatencyModel lossy;
    lossy.lossProbability = 1.0;
    network.setLinkLatency("10.0.0.1", "10.0.0.3", lossy);
    auto a = network.openUdp("10.0.0.1", 1000);
    auto b = network.openUdp("10.0.0.2", 1000);
    auto c = network.openUdp("10.0.0.3", 1000);
    int bCount = 0;
    int cCount = 0;
    b->onDatagram([&](const Bytes&, const net::Address&) { ++bCount; });
    c->onDatagram([&](const Bytes&, const net::Address&) { ++cCount; });
    for (int i = 0; i < 5; ++i) {
        a->sendTo(net::Address{"10.0.0.2", 1000}, toBytes("x"));
        a->sendTo(net::Address{"10.0.0.3", 1000}, toBytes("x"));
    }
    run();
    EXPECT_EQ(bCount, 5);
    EXPECT_EQ(cCount, 0);
}

TEST_F(NetTest, TcpConnectExchange) {
    auto listener = network.listenTcp("10.0.0.2", 80);
    std::shared_ptr<net::TcpConnection> serverSide;
    listener->onAccept([&](std::shared_ptr<net::TcpConnection> connection) {
        serverSide = connection;
        connection->onData([connection](const Bytes& data) {
            connection->send(toBytes("re:" + toString(data)));
        });
    });

    std::string response;
    network.connectTcp("10.0.0.1", net::Address{"10.0.0.2", 80},
                       [&response](std::shared_ptr<net::TcpConnection> connection) {
                           ASSERT_NE(connection, nullptr);
                           connection->onData([&response](const Bytes& data) {
                               response = toString(data);
                           });
                           connection->send(toBytes("hello"));
                       });
    run();
    EXPECT_EQ(response, "re:hello");
    ASSERT_NE(serverSide, nullptr);
    EXPECT_EQ(serverSide->remoteAddress().host, "10.0.0.1");
}

TEST_F(NetTest, TcpConnectionRefusedWhenNobodyListens) {
    bool called = false;
    network.connectTcp("10.0.0.1", net::Address{"10.0.0.2", 80},
                       [&called](std::shared_ptr<net::TcpConnection> connection) {
                           called = true;
                           EXPECT_EQ(connection, nullptr);
                       });
    run();
    EXPECT_TRUE(called);
}

TEST_F(NetTest, TcpChunksArriveInOrder) {
    auto listener = network.listenTcp("10.0.0.2", 80);
    std::vector<std::string> chunks;
    std::shared_ptr<net::TcpConnection> serverSide;
    listener->onAccept([&](std::shared_ptr<net::TcpConnection> connection) {
        serverSide = connection;
        connection->onData([&chunks](const Bytes& data) { chunks.push_back(toString(data)); });
    });
    network.connectTcp("10.0.0.1", net::Address{"10.0.0.2", 80},
                       [](std::shared_ptr<net::TcpConnection> connection) {
                           connection->send(toBytes("1"));
                           connection->send(toBytes("2"));
                           connection->send(toBytes("3"));
                       });
    run();
    EXPECT_EQ(chunks, (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(NetTest, TcpCloseNotifiesPeer) {
    auto listener = network.listenTcp("10.0.0.2", 80);
    bool serverSawClose = false;
    listener->onAccept([&](std::shared_ptr<net::TcpConnection> connection) {
        connection->onClose([&serverSawClose] { serverSawClose = true; });
    });
    std::shared_ptr<net::TcpConnection> client;
    network.connectTcp("10.0.0.1", net::Address{"10.0.0.2", 80},
                       [&client](std::shared_ptr<net::TcpConnection> connection) {
                           client = connection;
                       });
    run();
    ASSERT_NE(client, nullptr);
    client->close();
    run();
    EXPECT_TRUE(serverSawClose);
    EXPECT_THROW(client->send(toBytes("x")), NetError);
}

TEST_F(NetTest, TcpListenerRebindAfterDestruction) {
    { auto listener = network.listenTcp("10.0.0.2", 80); }
    EXPECT_NO_THROW(network.listenTcp("10.0.0.2", 80));
}

TEST_F(NetTest, AddressMulticastClassification) {
    EXPECT_TRUE((net::Address{"224.0.0.251", 1}.isMulticast()));
    EXPECT_TRUE((net::Address{"239.255.255.253", 1}.isMulticast()));
    EXPECT_FALSE((net::Address{"10.0.0.1", 1}.isMulticast()));
    EXPECT_FALSE((net::Address{"240.0.0.1", 1}.isMulticast()));
    EXPECT_FALSE((net::Address{"localhost", 1}.isMulticast()));
}

TEST_F(NetTest, SimConnectRefusalReportsTaxonomyCode) {
    std::optional<errc::ErrorCode> code;
    bool resolved = false;
    network.connectTcp(
        "10.0.0.1", net::Address{"10.0.0.2", 80},
        [&resolved](std::shared_ptr<net::TcpConnection> conn) {
            resolved = true;
            EXPECT_EQ(conn, nullptr);
        },
        [&code](errc::ErrorCode c, const std::string&) { code = c; });
    run();
    EXPECT_TRUE(resolved);
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(*code, errc::ErrorCode::NetConnectRefused);
}

TEST_F(NetTest, RunUntilStopsAtPredicateOrDeadline) {
    bool fired = false;
    scheduler.schedule(net::ms(10), [&fired] { fired = true; });
    EXPECT_TRUE(network.runUntil([&fired] { return fired; }, net::ms(50)));
    // A predicate that never holds: the clock advances to the deadline.
    EXPECT_FALSE(network.runUntil([] { return false; }, net::ms(25)));
    EXPECT_EQ(clock.now().time_since_epoch(), net::ms(35));
}

// --- the OS backend's negative paths (no network traffic needed) -------------
//
// These run real socket syscalls against loopback, but only the failure
// paths: every coded net.* error the backend can raise must surface with its
// taxonomy code, never as an unclassified exception (tests/test_errors.cpp
// proves the codes themselves round-trip).

class OsNetTest : public ::testing::Test {};

TEST_F(OsNetTest, BindConflictOnLiteralPortIsCoded) {
    net::OsNetwork network;
    auto first = network.openUdp("127.0.0.1", 0);
    const std::uint16_t taken = first->localAddress().port;
    try {
        auto second = network.openUdp("127.0.0.1", taken);
        FAIL() << "double bind of 127.0.0.1:" << taken << " must throw";
    } catch (const NetError& error) {
        EXPECT_EQ(error.code(), errc::ErrorCode::NetBindConflict);
    }
}

TEST_F(OsNetTest, BindConflictOnLogicalPortIsCoded) {
    net::OsNetwork network;
    auto first = network.openUdp("10.0.0.1", 427);
    try {
        auto second = network.openUdp("10.0.0.1", 427);
        FAIL() << "double logical bind must throw";
    } catch (const NetError& error) {
        EXPECT_EQ(error.code(), errc::ErrorCode::NetBindConflict);
    }
    // Cross-process flavour: with a port base, the real port is arithmetic,
    // so a second backend instance sharing the base collides in the kernel.
    const std::uint16_t base = 36100;
    net::OsNetwork::Options options;
    options.portBase = base;
    net::OsNetwork networkA{options};
    net::OsNetwork networkB{options};
    auto held = networkA.openUdp("10.0.0.1", 427);
    try {
        auto clash = networkB.openUdp("10.0.0.2", 427);  // same base + port
        FAIL() << "cross-instance port-base bind must conflict in the kernel";
    } catch (const NetError& error) {
        EXPECT_EQ(error.code(), errc::ErrorCode::NetBindConflict);
    }
}

TEST_F(OsNetTest, ConnectToClosedPortReportsRefused) {
    net::OsNetwork network;
    // Grab a real port, then close it so nothing listens there.
    std::uint16_t deadPort = 0;
    {
        auto probe = network.listenTcp("127.0.0.1", 0);
        deadPort = probe->localAddress().port;
    }
    std::optional<errc::ErrorCode> code;
    bool resolved = false;
    network.connectTcp(
        "127.0.0.1", net::Address{"127.0.0.1", deadPort},
        [&resolved](std::shared_ptr<net::TcpConnection> conn) {
            resolved = true;
            EXPECT_EQ(conn, nullptr);
        },
        [&code](errc::ErrorCode c, const std::string&) { code = c; });
    network.runUntil([&resolved] { return resolved; }, net::ms(4000));
    ASSERT_TRUE(resolved);
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(*code, errc::ErrorCode::NetConnectRefused);
}

TEST_F(OsNetTest, ConnectToUnresolvableLogicalHostReportsRefused) {
    net::OsNetwork network;  // no port base, nothing bound: unresolvable
    std::optional<errc::ErrorCode> code;
    bool resolved = false;
    network.connectTcp(
        "10.0.0.1", net::Address{"10.0.0.3", 515},
        [&resolved](std::shared_ptr<net::TcpConnection>) { resolved = true; },
        [&code](errc::ErrorCode c, const std::string&) { code = c; });
    network.runUntil([&resolved] { return resolved; }, net::ms(1000));
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(*code, errc::ErrorCode::NetConnectRefused);
}

TEST_F(OsNetTest, SocketBudgetExhaustionIsCoded) {
    net::OsNetwork::Options options;
    options.maxOpenSockets = 2;
    net::OsNetwork network{options};
    auto a = network.openUdp("127.0.0.1", 0);
    auto b = network.openUdp("127.0.0.1", 0);
    try {
        auto c = network.openUdp("127.0.0.1", 0);
        FAIL() << "third socket must exceed the budget of 2";
    } catch (const NetError& error) {
        EXPECT_EQ(error.code(), errc::ErrorCode::NetFdExhausted);
    }
    // The async connect path reports the same code through onError instead
    // of throwing into the engine's send path.
    std::optional<errc::ErrorCode> code;
    bool resolved = false;
    network.connectTcp(
        "127.0.0.1", net::Address{"127.0.0.1", 1},
        [&resolved](std::shared_ptr<net::TcpConnection>) { resolved = true; },
        [&code](errc::ErrorCode c, const std::string&) { code = c; });
    network.runUntil([&resolved] { return resolved; }, net::ms(1000));
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(*code, errc::ErrorCode::NetFdExhausted);
}

TEST_F(OsNetTest, UdpUnicastRoundTripOnLoopback) {
    net::OsNetwork network;
    auto a = network.openUdp("10.0.0.1", 1000);
    auto b = network.openUdp("10.0.0.2", 2000);
    Bytes received;
    b->onDatagram([&received](const Bytes& payload, const net::Address&) {
        received = payload;
    });
    a->sendTo(net::Address{"10.0.0.2", 2000}, toBytes("ping"));
    network.runUntil([&received] { return !received.empty(); }, net::ms(2000));
    EXPECT_EQ(toString(received), "ping");
}

TEST_F(OsNetTest, TcpFramingPreservesMessageBoundaries) {
    net::OsNetwork network;
    auto listener = network.listenTcp("10.0.0.2", 80);
    std::vector<std::string> serverChunks;
    std::shared_ptr<net::TcpConnection> serverSide;
    listener->onAccept([&](std::shared_ptr<net::TcpConnection> conn) {
        serverSide = conn;
        conn->onData([&serverChunks](const Bytes& chunk) {
            serverChunks.push_back(toString(chunk));
        });
    });
    std::shared_ptr<net::TcpConnection> clientSide;
    network.connectTcp("10.0.0.1", net::Address{"10.0.0.2", 80},
                       [&clientSide](std::shared_ptr<net::TcpConnection> conn) {
                           clientSide = conn;
                       });
    network.runUntil([&clientSide] { return clientSide != nullptr; }, net::ms(2000));
    ASSERT_NE(clientSide, nullptr);
    // Two back-to-back sends coalesce into one TCP segment on loopback; the
    // frame layer must still deliver exactly two chunks, like the sim.
    clientSide->send(toBytes("alpha"));
    clientSide->send(toBytes("beta"));
    network.runUntil([&serverChunks] { return serverChunks.size() >= 2; }, net::ms(2000));
    EXPECT_EQ(serverChunks, (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(OsNetTest, TcpCloseNotifiesPeerAndSendThrowsCoded) {
    net::OsNetwork network;
    auto listener = network.listenTcp("10.0.0.2", 80);
    std::shared_ptr<net::TcpConnection> serverSide;
    bool serverSawClose = false;
    listener->onAccept([&](std::shared_ptr<net::TcpConnection> conn) {
        serverSide = conn;
        conn->onClose([&serverSawClose] { serverSawClose = true; });
    });
    std::shared_ptr<net::TcpConnection> clientSide;
    network.connectTcp("10.0.0.1", net::Address{"10.0.0.2", 80},
                       [&clientSide](std::shared_ptr<net::TcpConnection> conn) {
                           clientSide = conn;
                       });
    network.runUntil([&serverSide] { return serverSide != nullptr; }, net::ms(2000));
    ASSERT_NE(clientSide, nullptr);
    clientSide->close();
    network.runUntil([&serverSawClose] { return serverSawClose; }, net::ms(2000));
    EXPECT_TRUE(serverSawClose);
    try {
        clientSide->send(toBytes("x"));
        FAIL() << "send on a closed connection must throw";
    } catch (const NetError& error) {
        EXPECT_EQ(error.code(), errc::ErrorCode::NetClosedSend);
    }
}

TEST_F(OsNetTest, LoopbackMulticastFansOutExceptSender) {
    if (!net::OsNetwork::loopbackMulticastUsable()) {
        GTEST_SKIP() << "kernel does not deliver multicast on loopback";
    }
    net::OsNetwork network;
    const net::Address group{"239.255.255.253", 427};
    auto sender = network.openUdp("10.0.0.1", 0);
    auto memberA = network.openUdp("10.0.0.2", 0);
    auto memberB = network.openUdp("10.0.0.3", 0);
    sender->joinGroup(group);
    memberA->joinGroup(group);
    memberB->joinGroup(group);
    int senderGot = 0;
    int aGot = 0;
    int bGot = 0;
    sender->onDatagram([&senderGot](const Bytes&, const net::Address&) { ++senderGot; });
    memberA->onDatagram([&aGot](const Bytes&, const net::Address&) { ++aGot; });
    memberB->onDatagram([&bGot](const Bytes&, const net::Address&) { ++bGot; });
    sender->sendTo(group, toBytes("hello"));
    network.runUntil([&aGot, &bGot] { return aGot >= 1 && bGot >= 1; }, net::ms(2000));
    EXPECT_EQ(aGot, 1);
    EXPECT_EQ(bGot, 1);
    EXPECT_EQ(senderGot, 0);  // never delivered back to the sender
}

}  // namespace
}  // namespace starlink
