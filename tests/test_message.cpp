// Unit tests for abstract messages: values, fields, dotted paths, the XML
// projection (paper section III-A).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/message/abstract_message.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"
#include "xml/xpath.hpp"

namespace starlink {
namespace {

TEST(Value, TypesAndAccessors) {
    EXPECT_EQ(Value().type(), ValueType::Empty);
    EXPECT_EQ(Value::ofInt(5).asInt(), 5);
    EXPECT_EQ(Value::ofString("x").asString(), "x");
    EXPECT_EQ(Value::ofBool(true).asBool(), true);
    EXPECT_EQ(Value::ofDouble(1.5).asDouble(), 1.5);
    EXPECT_EQ(Value::ofBytes({1, 2}).asBytes(), (Bytes{1, 2}));
    EXPECT_FALSE(Value::ofInt(5).asString());
    EXPECT_FALSE(Value::ofString("x").asInt());
}

TEST(Value, TextRoundTripAllTypes) {
    const std::pair<ValueType, Value> cases[] = {
        {ValueType::Int, Value::ofInt(-42)},
        {ValueType::String, Value::ofString("hello world")},
        {ValueType::Bytes, Value::ofBytes({0xde, 0xad})},
        {ValueType::Bool, Value::ofBool(true)},
        {ValueType::Empty, Value()},
    };
    for (const auto& [type, value] : cases) {
        const auto back = Value::fromText(type, value.toText());
        ASSERT_TRUE(back) << valueTypeName(type);
        EXPECT_EQ(*back, value) << valueTypeName(type);
    }
}

TEST(Value, FromTextRejectsGarbage) {
    EXPECT_FALSE(Value::fromText(ValueType::Int, "4x"));
    EXPECT_FALSE(Value::fromText(ValueType::Bool, "maybe"));
    EXPECT_FALSE(Value::fromText(ValueType::Bytes, "zz"));
    EXPECT_FALSE(Value::fromText(ValueType::Double, "1.5x"));
}

TEST(Value, CoercionsIntString) {
    EXPECT_EQ(Value::ofInt(42).coerceTo(ValueType::String)->asString(), "42");
    EXPECT_EQ(Value::ofString("42").coerceTo(ValueType::Int)->asInt(), 42);
    EXPECT_FALSE(Value::ofString("nan").coerceTo(ValueType::Int));
}

TEST(Value, CoercionStringBytes) {
    EXPECT_EQ(Value::ofString("ab").coerceTo(ValueType::Bytes)->asBytes(),
              (Bytes{'a', 'b'}));
    EXPECT_EQ(Value::ofBytes({'a'}).coerceTo(ValueType::String)->asString(), "61");  // hex text
}

TEST(Value, CoercionSameTypeIdentity) {
    EXPECT_EQ(Value::ofInt(7).coerceTo(ValueType::Int)->asInt(), 7);
}

TEST(Field, PrimitiveAccessors) {
    Field f = Field::primitive("XID", "Integer", Value::ofInt(7), 16);
    EXPECT_TRUE(f.isPrimitive());
    EXPECT_EQ(f.label(), "XID");
    EXPECT_EQ(f.typeName(), "Integer");
    EXPECT_EQ(f.value().asInt(), 7);
    EXPECT_EQ(f.lengthBits(), 16);
}

TEST(Field, StructuredChildren) {
    Field url = Field::structured("URL", {Field::primitive("host", "String", Value::ofString("h")),
                                          Field::primitive("port", "Integer", Value::ofInt(80))});
    EXPECT_FALSE(url.isPrimitive());
    ASSERT_NE(url.child("port"), nullptr);
    EXPECT_EQ(url.child("port")->value().asInt(), 80);
    EXPECT_EQ(url.child("missing"), nullptr);
}

TEST(AbstractMessage, DottedPathSelection) {
    AbstractMessage msg("M");
    msg.addField(Field::primitive("a", "String", Value::ofString("x")));
    msg.addField(Field::structured(
        "URL", {Field::primitive("port", "Integer", Value::ofInt(80))}));
    EXPECT_EQ(msg.value("a")->asString(), "x");
    EXPECT_EQ(msg.value("URL.port")->asInt(), 80);
    EXPECT_FALSE(msg.value("URL.host"));
    EXPECT_FALSE(msg.value("nothere"));
    EXPECT_FALSE(msg.value("URL"));  // structured field has no value
}

TEST(AbstractMessage, SetValueCreatesSpine) {
    AbstractMessage msg("M");
    msg.setValue("URL.host", Value::ofString("10.0.0.1"));
    msg.setValue("URL.port", Value::ofInt(80), "Integer");
    EXPECT_EQ(msg.fields().size(), 1u);
    EXPECT_EQ(msg.value("URL.host")->asString(), "10.0.0.1");
    EXPECT_EQ(msg.value("URL.port")->asInt(), 80);
}

TEST(AbstractMessage, SetValueOverwrites) {
    AbstractMessage msg("M");
    msg.setValue("a", Value::ofString("1"));
    msg.setValue("a", Value::ofString("2"));
    EXPECT_EQ(msg.fields().size(), 1u);
    EXPECT_EQ(msg.value("a")->asString(), "2");
}

TEST(AbstractMessage, SetValueThroughPrimitiveThrows) {
    AbstractMessage msg("M");
    msg.setValue("a", Value::ofString("1"));
    EXPECT_THROW(msg.setValue("a.b", Value::ofString("2")), SpecError);
}

TEST(AbstractMessage, RemoveField) {
    AbstractMessage msg("M");
    msg.setValue("a", Value::ofString("1"));
    EXPECT_TRUE(msg.removeField("a"));
    EXPECT_FALSE(msg.removeField("a"));
    EXPECT_TRUE(msg.fields().empty());
}

TEST(AbstractMessage, XmlProjectionRoundTrip) {
    AbstractMessage msg("SLPSrvRequest");
    msg.addField(Field::primitive("XID", "Integer", Value::ofInt(300), 16));
    msg.addField(Field::primitive("SRVType", "String", Value::ofString("service:printer")));
    msg.addField(Field::structured(
        "URL", {Field::primitive("host", "String", Value::ofString("10.0.0.1")),
                Field::primitive("port", "Integer", Value::ofInt(80))}));

    const auto xmlNode = msg.toXml();
    const AbstractMessage back = AbstractMessage::fromXml(*xmlNode);
    EXPECT_EQ(back, msg);
}

TEST(AbstractMessage, XmlProjectionMatchesPaperSchema) {
    // Fig 8's XPath expressions must address the projection.
    AbstractMessage msg("SSDP_MSearch");
    msg.addField(Field::primitive("ST", "String", Value::ofString("urn:x")));
    const auto xmlNode = msg.toXml();
    const auto path = xml::Path::compile("/field/primitiveField[label='ST']/value");
    const xml::Node* value = path.first(*xmlNode);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->text(), "urn:x");
    EXPECT_EQ(xmlNode->attribute("message"), "SSDP_MSearch");
}

TEST(AbstractMessage, XmlProjectionSerializesAndReparses) {
    AbstractMessage msg("M");
    msg.addField(Field::primitive("data", "String", Value::ofString("<xml> & \"entities\"")));
    const std::string text = xml::write(*msg.toXml());
    const AbstractMessage back = AbstractMessage::fromXml(*xml::parse(text));
    EXPECT_EQ(back, msg);
}

TEST(AbstractMessage, FromXmlRejectsBadSchema) {
    EXPECT_THROW(AbstractMessage::fromXml(*xml::parse("<notfield/>")), SpecError);
    EXPECT_THROW(
        AbstractMessage::fromXml(*xml::parse("<field><primitiveField/></field>")),
        SpecError);
}

TEST(AbstractMessage, DescribeMentionsEveryField) {
    AbstractMessage msg("M");
    msg.setValue("alpha", Value::ofString("1"));
    msg.setValue("beta.gamma", Value::ofInt(2), "Integer");
    const std::string text = msg.describe();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("gamma"), std::string::npos);
}

}  // namespace
}  // namespace starlink
