// End-to-end case-study tests (paper section V, experiment E3): every legacy
// client discovers the heterogeneous legacy service through a runtime-
// deployed Starlink bridge, across all six protocol pairs.
//
// Topology per test: legacy client at 10.0.0.1, legacy service at 10.0.0.3,
// Starlink bridge at 10.0.0.9. Neither legacy application knows the bridge
// exists (transparency requirement).
#include <gtest/gtest.h>

#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "sim_fixture.hpp"

namespace starlink {
namespace {

using bridge::models::Case;
using testing::SimTest;

constexpr const char* kBridgeHost = "10.0.0.9";

class InteropTest : public SimTest {
protected:
    bridge::Starlink starlink{network};

    bridge::DeployedBridge& deployCase(Case c) {
        return starlink.deploy(bridge::models::forCase(c, kBridgeHost), kBridgeHost);
    }

    // Fast legacy services (latency realism is benchmarked separately; the
    // integration tests only verify behaviour).
    slp::ServiceAgent::Config fastSlpService() {
        slp::ServiceAgent::Config config;
        config.responseDelayBase = net::ms(5);
        config.responseDelayJitter = net::ms(1);
        return config;
    }
    mdns::Responder::Config fastResponder() {
        mdns::Responder::Config config;
        config.responseDelayBase = net::ms(5);
        config.responseDelayJitter = net::ms(1);
        return config;
    }
    ssdp::Device::Config fastDevice() {
        ssdp::Device::Config config;
        config.responseDelayBase = net::ms(5);
        config.responseDelayJitter = net::ms(1);
        return config;
    }
    mdns::Resolver::Config fastResolver() {
        mdns::Resolver::Config config;
        config.aggregationBase = net::ms(20);
        config.aggregationJitter = net::ms(2);
        return config;
    }
    ssdp::ControlPoint::Config fastControlPoint() {
        ssdp::ControlPoint::Config config;
        config.mxWindowBase = net::ms(30);
        config.mxWindowJitter = net::ms(3);
        return config;
    }
};

// --- case 1 -----------------------------------------------------------------

TEST_F(InteropTest, SlpClientDiscoversUpnpDevice) {
    auto& bridge = deployCase(Case::SlpToUpnp);
    ssdp::Device device(network, fastDevice());
    slp::UserAgent client(network, {});

    std::vector<std::string> urls;
    client.lookup("service:printer", [&urls](const slp::UserAgent::Result& result) {
        urls = result.urls;
    });
    run();

    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], device.config().serviceUrl);
    EXPECT_EQ(device.searchesAnswered(), 1u);
    ASSERT_EQ(bridge.engine().sessions().size(), 1u);
    EXPECT_TRUE(bridge.engine().sessions()[0].completed);
    EXPECT_EQ(bridge.engine().sessions()[0].messagesIn, 3u);   // SrvReq, SSDP resp, HTTP OK
    EXPECT_EQ(bridge.engine().sessions()[0].messagesOut, 3u);  // M-SEARCH, GET, SrvReply
}

// --- case 2 -----------------------------------------------------------------

TEST_F(InteropTest, SlpClientDiscoversBonjourService) {
    auto& bridge = deployCase(Case::SlpToBonjour);
    mdns::Responder responder(network, fastResponder());
    slp::UserAgent client(network, {});

    std::vector<std::string> urls;
    client.lookup("service:printer", [&urls](const slp::UserAgent::Result& result) {
        urls = result.urls;
    });
    run();

    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], responder.config().url);
    ASSERT_EQ(bridge.engine().sessions().size(), 1u);
    EXPECT_TRUE(bridge.engine().sessions()[0].completed);
}

// --- case 3 -----------------------------------------------------------------

TEST_F(InteropTest, UpnpControlPointDiscoversSlpService) {
    auto& bridge = deployCase(Case::UpnpToSlp);
    slp::ServiceAgent service(network, fastSlpService());
    ssdp::ControlPoint client(network, fastControlPoint());

    std::vector<std::string> urls;
    client.search("urn:schemas-upnp-org:service:printer:1",
                  [&urls](const ssdp::ControlPoint::Result& result) { urls = result.urls; });
    run();

    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], service.config().url);
    EXPECT_EQ(service.requestsServed(), 1u);
    ASSERT_EQ(bridge.engine().sessions().size(), 1u);
    EXPECT_TRUE(bridge.engine().sessions()[0].completed);
    EXPECT_EQ(bridge.engine().sessions()[0].messagesIn, 3u);   // M-SEARCH, SrvReply, GET
    EXPECT_EQ(bridge.engine().sessions()[0].messagesOut, 3u);  // SrvReq, SSDP resp, HTTP OK
}

// --- case 4 -----------------------------------------------------------------

TEST_F(InteropTest, UpnpControlPointDiscoversBonjourService) {
    auto& bridge = deployCase(Case::UpnpToBonjour);
    mdns::Responder responder(network, fastResponder());
    ssdp::ControlPoint client(network, fastControlPoint());

    std::vector<std::string> urls;
    client.search("urn:schemas-upnp-org:service:printer:1",
                  [&urls](const ssdp::ControlPoint::Result& result) { urls = result.urls; });
    run();

    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], responder.config().url);
    ASSERT_EQ(bridge.engine().sessions().size(), 1u);
    EXPECT_TRUE(bridge.engine().sessions()[0].completed);
}

// --- case 5 -----------------------------------------------------------------

TEST_F(InteropTest, BonjourBrowserDiscoversUpnpDevice) {
    auto& bridge = deployCase(Case::BonjourToUpnp);
    ssdp::Device device(network, fastDevice());
    mdns::Resolver client(network, fastResolver());

    std::vector<std::string> urls;
    client.browse("_printer._tcp.local",
                  [&urls](const mdns::Resolver::Result& result) { urls = result.urls; });
    run();

    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], device.config().serviceUrl);
    ASSERT_EQ(bridge.engine().sessions().size(), 1u);
    EXPECT_TRUE(bridge.engine().sessions()[0].completed);
}

// --- case 6 -----------------------------------------------------------------

TEST_F(InteropTest, BonjourBrowserDiscoversSlpService) {
    auto& bridge = deployCase(Case::BonjourToSlp);
    slp::ServiceAgent service(network, fastSlpService());
    mdns::Resolver client(network, fastResolver());

    std::vector<std::string> urls;
    client.browse("_printer._tcp.local",
                  [&urls](const mdns::Resolver::Result& result) { urls = result.urls; });
    run();

    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], service.config().url);
    ASSERT_EQ(bridge.engine().sessions().size(), 1u);
    EXPECT_TRUE(bridge.engine().sessions()[0].completed);
}

// --- repeated sessions --------------------------------------------------------

TEST_F(InteropTest, BridgeServesConsecutiveConversations) {
    auto& bridge = deployCase(Case::SlpToBonjour);
    mdns::Responder responder(network, fastResponder());
    slp::UserAgent client(network, {});

    int successes = 0;
    for (int i = 0; i < 5; ++i) {
        client.lookup("service:printer", [&successes](const slp::UserAgent::Result& result) {
            if (!result.urls.empty()) ++successes;
        });
        run();
    }
    EXPECT_EQ(successes, 5);
    EXPECT_EQ(bridge.engine().sessions().size(), 5u);
    for (const auto& session : bridge.engine().sessions()) {
        EXPECT_TRUE(session.completed);
    }
}

// --- transparency -------------------------------------------------------------

TEST_F(InteropTest, LookupFailsWithoutBridge) {
    // No bridge deployed: the SLP client cannot reach the Bonjour service.
    mdns::Responder responder(network, fastResponder());
    slp::UserAgent::Config quickTimeout;
    quickTimeout.timeout = net::ms(200);
    slp::UserAgent client(network, quickTimeout);

    std::optional<slp::UserAgent::Result> outcome;
    client.lookup("service:printer",
                  [&outcome](const slp::UserAgent::Result& result) { outcome = result; });
    run();

    ASSERT_TRUE(outcome);
    EXPECT_TRUE(outcome->urls.empty());
}

// --- fault injection -----------------------------------------------------------

TEST_F(InteropTest, SessionTimesOutWhenServiceIsPartitioned) {
    engine::EngineOptions options;
    options.sessionTimeout = net::ms(500);
    auto& bridge = starlink.deploy(bridge::models::forCase(Case::SlpToBonjour, kBridgeHost),
                                   kBridgeHost, options);
    mdns::Responder responder(network, fastResponder());
    network.partitionHost(responder.config().host);

    slp::UserAgent::Config quickTimeout;
    quickTimeout.timeout = net::ms(2000);
    slp::UserAgent client(network, quickTimeout);

    std::optional<slp::UserAgent::Result> outcome;
    client.lookup("service:printer",
                  [&outcome](const slp::UserAgent::Result& result) { outcome = result; });
    run();

    ASSERT_TRUE(outcome);
    EXPECT_TRUE(outcome->urls.empty());
    ASSERT_EQ(bridge.engine().sessions().size(), 1u);
    EXPECT_FALSE(bridge.engine().sessions()[0].completed);
}

TEST_F(InteropTest, BridgeRecoversAfterPartitionHeals) {
    engine::EngineOptions options;
    options.sessionTimeout = net::ms(500);
    auto& bridge = starlink.deploy(bridge::models::forCase(Case::SlpToBonjour, kBridgeHost),
                                   kBridgeHost, options);
    mdns::Responder responder(network, fastResponder());
    slp::UserAgent::Config quickTimeout;
    quickTimeout.timeout = net::ms(2000);
    slp::UserAgent client(network, quickTimeout);

    network.partitionHost(responder.config().host);
    bool firstFailed = false;
    client.lookup("service:printer", [&firstFailed](const slp::UserAgent::Result& result) {
        firstFailed = result.urls.empty();
    });
    run();
    EXPECT_TRUE(firstFailed);

    network.healHost(responder.config().host);
    std::vector<std::string> urls;
    client.lookup("service:printer", [&urls](const slp::UserAgent::Result& result) {
        urls = result.urls;
    });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], responder.config().url);
    ASSERT_EQ(bridge.engine().sessions().size(), 2u);
    EXPECT_FALSE(bridge.engine().sessions()[0].completed);
    EXPECT_TRUE(bridge.engine().sessions()[1].completed);
}

TEST_F(InteropTest, LossyNetworkLookupEventuallySucceeds) {
    // Discovery protocols tolerate datagram loss by retrying at the client;
    // the bridge must stay consistent across lost conversations.
    engine::EngineOptions options;
    options.sessionTimeout = net::ms(400);
    auto& bridge = starlink.deploy(bridge::models::forCase(Case::SlpToBonjour, kBridgeHost),
                                   kBridgeHost, options);
    mdns::Responder responder(network, fastResponder());
    network.latency().lossProbability = 0.25;

    slp::UserAgent::Config config;
    config.timeout = net::ms(1000);
    slp::UserAgent client(network, config);

    int successes = 0;
    for (int attempt = 0; attempt < 20; ++attempt) {
        client.lookup("service:printer", [&successes](const slp::UserAgent::Result& result) {
            if (!result.urls.empty()) ++successes;
        });
        run();
    }
    // Four datagram hops at 25% loss each: ~32% of attempts survive end to
    // end; the seeded rng makes the exact count stable.
    EXPECT_GE(successes, 3);
    // The bridge never wedged: every started session is accounted for.
    for (const auto& session : bridge.engine().sessions()) {
        EXPECT_TRUE(session.messagesIn >= 1);
    }
    EXPECT_EQ(bridge.engine().currentState(), "s10");
}

TEST_F(InteropTest, DuplicatedResponsesAreHarmless) {
    // Two identical Bonjour responders answer the same question; the bridge
    // takes the first response and ignores the duplicate.
    auto& bridge = deployCase(Case::SlpToBonjour);
    mdns::Responder responderA(network, fastResponder());
    mdns::Responder::Config otherConfig = fastResponder();
    otherConfig.host = "10.0.0.4";
    otherConfig.url = "http://10.0.0.4:631/ipp";
    mdns::Responder responderB(network, otherConfig);

    std::vector<std::string> urls;
    slp::UserAgent client(network, {});
    client.lookup("service:printer", [&urls](const slp::UserAgent::Result& result) {
        urls = result.urls;
    });
    run();
    ASSERT_EQ(urls.size(), 1u);  // exactly one reply reached the client
    ASSERT_EQ(bridge.engine().sessions().size(), 1u);
    EXPECT_TRUE(bridge.engine().sessions()[0].completed);
    EXPECT_EQ(bridge.engine().sessions()[0].messagesIn, 2u);  // duplicate dropped
}

TEST_F(InteropTest, OverlappingClientsOneConversationAtATime) {
    // The connector executes one merged conversation at a time (as in the
    // paper); a request arriving mid-session is dropped, and the client
    // retries successfully once the bridge is idle again.
    engine::EngineOptions options;
    options.sessionTimeout = net::ms(2000);
    auto& bridge = starlink.deploy(bridge::models::forCase(Case::SlpToBonjour, kBridgeHost),
                                   kBridgeHost, options);
    mdns::Responder::Config slowResponder = fastResponder();
    slowResponder.responseDelayBase = net::ms(100);
    mdns::Responder responder(network, slowResponder);

    slp::UserAgent::Config quick;
    quick.timeout = net::ms(500);
    slp::UserAgent clientA(network, quick);
    slp::UserAgent::Config quickB = quick;
    quickB.host = "10.0.0.6";
    slp::UserAgent clientB(network, quickB);

    int aReplies = 0;
    int bReplies = 0;
    clientA.lookup("service:printer", [&aReplies](const slp::UserAgent::Result& result) {
        aReplies += result.urls.empty() ? 0 : 1;
    });
    // B's request lands while A's session is mid-flight.
    scheduler.schedule(net::ms(20), [&clientB, &bReplies] {
        clientB.lookup("service:printer", [&bReplies](const slp::UserAgent::Result& result) {
            bReplies += result.urls.empty() ? 0 : 1;
        });
    });
    run();
    EXPECT_EQ(aReplies, 1);
    EXPECT_EQ(bReplies, 0);  // dropped mid-session, timed out

    // B retries on the now-idle bridge.
    clientB.lookup("service:printer", [&bReplies](const slp::UserAgent::Result& result) {
        bReplies += result.urls.empty() ? 0 : 1;
    });
    run();
    EXPECT_EQ(bReplies, 1);
    EXPECT_GE(bridge.engine().sessions().size(), 2u);
}

TEST_F(InteropTest, MalformedPeerAbortsSessionNotBridge) {
    // A rogue "device" answers the bridge's M-SEARCH with a syntactically
    // valid SSDP response that lacks the LOCATION the translation logic
    // needs. The conversation must abort cleanly and the bridge must keep
    // serving -- a spec-level failure never kills the connector.
    engine::EngineOptions options;
    options.sessionTimeout = net::ms(2000);
    auto& bridge = starlink.deploy(bridge::models::forCase(Case::SlpToUpnp, kBridgeHost),
                                   kBridgeHost, options);

    auto rogue = network.openUdp("10.0.0.3", ssdp::kPort);
    rogue->joinGroup(net::Address{ssdp::kGroup, ssdp::kPort});
    auto* rogueRaw = rogue.get();
    bool rogueActive = true;
    rogue->onDatagram([rogueRaw, &rogueActive](const Bytes&, const net::Address& from) {
        if (!rogueActive) return;
        // No LOCATION header: passes the bridge's parser (the field is just
        // absent) but starves the set_host action.
        rogueRaw->sendTo(from, toBytes("HTTP/1.1 200 OK\r\nST: urn:x\r\nUSN: uuid:rogue\r\n"
                                       "LOCATION-IS-MISSING: yes\r\n\r\n"));
    });

    slp::UserAgent::Config quick;
    quick.timeout = net::ms(3000);
    slp::UserAgent client(network, quick);
    bool firstFailed = false;
    client.lookup("service:printer", [&firstFailed](const slp::UserAgent::Result& result) {
        firstFailed = result.urls.empty();
    });
    run();
    EXPECT_TRUE(firstFailed);
    ASSERT_GE(bridge.engine().sessions().size(), 1u);
    EXPECT_FALSE(bridge.engine().sessions()[0].completed);

    // A real device appears; the same bridge now succeeds.
    rogueActive = false;
    rogue.reset();
    ssdp::Device device(network, fastDevice());
    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], device.config().serviceUrl);
}

TEST_F(InteropTest, LongRunStability) {
    // 200 consecutive conversations: no state leaks between sessions, every
    // queue drained, monotone session accounting.
    auto& bridge = deployCase(Case::SlpToBonjour);
    mdns::Responder responder(network, fastResponder());
    slp::UserAgent client(network, {});

    int successes = 0;
    for (int i = 0; i < 200; ++i) {
        client.lookup("service:printer", [&successes](const slp::UserAgent::Result& result) {
            if (!result.urls.empty()) ++successes;
        });
        run();
    }
    EXPECT_EQ(successes, 200);
    EXPECT_EQ(bridge.engine().sessions().size(), 200u);
    // All component queues are empty after the final reset.
    for (const auto& component : bridge.engine().merged().components()) {
        for (const automata::State* state : component->states()) {
            EXPECT_TRUE(state->messages().empty())
                << component->name() << ":" << state->id();
        }
    }
    EXPECT_EQ(bridge.engine().currentState(), "s10");
}

TEST_F(InteropTest, JitteryNetworkStillCompletes) {
    network.latency().base = net::ms(5);
    network.latency().jitter = net::ms(20);
    auto& bridge = deployCase(Case::SlpToUpnp);
    ssdp::Device device(network, fastDevice());
    slp::UserAgent client(network, {});
    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], device.config().serviceUrl);
    EXPECT_TRUE(bridge.engine().sessions()[0].completed);
}

}  // namespace
}  // namespace starlink
