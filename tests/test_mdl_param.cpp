// Parameterized sweeps over the MDL layer: marshaller round-trips across
// every field width, value-coercion matrix, and a malformed-specification
// corpus that must be rejected at load time with a diagnostic.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mdl/codec.hpp"

namespace starlink::mdl {
namespace {

// --- Integer marshaller across all widths -------------------------------------------

class IntegerWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntegerWidthSweep, RoundTripAtWidth) {
    const int bits = GetParam();
    IntegerMarshaller marshaller;
    Rng rng(static_cast<std::uint64_t>(bits) * 1000 + 1);
    for (int round = 0; round < 30; ++round) {
        const std::uint64_t limit = bits == 63 ? ~0ULL >> 1 : (1ULL << bits) - 1;
        const std::int64_t value = static_cast<std::int64_t>(rng.next() % (limit + 1));
        BitWriter writer;
        marshaller.write(writer, Value::ofInt(value), bits);
        EXPECT_EQ(marshaller.encodedBits(Value::ofInt(value), bits), bits);
        const Bytes data = writer.take();
        BitReader reader(data);
        const auto back = marshaller.read(reader, bits);
        ASSERT_TRUE(back);
        EXPECT_EQ(back->asInt(), value) << "width " << bits;
    }
}

TEST_P(IntegerWidthSweep, OverflowRejectedAtWidth) {
    const int bits = GetParam();
    if (bits >= 63) GTEST_SKIP() << "no representable overflow";
    IntegerMarshaller marshaller;
    BitWriter writer;
    EXPECT_THROW(marshaller.write(writer, Value::ofInt(std::int64_t{1} << bits), bits),
                 ProtocolError);
}

INSTANTIATE_TEST_SUITE_P(Widths, IntegerWidthSweep,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 24, 31, 32, 48, 63));

// --- String / Bytes marshaller length sweep --------------------------------------------

class TextLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(TextLengthSweep, StringRoundTripAtLength) {
    const int bytes = GetParam();
    StringMarshaller marshaller;
    Rng rng(static_cast<std::uint64_t>(bytes) + 77);
    std::string text;
    for (int i = 0; i < bytes; ++i) {
        text.push_back(static_cast<char>('a' + rng.range(0, 25)));
    }
    BitWriter writer;
    marshaller.write(writer, Value::ofString(text), bytes * 8);
    const Bytes data = writer.take();
    ASSERT_EQ(data.size(), static_cast<std::size_t>(bytes));
    BitReader reader(data);
    const auto back = marshaller.read(reader, bytes * 8);
    ASSERT_TRUE(back);
    EXPECT_EQ(back->asString(), text);
}

TEST_P(TextLengthSweep, BytesRoundTripAtLength) {
    const int count = GetParam();
    BytesMarshaller marshaller;
    Rng rng(static_cast<std::uint64_t>(count) + 177);
    Bytes buffer;
    for (int i = 0; i < count; ++i) {
        buffer.push_back(static_cast<std::uint8_t>(rng.range(0, 255)));
    }
    BitWriter writer;
    marshaller.write(writer, Value::ofBytes(buffer), count * 8);
    BitReader reader(writer.buffer());
    const auto back = marshaller.read(reader, count * 8);
    ASSERT_TRUE(back);
    EXPECT_EQ(back->asBytes(), buffer);
}

INSTANTIATE_TEST_SUITE_P(Lengths, TextLengthSweep, ::testing::Values(1, 2, 5, 16, 64, 255));

// --- value coercion matrix ----------------------------------------------------------

struct CoercionCase {
    Value input;
    ValueType target;
    bool shouldSucceed;
    const char* expectedText;  // toText of the coerced value when successful
};

class CoercionMatrix : public ::testing::TestWithParam<CoercionCase> {};

TEST_P(CoercionMatrix, BehavesAsSpecified) {
    const CoercionCase& c = GetParam();
    const auto result = c.input.coerceTo(c.target);
    EXPECT_EQ(result.has_value(), c.shouldSucceed);
    if (result && c.shouldSucceed) {
        EXPECT_EQ(result->type(), c.target);
        EXPECT_STREQ(result->toText().c_str(), c.expectedText);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CoercionMatrix,
    ::testing::Values(
        CoercionCase{Value::ofInt(42), ValueType::String, true, "42"},
        CoercionCase{Value::ofString("42"), ValueType::Int, true, "42"},
        CoercionCase{Value::ofString("x42"), ValueType::Int, false, ""},
        CoercionCase{Value::ofBool(true), ValueType::Int, true, "1"},
        CoercionCase{Value::ofInt(0), ValueType::Bool, true, "false"},
        CoercionCase{Value::ofInt(7), ValueType::Bool, true, "true"},
        CoercionCase{Value::ofString("ab"), ValueType::Bytes, true, "6162"},
        CoercionCase{Value::ofBytes({0x61}), ValueType::String, true, "61"},
        CoercionCase{Value::ofBool(true), ValueType::Bytes, false, ""},
        CoercionCase{Value::ofDouble(2.5), ValueType::Int, true, "2"},
        CoercionCase{Value::ofInt(3), ValueType::Double, true, "3"},
        CoercionCase{Value::ofString("true"), ValueType::Bool, true, "true"},
        CoercionCase{Value::ofString("perhaps"), ValueType::Bool, false, ""},
        CoercionCase{Value(), ValueType::String, true, ""}));

// --- malformed-specification corpus -----------------------------------------------------

struct BadSpec {
    const char* description;
    const char* xml;
};

class BadSpecCorpus : public ::testing::TestWithParam<BadSpec> {};

TEST_P(BadSpecCorpus, RejectedWithDiagnostic) {
    try {
        MdlDocument::fromXml(GetParam().xml);
        FAIL() << GetParam().description << " was accepted";
    } catch (const SpecError& error) {
        EXPECT_GT(std::string(error.what()).size(), 10u) << GetParam().description;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BadSpecCorpus,
    ::testing::Values(
        BadSpec{"wrong root", "<NotMdl/>"},
        BadSpec{"unknown kind", R"(<Mdl kind="quantum"><Header type="X"/>
            <Message type="M"/></Mdl>)"},
        BadSpec{"missing header", R"(<Mdl kind="binary"><Message type="M"/></Mdl>)"},
        BadSpec{"no messages", R"(<Mdl kind="binary"><Header type="X"/></Mdl>)"},
        BadSpec{"message without type", R"(<Mdl kind="binary"><Header type="X"/>
            <Message/></Mdl>)"},
        BadSpec{"duplicate message type", R"(<Mdl kind="binary"><Header type="X"><A>8</A></Header>
            <Message type="M"/><Message type="M"/></Mdl>)"},
        BadSpec{"duplicate header field", R"(<Mdl kind="binary">
            <Header type="X"><A>8</A><A>8</A></Header><Message type="M"/></Mdl>)"},
        BadSpec{"duplicate type declaration", R"(<Mdl kind="binary">
            <Types><T>Integer</T><T>String</T></Types>
            <Header type="X"/><Message type="M"/></Mdl>)"},
        BadSpec{"zero bit length", R"(<Mdl kind="binary">
            <Header type="X"><A>0</A></Header><Message type="M"/></Mdl>)"},
        BadSpec{"negative bit length", R"(<Mdl kind="binary">
            <Header type="X"><A>-8</A></Header><Message type="M"/></Mdl>)"},
        BadSpec{"rule on unknown field", R"(<Mdl kind="binary">
            <Header type="X"><A>8</A></Header>
            <Message type="M"><Rule>Ghost=1</Rule></Message></Mdl>)"},
        BadSpec{"two rules in one message", R"(<Mdl kind="binary">
            <Header type="X"><A>8</A></Header>
            <Message type="M"><Rule>A=1</Rule><Rule>A=2</Rule></Message></Mdl>)"},
        BadSpec{"rule without equals", R"(<Mdl kind="binary">
            <Header type="X"><A>8</A></Header>
            <Message type="M"><Rule>A</Rule></Message></Mdl>)"},
        BadSpec{"forward length reference", R"(<Mdl kind="binary">
            <Header type="X"><A>B</A><B>16</B></Header>
            <Message type="M"><Rule>B=1</Rule></Message></Mdl>)"},
        BadSpec{"length ref to unknown field in body", R"(<Mdl kind="binary">
            <Header type="X"><A>8</A></Header>
            <Message type="M"><Rule>A=1</Rule><D>Ghost</D></Message></Mdl>)"},
        BadSpec{"undeclared field type attribute", R"(<Mdl kind="binary">
            <Header type="X"><A type="Ghost">8</A></Header><Message type="M"/></Mdl>)"},
        BadSpec{"unknown type function", R"(<Mdl kind="binary">
            <Types><L>Integer[f-crc32(A)]</L></Types>
            <Header type="X"><A>8</A></Header><Message type="M"/></Mdl>)"},
        BadSpec{"f-length without argument", R"(<Mdl kind="binary">
            <Types><L>Integer[f-length()]</L></Types>
            <Header type="X"><A>8</A></Header><Message type="M"/></Mdl>)"},
        BadSpec{"unterminated type function", R"(<Mdl kind="binary">
            <Types><L>Integer[f-length(A</L></Types>
            <Header type="X"><A>8</A></Header><Message type="M"/></Mdl>)"},
        BadSpec{"text Fields without inner split", R"(<Mdl kind="text">
            <Header type="X"><Fields>13,10</Fields></Header><Message type="M"/></Mdl>)"},
        BadSpec{"text multi-char inner split", R"(<Mdl kind="text">
            <Header type="X"><Fields>13,10:58,32</Fields></Header><Message type="M"/></Mdl>)"},
        BadSpec{"text bad delimiter code", R"(<Mdl kind="text">
            <Header type="X"><A>999</A></Header><Message type="M"/></Mdl>)"}));

// --- codec-level spec misuse ----------------------------------------------------------

TEST(MdlCodecMisuse, AutoLengthOnNonSelfDelimitingType) {
    // 'auto' requires a self-delimiting marshaller (like FQDN); Integer is
    // not, and the codec must refuse at load time.
    const char* xml = R"(<Mdl kind="binary">
        <Header type="X"><A>auto</A></Header>
        <Message type="M"><Rule>A=1</Rule></Message></Mdl>)";
    EXPECT_THROW(MessageCodec::fromXml(xml), SpecError);
}

TEST(MdlCodecMisuse, WrongDialectCodec) {
    const char* binaryXml = R"(<Mdl kind="binary">
        <Header type="X"><A>8</A></Header><Message type="M"><Rule>A=1</Rule></Message></Mdl>)";
    const MdlDocument doc = MdlDocument::fromXml(binaryXml);
    auto registry = MarshallerRegistry::withDefaults();
    EXPECT_THROW(TextCodec(doc, registry), SpecError);
    const char* textXml = R"(<Mdl kind="text">
        <Header type="X"><A>32</A></Header><Message type="M"><Rule>A=x</Rule></Message></Mdl>)";
    const MdlDocument textDoc = MdlDocument::fromXml(textXml);
    EXPECT_THROW(BinaryCodec(textDoc, registry), SpecError);
}

}  // namespace
}  // namespace starlink::mdl
