// Unit tests for the legacy protocol stacks: codecs and agents for SLP,
// mDNS, SSDP, HTTP (the OpenSLP / Bonjour SDK / Cyberlink stand-ins).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "protocols/http/http_agents.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "sim_fixture.hpp"

namespace starlink {
namespace {

using testing::SimTest;

// --- SLP codec -----------------------------------------------------------------

TEST(SlpCodec, RequestRoundTrip) {
    slp::SrvRequest request;
    request.xid = 1234;
    request.langTag = "en";
    request.prList = "10.0.0.5";
    request.serviceType = "service:printer";
    request.predicate = "(color=true)";
    request.spi = "spi";
    const auto decoded = slp::decodeRequest(slp::encode(request));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->xid, request.xid);
    EXPECT_EQ(decoded->prList, request.prList);
    EXPECT_EQ(decoded->serviceType, request.serviceType);
    EXPECT_EQ(decoded->predicate, request.predicate);
    EXPECT_EQ(decoded->spi, request.spi);
}

TEST(SlpCodec, ReplyRoundTrip) {
    slp::SrvReply reply;
    reply.xid = 99;
    reply.errorCode = 0;
    reply.lifetime = 120;
    reply.url = "service:printer://10.0.0.2:515/q1";
    const auto decoded = slp::decodeReply(slp::encode(reply));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->xid, 99);
    EXPECT_EQ(decoded->lifetime, 120);
    EXPECT_EQ(decoded->url, reply.url);
}

TEST(SlpCodec, MessageLengthFieldMatchesBuffer) {
    const Bytes wire = slp::encode(slp::SrvRequest{});
    std::uint64_t length = 0;
    ASSERT_TRUE(readUint(wire, 2, 3, length));
    EXPECT_EQ(length, wire.size());
}

TEST(SlpCodec, RejectsCorruption) {
    EXPECT_FALSE(slp::decodeRequest({}));
    EXPECT_FALSE(slp::decodeRequest(toBytes("junk")));
    Bytes wire = slp::encode(slp::SrvRequest{});
    wire[0] = 9;  // wrong version
    EXPECT_FALSE(slp::decodeRequest(wire));
    Bytes truncated = slp::encode(slp::SrvRequest{});
    truncated.pop_back();
    EXPECT_FALSE(slp::decodeRequest(truncated));  // MessageLength mismatch
    // Request decoded as reply and vice versa.
    EXPECT_FALSE(slp::decodeReply(slp::encode(slp::SrvRequest{})));
    EXPECT_FALSE(slp::decodeRequest(slp::encode(slp::SrvReply{})));
}

TEST(SlpCodec, PeekFunction) {
    EXPECT_EQ(slp::peekFunction(slp::encode(slp::SrvRequest{})), slp::kFnSrvRqst);
    EXPECT_EQ(slp::peekFunction(slp::encode(slp::SrvReply{})), slp::kFnSrvRply);
    EXPECT_FALSE(slp::peekFunction(toBytes("x")));
}

// --- DNS codec -----------------------------------------------------------------

TEST(DnsCodec, QuestionRoundTrip) {
    const auto message = mdns::makeQuestion(7, "_printer._tcp.local");
    const auto decoded = mdns::decode(mdns::encode(message));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->id, 7);
    EXPECT_FALSE(decoded->isResponse());
    ASSERT_EQ(decoded->questions.size(), 1u);
    EXPECT_EQ(decoded->questions[0].qname, "_printer._tcp.local");
}

TEST(DnsCodec, ResponseRoundTrip) {
    const auto message = mdns::makeResponse(7, "_printer._tcp.local", "http://10.0.0.3/u");
    const auto decoded = mdns::decode(mdns::encode(message));
    ASSERT_TRUE(decoded);
    EXPECT_TRUE(decoded->isResponse());
    ASSERT_EQ(decoded->answers.size(), 1u);
    EXPECT_EQ(toString(decoded->answers[0].rdata), "http://10.0.0.3/u");
    EXPECT_EQ(decoded->answers[0].ttl, 120u);
}

TEST(DnsCodec, RejectsCorruption) {
    EXPECT_FALSE(mdns::decode({}));
    EXPECT_FALSE(mdns::decode(toBytes("short")));
    Bytes wire = mdns::encode(mdns::makeQuestion(1, "a.b"));
    wire.pop_back();
    EXPECT_FALSE(mdns::decode(wire));
    wire = mdns::encode(mdns::makeQuestion(1, "a.b"));
    wire.push_back(0);  // trailing garbage
    EXPECT_FALSE(mdns::decode(wire));
}

TEST(DnsCodec, RejectsOversizedLabelOnEncode) {
    EXPECT_THROW(mdns::encode(mdns::makeQuestion(1, std::string(64, 'x') + ".local")),
                 ProtocolError);
}

// --- SSDP codec ----------------------------------------------------------------

TEST(SsdpCodec, MSearchRoundTrip) {
    ssdp::MSearch search;
    search.st = "urn:schemas-upnp-org:service:printer:1";
    search.mx = 3;
    const auto decoded = ssdp::decodeMSearch(ssdp::encode(search));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->st, search.st);
    EXPECT_EQ(decoded->mx, 3);
    EXPECT_EQ(decoded->man, "\"ssdp:discover\"");
}

TEST(SsdpCodec, ResponseRoundTrip) {
    ssdp::Response response;
    response.st = "urn:x";
    response.usn = "uuid:1::urn:x";
    response.location = "http://10.0.0.3:8080/desc.xml";
    const auto decoded = ssdp::decodeResponse(ssdp::encode(response));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->location, response.location);
    EXPECT_EQ(decoded->usn, response.usn);
}

TEST(SsdpCodec, CrossDecodeRejected) {
    EXPECT_FALSE(ssdp::decodeResponse(ssdp::encode(ssdp::MSearch{})));
    ssdp::Response response;
    response.location = "http://x/";
    EXPECT_FALSE(ssdp::decodeMSearch(ssdp::encode(response)));
}

TEST(SsdpCodec, ResponseWithoutLocationRejected) {
    EXPECT_FALSE(ssdp::decodeResponse(toBytes("HTTP/1.1 200 OK\r\nST: urn:x\r\n\r\n")));
}

TEST(SsdpCodec, ExtractUrlBase) {
    EXPECT_EQ(ssdp::extractUrlBase("<root><URLBase> http://u </URLBase></root>"), "http://u");
    EXPECT_FALSE(ssdp::extractUrlBase("<root/>"));
    EXPECT_FALSE(ssdp::extractUrlBase("<URLBase>unterminated"));
}

// --- HTTP codec -----------------------------------------------------------------

TEST(HttpCodec, RequestRoundTrip) {
    http::Request request;
    request.path = "/desc.xml";
    request.headers.emplace_back("Host", "10.0.0.3:8080");
    const auto decoded = http::decodeRequest(http::encode(request));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->method, "GET");
    EXPECT_EQ(decoded->path, "/desc.xml");
    EXPECT_EQ(decoded->header("host"), "10.0.0.3:8080");  // case-insensitive
}

TEST(HttpCodec, ResponseRoundTripWithBody) {
    http::Response response;
    response.body = "hello body";
    response.headers.emplace_back("Content-Type", "text/plain");
    const auto decoded = http::decodeResponse(http::encode(response));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->status, 200);
    EXPECT_EQ(decoded->body, "hello body");
    EXPECT_EQ(decoded->header("Content-Length"), "10");
}

TEST(HttpCodec, ContentLengthMismatchRejected) {
    const std::string raw = "HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nshort";
    EXPECT_FALSE(http::decodeResponse(toBytes(raw)));
}

TEST(HttpCodec, MalformedRejected) {
    EXPECT_FALSE(http::decodeRequest(toBytes("no blank line")));
    EXPECT_FALSE(http::decodeRequest(toBytes("GET\r\n\r\n")));
    EXPECT_FALSE(http::decodeResponse(toBytes("NOTHTTP 200 OK\r\n\r\n")));
}

// --- agents over the simulated network ----------------------------------------------

class AgentsTest : public SimTest {};

TEST_F(AgentsTest, SlpLookupAgainstServiceAgent) {
    slp::ServiceAgent::Config serviceConfig;
    serviceConfig.responseDelayBase = net::ms(100);
    serviceConfig.responseDelayJitter = net::ms(0);
    slp::ServiceAgent service(network, serviceConfig);
    slp::UserAgent client(network, {});

    std::optional<slp::UserAgent::Result> outcome;
    client.lookup("service:printer",
                  [&outcome](const slp::UserAgent::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    ASSERT_EQ(outcome->urls.size(), 1u);
    EXPECT_EQ(outcome->urls[0], serviceConfig.url);
    EXPECT_GE(elapsedMs(outcome->elapsed), 100.0);
    EXPECT_EQ(service.requestsServed(), 1u);
}

TEST_F(AgentsTest, SlpServiceIgnoresOtherTypes) {
    slp::ServiceAgent service(network, {});
    slp::UserAgent::Config config;
    config.timeout = net::ms(100);
    slp::UserAgent client(network, config);
    std::optional<slp::UserAgent::Result> outcome;
    client.lookup("service:fax",
                  [&outcome](const slp::UserAgent::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    EXPECT_TRUE(outcome->urls.empty());
    EXPECT_EQ(service.requestsServed(), 0u);
}

TEST_F(AgentsTest, SlpServiceHonoursPreviousResponderList) {
    slp::ServiceAgent::Config serviceConfig;
    serviceConfig.responseDelayBase = net::ms(1);
    slp::ServiceAgent service(network, serviceConfig);
    auto probe = network.openUdp("10.0.0.7");
    slp::SrvRequest request;
    request.xid = 5;
    request.serviceType = "service:printer";
    request.prList = "10.0.0.8," + serviceConfig.host;  // we already answered
    int replies = 0;
    probe->onDatagram([&replies](const Bytes&, const net::Address&) { ++replies; });
    probe->sendTo(net::Address{slp::kGroup, slp::kPort}, slp::encode(request));
    run();
    EXPECT_EQ(replies, 0);
}

TEST_F(AgentsTest, MdnsBrowseAggregatesAfterFirstAnswer) {
    mdns::Responder::Config responderConfig;
    responderConfig.responseDelayBase = net::ms(50);
    responderConfig.responseDelayJitter = net::ms(0);
    mdns::Responder responder(network, responderConfig);
    mdns::Resolver::Config resolverConfig;
    resolverConfig.aggregationBase = net::ms(200);
    resolverConfig.aggregationJitter = net::ms(0);
    mdns::Resolver client(network, resolverConfig);

    std::optional<mdns::Resolver::Result> outcome;
    client.browse("_printer._tcp.local",
                  [&outcome](const mdns::Resolver::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    ASSERT_EQ(outcome->urls.size(), 1u);
    EXPECT_EQ(outcome->urls[0], responderConfig.url);
    // first answer ~50ms + aggregation 200ms (+ network latency)
    EXPECT_GE(elapsedMs(outcome->elapsed), 250.0);
    EXPECT_LT(elapsedMs(outcome->elapsed), 300.0);
}

TEST_F(AgentsTest, MdnsBrowseTimesOutQuietly) {
    mdns::Resolver::Config config;
    config.timeout = net::ms(300);
    mdns::Resolver client(network, config);
    std::optional<mdns::Resolver::Result> outcome;
    client.browse("_nothing._tcp.local",
                  [&outcome](const mdns::Resolver::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    EXPECT_TRUE(outcome->urls.empty());
    EXPECT_GE(elapsedMs(outcome->elapsed), 300.0);
}

TEST_F(AgentsTest, MdnsResponderIgnoresForeignNames) {
    mdns::Responder responder(network, {});
    auto probe = network.openUdp("10.0.0.7", mdns::kPort);
    probe->joinGroup(net::Address{mdns::kGroup, mdns::kPort});
    int replies = 0;
    probe->onDatagram([&replies](const Bytes&, const net::Address&) { ++replies; });
    probe->sendTo(net::Address{mdns::kGroup, mdns::kPort},
                  mdns::encode(mdns::makeQuestion(1, "_other._tcp.local")));
    run();
    EXPECT_EQ(replies, 0);
    EXPECT_EQ(responder.questionsAnswered(), 0u);
}

TEST_F(AgentsTest, UpnpSearchResolvesDeviceDescription) {
    ssdp::Device::Config deviceConfig;
    deviceConfig.responseDelayBase = net::ms(50);
    deviceConfig.responseDelayJitter = net::ms(0);
    ssdp::Device device(network, deviceConfig);
    ssdp::ControlPoint::Config cpConfig;
    cpConfig.mxWindowBase = net::ms(200);
    cpConfig.mxWindowJitter = net::ms(0);
    ssdp::ControlPoint client(network, cpConfig);

    std::optional<ssdp::ControlPoint::Result> outcome;
    client.search(deviceConfig.st,
                  [&outcome](const ssdp::ControlPoint::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    ASSERT_EQ(outcome->urls.size(), 1u);
    EXPECT_EQ(outcome->urls[0], deviceConfig.serviceUrl);
    EXPECT_EQ(device.searchesAnswered(), 1u);
    EXPECT_GE(elapsedMs(outcome->elapsed), 200.0);  // at least the MX window
}

TEST_F(AgentsTest, UpnpControlPointWaitsBeyondEmptyWindow) {
    // Device answers AFTER the MX window: the control point must still
    // proceed ("Cyberlink does not bound the response time").
    ssdp::Device::Config deviceConfig;
    deviceConfig.responseDelayBase = net::ms(500);
    deviceConfig.responseDelayJitter = net::ms(0);
    ssdp::Device device(network, deviceConfig);
    ssdp::ControlPoint::Config cpConfig;
    cpConfig.mxWindowBase = net::ms(100);
    cpConfig.mxWindowJitter = net::ms(0);
    ssdp::ControlPoint client(network, cpConfig);

    std::optional<ssdp::ControlPoint::Result> outcome;
    client.search(deviceConfig.st,
                  [&outcome](const ssdp::ControlPoint::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    ASSERT_EQ(outcome->urls.size(), 1u);
    EXPECT_GE(elapsedMs(outcome->elapsed), 500.0);
}

TEST_F(AgentsTest, UpnpDeviceAnswersSsdpAll) {
    ssdp::Device::Config deviceConfig;
    deviceConfig.responseDelayBase = net::ms(10);
    ssdp::Device device(network, deviceConfig);
    ssdp::ControlPoint::Config cpConfig;
    cpConfig.mxWindowBase = net::ms(50);
    ssdp::ControlPoint client(network, cpConfig);
    std::optional<ssdp::ControlPoint::Result> outcome;
    client.search("ssdp:all",
                  [&outcome](const ssdp::ControlPoint::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    EXPECT_EQ(outcome->urls.size(), 1u);
}

TEST_F(AgentsTest, HttpServerServesAndRejects) {
    http::Server::Config serverConfig;
    serverConfig.responseDelayBase = net::ms(5);
    http::Server server(network, serverConfig);
    server.addResource("/a.xml", "<a/>");
    http::Client client(network, "10.0.0.1");

    std::optional<http::Response> ok;
    client.get(serverConfig.host, serverConfig.port, "/a.xml",
               [&ok](std::optional<http::Response> response) { ok = std::move(response); });
    run();
    ASSERT_TRUE(ok);
    EXPECT_EQ(ok->status, 200);
    EXPECT_EQ(ok->body, "<a/>");

    std::optional<http::Response> missing;
    client.get(serverConfig.host, serverConfig.port, "/nope",
               [&missing](std::optional<http::Response> r) { missing = std::move(r); });
    run();
    ASSERT_TRUE(missing);
    EXPECT_EQ(missing->status, 404);
    EXPECT_EQ(server.requestsServed(), 2u);
}

TEST_F(AgentsTest, HttpClientReportsConnectionRefused) {
    http::Client client(network, "10.0.0.1");
    bool called = false;
    client.get("10.0.0.250", 80, "/", [&called](std::optional<http::Response> response) {
        called = true;
        EXPECT_FALSE(response);
    });
    run();
    EXPECT_TRUE(called);
}

}  // namespace
}  // namespace starlink
