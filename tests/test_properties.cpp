// Parameterized property sweeps (TEST_P) over the framework's invariants:
//
//   P1  MDL round-trip: parse(compose(parse(wire))) is the identity on every
//       legacy wire message, across seeded random message populations.
//   P2  Parser totality: no byte buffer -- random or a mutation of a valid
//       message -- makes a codec crash or throw; it parses or returns
//       nullopt.
//   P3  Color hash injectivity under seeded random descriptor populations.
//   P4  XML round-trip: write(parse(x)) reparses structurally equal, over
//       randomly generated documents.
//   P5  End-to-end value transport: for every of the six interop cases, a
//       randomized service URL arrives at the heterogeneous client intact.
//   P6  Session interleaving: shuffling the dispatch order of a session
//       workload (and re-partitioning it across shards) never changes any
//       SessionRecord outcome -- 50 seeded shuffles.
#include <gtest/gtest.h>

#include <map>

#include "net/sim_network.hpp"
#include "common/rng.hpp"
#include "core/automata/color.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/engine/shard_engine.hpp"
#include "core/mdl/codec.hpp"
#include "protocols/ldap/ldap_codec.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "protocols/wsd/wsd_codec.hpp"
#include "sim_fixture.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace starlink {
namespace {

std::string randomToken(Rng& rng, int maxLength, const std::string& alphabet) {
    std::string out;
    const int length = static_cast<int>(rng.range(1, maxLength));
    for (int i = 0; i < length; ++i) {
        out.push_back(alphabet[static_cast<std::size_t>(
            rng.range(0, static_cast<std::int64_t>(alphabet.size() - 1)))]);
    }
    return out;
}

// --- P1/P2 over the binary protocols -----------------------------------------------

class BinaryCodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryCodecProperty, SlpRoundTripAndTotality) {
    Rng rng(GetParam());
    const auto codec = mdl::MessageCodec::fromXml(bridge::models::slpMdl());
    const std::string alphabet = "abcdefghijklmnopqrstuvwxyz0123456789:/._-()=";
    for (int round = 0; round < 40; ++round) {
        Bytes wire;
        if (rng.chance(0.5)) {
            slp::SrvRequest request;
            request.xid = static_cast<std::uint16_t>(rng.range(0, 65535));
            request.serviceType = "service:" + randomToken(rng, 24, alphabet);
            request.prList = rng.chance(0.5) ? randomToken(rng, 30, alphabet) : "";
            request.predicate = rng.chance(0.5) ? randomToken(rng, 30, alphabet) : "";
            wire = slp::encode(request);
        } else {
            slp::SrvReply reply;
            reply.xid = static_cast<std::uint16_t>(rng.range(0, 65535));
            reply.lifetime = static_cast<std::uint16_t>(rng.range(0, 65535));
            reply.url = randomToken(rng, 60, alphabet);
            wire = slp::encode(reply);
        }
        const auto message = codec->parse(wire);
        ASSERT_TRUE(message);
        EXPECT_EQ(codec->compose(*message), wire);

        // Mutate one byte: the parser must stay total.
        Bytes mutated = wire;
        mutated[static_cast<std::size_t>(
            rng.range(0, static_cast<std::int64_t>(mutated.size() - 1)))] ^=
            static_cast<std::uint8_t>(rng.range(1, 255));
        EXPECT_NO_THROW({ auto result = codec->parse(mutated); (void)result; });
        // Truncate: same contract.
        Bytes truncated(wire.begin(),
                        wire.begin() + static_cast<std::ptrdiff_t>(
                                           rng.range(0, static_cast<std::int64_t>(wire.size()))));
        EXPECT_NO_THROW({ auto result = codec->parse(truncated); (void)result; });
    }
}

TEST_P(BinaryCodecProperty, DnsRoundTripAndTotality) {
    Rng rng(GetParam() * 31 + 7);
    const auto codec = mdl::MessageCodec::fromXml(bridge::models::dnsMdl());
    for (int round = 0; round < 40; ++round) {
        const std::string name = "_" + randomToken(rng, 12, "abcdefghijklmnopqrstuvwxyz") +
                                 "._tcp.local";
        const auto id = static_cast<std::uint16_t>(rng.range(0, 65535));
        const Bytes wire =
            rng.chance(0.5)
                ? mdns::encode(mdns::makeQuestion(id, name))
                : mdns::encode(mdns::makeResponse(
                      id, name, randomToken(rng, 40, "abcdefghij0123456789:/.")));
        const auto message = codec->parse(wire);
        ASSERT_TRUE(message);
        EXPECT_EQ(codec->compose(*message), wire);

        Bytes mutated = wire;
        mutated[static_cast<std::size_t>(
            rng.range(0, static_cast<std::int64_t>(mutated.size() - 1)))] ^=
            static_cast<std::uint8_t>(rng.range(1, 255));
        EXPECT_NO_THROW({ auto result = codec->parse(mutated); (void)result; });
    }
}

TEST_P(BinaryCodecProperty, PureNoiseNeverParsesAsBothProtocols) {
    // Random byte blobs must never crash either binary codec; the odds of
    // accidentally parsing as a VALID message of both protocols at once are
    // nil because the headers disagree.
    Rng rng(GetParam() * 17 + 3);
    const auto slpCodec = mdl::MessageCodec::fromXml(bridge::models::slpMdl());
    const auto dnsCodec = mdl::MessageCodec::fromXml(bridge::models::dnsMdl());
    for (int round = 0; round < 60; ++round) {
        Bytes noise;
        const int size = static_cast<int>(rng.range(0, 128));
        for (int i = 0; i < size; ++i) {
            noise.push_back(static_cast<std::uint8_t>(rng.range(0, 255)));
        }
        std::optional<AbstractMessage> slpParsed;
        std::optional<AbstractMessage> dnsParsed;
        EXPECT_NO_THROW(slpParsed = slpCodec->parse(noise));
        EXPECT_NO_THROW(dnsParsed = dnsCodec->parse(noise));
        EXPECT_FALSE(slpParsed && dnsParsed);
    }
}

TEST_P(BinaryCodecProperty, LdapRoundTripAndTotality) {
    Rng rng(GetParam() * 53 + 11);
    const auto codec = mdl::MessageCodec::fromXml(bridge::models::ldapMdl());
    const std::string alphabet = "abcdefghij0123456789:=().,";
    for (int round = 0; round < 40; ++round) {
        Bytes wire;
        if (rng.chance(0.5)) {
            ldap::SearchRequest request;
            request.messageId = static_cast<std::uint16_t>(rng.range(0, 65535));
            request.serviceClass = "service:" + randomToken(rng, 16, alphabet);
            request.filter = rng.chance(0.5) ? "(" + randomToken(rng, 16, alphabet) + ")" : "";
            wire = ldap::encode(request);
        } else {
            ldap::SearchResult result;
            result.messageId = static_cast<std::uint16_t>(rng.range(0, 65535));
            result.dn = "cn=" + randomToken(rng, 12, alphabet);
            result.url = randomToken(rng, 40, alphabet);
            wire = ldap::encode(result);
        }
        const auto message = codec->parse(wire);
        ASSERT_TRUE(message);
        EXPECT_EQ(codec->compose(*message), wire);

        Bytes mutated = wire;
        mutated[static_cast<std::size_t>(
            rng.range(0, static_cast<std::int64_t>(mutated.size() - 1)))] ^=
            static_cast<std::uint8_t>(rng.range(1, 255));
        EXPECT_NO_THROW({ auto result = codec->parse(mutated); (void)result; });
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryCodecProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// --- P2 over the text protocols ------------------------------------------------------

class TextCodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TextCodecProperty, SsdpAndHttpTotality) {
    Rng rng(GetParam());
    const auto ssdpCodec = mdl::MessageCodec::fromXml(bridge::models::ssdpMdl());
    const auto httpCodec = mdl::MessageCodec::fromXml(bridge::models::httpMdl());
    const std::string alphabet =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789:/._- \r\n\"<>";
    for (int round = 0; round < 60; ++round) {
        const Bytes noise = toBytes(randomToken(rng, 200, alphabet));
        EXPECT_NO_THROW({ auto result = ssdpCodec->parse(noise); (void)result; });
        EXPECT_NO_THROW({ auto result = httpCodec->parse(noise); (void)result; });
    }
}

TEST_P(TextCodecProperty, SsdpFieldValuesSurviveRoundTrip) {
    Rng rng(GetParam() * 11 + 1);
    const auto codec = mdl::MessageCodec::fromXml(bridge::models::ssdpMdl());
    for (int round = 0; round < 30; ++round) {
        ssdp::Response response;
        response.st = "urn:" + randomToken(rng, 30, "abcdefghij:-0123456789");
        response.usn = "uuid:" + randomToken(rng, 20, "abcdef0123456789-");
        response.location = "http://10.0.0." + std::to_string(rng.range(1, 254)) + ":" +
                            std::to_string(rng.range(1, 65535)) + "/" +
                            randomToken(rng, 12, "abcdefghij.");
        const auto message = codec->parse(ssdp::encode(response));
        ASSERT_TRUE(message);
        EXPECT_EQ(message->value("ST")->asString(), response.st);
        EXPECT_EQ(message->value("USN")->asString(), response.usn);
        EXPECT_EQ(message->value("LOCATION")->asString(), response.location);
        // Compose -> legacy decode preserves them too.
        const auto decoded = ssdp::decodeResponse(codec->compose(*message));
        ASSERT_TRUE(decoded);
        EXPECT_EQ(decoded->st, response.st);
        EXPECT_EQ(decoded->location, response.location);
    }
}

TEST_P(TextCodecProperty, WsdFieldValuesSurviveRoundTrip) {
    // The xml dialect: field values with XML-hostile characters survive
    // compose -> legacy decode and legacy encode -> parse.
    Rng rng(GetParam() * 7 + 5);
    const auto codec = mdl::MessageCodec::fromXml(bridge::models::wsdMdl());
    for (int round = 0; round < 30; ++round) {
        wsd::ProbeMatch match;
        match.messageId = "uuid:" + randomToken(rng, 12, "abcdef0123456789-");
        match.relatesTo = "uuid:" + randomToken(rng, 12, "abcdef0123456789-");
        match.types = randomToken(rng, 10, "abcdefghij");
        match.xaddrs = "http://10.0.0." + std::to_string(rng.range(1, 254)) + "/" +
                       randomToken(rng, 10, "abc&<>\"'xyz");
        const auto message = codec->parse(wsd::encode(match));
        ASSERT_TRUE(message);
        EXPECT_EQ(message->value("XAddrs")->asString(), match.xaddrs);
        const auto decoded = wsd::decodeProbeMatch(codec->compose(*message));
        ASSERT_TRUE(decoded);
        EXPECT_EQ(decoded->xaddrs, match.xaddrs);
        EXPECT_EQ(decoded->relatesTo, match.relatesTo);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextCodecProperty, ::testing::Values(4u, 9u, 16u, 25u));

// --- P3: color hash injectivity --------------------------------------------------------

class ColorHashProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColorHashProperty, InjectiveOverRandomDescriptors) {
    Rng rng(GetParam());
    automata::ColorRegistry registry;
    std::map<std::uint64_t, std::string> seen;
    for (int i = 0; i < 500; ++i) {
        automata::Color color;
        const int entries = static_cast<int>(rng.range(1, 6));
        for (int e = 0; e < entries; ++e) {
            color.set("k" + std::to_string(rng.range(0, 9)),
                      randomToken(rng, 8, "abcdefghij0123456789"));
        }
        const std::uint64_t k = registry.colorOf(color);
        const auto [it, inserted] = seen.emplace(k, color.canonicalKey());
        if (!inserted) {
            EXPECT_EQ(it->second, color.canonicalKey());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColorHashProperty, ::testing::Values(11u, 22u, 33u, 44u));

// --- P4: XML round trip ---------------------------------------------------------------

class XmlProperty : public ::testing::TestWithParam<std::uint64_t> {};

namespace {
void buildRandomTree(Rng& rng, xml::Node& node, int depth) {
    const std::string names = "abcdefgh";
    if (rng.chance(0.6)) {
        node.setText(randomToken(rng, 20, "abc <>&\"' xyz123"));
    }
    if (rng.chance(0.7)) {
        node.setAttribute(std::string(1, names[static_cast<std::size_t>(rng.range(0, 7))]),
                          randomToken(rng, 10, "val<>&\"'ue"));
    }
    if (depth < 3) {
        const int children = static_cast<int>(rng.range(0, 3));
        for (int i = 0; i < children; ++i) {
            buildRandomTree(
                rng,
                node.appendChild("e" + std::to_string(rng.range(0, 5))),
                depth + 1);
        }
    }
}
}  // namespace

TEST_P(XmlProperty, WriteParseRoundTrip) {
    Rng rng(GetParam());
    for (int round = 0; round < 50; ++round) {
        xml::Node root("root");
        buildRandomTree(rng, root, 0);
        const std::string text = xml::write(root);
        const auto reparsed = xml::parse(text);
        EXPECT_TRUE(root.structurallyEquals(*reparsed)) << text;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlProperty, ::testing::Values(7u, 14u, 28u));

// --- P5: end-to-end value transport across all six cases -------------------------------

class CaseTransportProperty
    : public ::testing::TestWithParam<std::tuple<bridge::models::Case, std::uint64_t>> {};

TEST_P(CaseTransportProperty, RandomServiceUrlArrivesIntact) {
    const auto [interopCase, seed] = GetParam();
    Rng rng(seed);
    const std::string url = "http://10.0.0.3:" + std::to_string(rng.range(1024, 65535)) + "/" +
                            randomToken(rng, 16, "abcdefghijklmnop0123456789");

    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    starlink.deploy(bridge::models::forCase(interopCase, "10.0.0.9"), "10.0.0.9");

    using bridge::models::Case;
    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    switch (interopCase) {
        case Case::UpnpToSlp:
        case Case::BonjourToSlp: {
            slp::ServiceAgent::Config config;
            config.url = url;
            config.responseDelayBase = net::ms(5);
            slpService.emplace(network, config);
            break;
        }
        case Case::SlpToBonjour:
        case Case::UpnpToBonjour: {
            mdns::Responder::Config config;
            config.url = url;
            config.responseDelayBase = net::ms(5);
            mdnsService.emplace(network, config);
            break;
        }
        case Case::SlpToUpnp:
        case Case::BonjourToUpnp: {
            ssdp::Device::Config config;
            config.serviceUrl = url;
            config.responseDelayBase = net::ms(5);
            upnpService.emplace(network, config);
            break;
        }
    }

    std::vector<std::string> urls;
    std::optional<slp::UserAgent> slpClient;
    std::optional<mdns::Resolver> mdnsClient;
    std::optional<ssdp::ControlPoint> upnpClient;
    switch (interopCase) {
        case Case::SlpToUpnp:
        case Case::SlpToBonjour:
            slpClient.emplace(network, slp::UserAgent::Config{});
            slpClient->lookup("service:printer",
                              [&urls](const slp::UserAgent::Result& r) { urls = r.urls; });
            break;
        case Case::UpnpToSlp:
        case Case::UpnpToBonjour: {
            ssdp::ControlPoint::Config config;
            config.mxWindowBase = net::ms(30);
            upnpClient.emplace(network, config);
            upnpClient->search("urn:schemas-upnp-org:service:printer:1",
                               [&urls](const ssdp::ControlPoint::Result& r) { urls = r.urls; });
            break;
        }
        case Case::BonjourToUpnp:
        case Case::BonjourToSlp: {
            mdns::Resolver::Config config;
            config.aggregationBase = net::ms(20);
            mdnsClient.emplace(network, config);
            mdnsClient->browse("_printer._tcp.local",
                               [&urls](const mdns::Resolver::Result& r) { urls = r.urls; });
            break;
        }
    }
    scheduler.runUntilIdle();

    ASSERT_EQ(urls.size(), 1u) << bridge::models::caseName(interopCase);
    EXPECT_EQ(urls[0], url) << bridge::models::caseName(interopCase);
}

INSTANTIATE_TEST_SUITE_P(
    AllCasesTimesSeeds, CaseTransportProperty,
    ::testing::Combine(::testing::ValuesIn(bridge::models::kAllCases),
                       ::testing::Values(100u, 200u, 300u)),
    [](const ::testing::TestParamInfo<CaseTransportProperty::ParamType>& info) {
        std::string name = bridge::models::caseName(std::get<0>(info.param));
        for (char& c : name) {
            if (c == ' ') c = '_';
        }
        return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// --- P6: session interleaving ------------------------------------------------------
//
// A session's outcome is a pure function of (case, seed) -- shard_engine.hpp's
// determinism contract. Property: SHUFFLING the dispatch order of a workload
// (which reshuffles every island's session history and, at shard counts > 1,
// the thread interleaving) never changes any SessionRecord outcome. 50 seeded
// shuffles across the parameterized seeds.

class InterleavingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterleavingProperty, ShuffledDispatchOrderNeverChangesOutcomes) {
    constexpr int kJobs = 30;
    constexpr int kShufflesPerSeed = 10;  // x5 seed instances = 50 iterations

    std::vector<engine::SessionJob> jobs;
    for (int i = 0; i < kJobs; ++i) {
        engine::SessionJob job;
        job.caseId = bridge::models::kAllCases[static_cast<std::size_t>(i) % 6];
        job.key = "interleave-" + std::to_string(i);
        jobs.push_back(std::move(job));
    }

    // Reference: submission order, sequential.
    std::map<std::string, engine::SessionResult> reference;
    {
        engine::ShardEngine sequential(engine::ShardEngineOptions{});
        for (const auto& job : jobs) sequential.submit(job);
        for (const auto& result : sequential.run()) {
            reference.emplace(result.job.key, result);
        }
    }
    ASSERT_EQ(reference.size(), jobs.size());

    Rng rng(GetParam());
    for (int round = 0; round < kShufflesPerSeed; ++round) {
        // Seeded Fisher-Yates, then a rotating shard count so the property
        // also covers re-partitioned (multi-threaded) layouts.
        std::vector<engine::SessionJob> shuffled = jobs;
        for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
            const auto j =
                static_cast<std::size_t>(rng.range(0, static_cast<std::int64_t>(i)));
            std::swap(shuffled[i], shuffled[j]);
        }
        engine::ShardEngineOptions options;
        options.shards = 1 << (round % 4);  // 1, 2, 4, 8, ...
        engine::ShardEngine engine(options);
        for (const auto& job : shuffled) engine.submit(job);
        for (const auto& result : engine.run()) {
            const auto it = reference.find(result.job.key);
            ASSERT_NE(it, reference.end()) << result.job.key;
            EXPECT_EQ(result.discovered, it->second.discovered) << result.job.key;
            ASSERT_EQ(result.outcomes.size(), it->second.outcomes.size())
                << result.job.key;
            for (std::size_t s = 0; s < result.outcomes.size(); ++s) {
                EXPECT_TRUE(result.outcomes[s] == it->second.outcomes[s])
                    << result.job.key << " session " << s << " diverged under "
                    << options.shards << "-shard shuffle " << round;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterleavingProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace starlink
