// Unit tests for the common substrate: bytes, strings, rng.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace starlink {
namespace {

TEST(Bytes, RoundTripString) {
    const Bytes b = toBytes("hello");
    EXPECT_EQ(b.size(), 5u);
    EXPECT_EQ(toString(b), "hello");
}

TEST(Bytes, EmptyString) {
    EXPECT_TRUE(toBytes("").empty());
    EXPECT_EQ(toString({}), "");
}

TEST(Bytes, HexEncoding) {
    EXPECT_EQ(toHex({0x00, 0xff, 0x1a}), "00ff1a");
    EXPECT_EQ(toHex({}), "");
}

TEST(Bytes, HexDecoding) {
    EXPECT_EQ(fromHex("00ff1a"), (Bytes{0x00, 0xff, 0x1a}));
    EXPECT_EQ(fromHex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Bytes, HexRejectsOddLength) { EXPECT_THROW(fromHex("abc"), SpecError); }

TEST(Bytes, HexRejectsNonHex) { EXPECT_THROW(fromHex("zz"), SpecError); }

TEST(Bytes, HexRoundTripProperty) {
    Rng rng(99);
    for (int round = 0; round < 50; ++round) {
        Bytes original;
        const int size = static_cast<int>(rng.range(0, 64));
        for (int i = 0; i < size; ++i) {
            original.push_back(static_cast<std::uint8_t>(rng.range(0, 255)));
        }
        EXPECT_EQ(fromHex(toHex(original)), original);
    }
}

TEST(Bytes, AppendReadUintRoundTrip) {
    Rng rng(123);
    for (int width = 1; width <= 8; ++width) {
        for (int round = 0; round < 20; ++round) {
            const std::uint64_t value =
                width == 8 ? rng.next() : rng.next() % (1ULL << (8 * width));
            Bytes buffer;
            appendUint(buffer, value, width);
            ASSERT_EQ(buffer.size(), static_cast<std::size_t>(width));
            std::uint64_t decoded = 0;
            ASSERT_TRUE(readUint(buffer, 0, width, decoded));
            EXPECT_EQ(decoded, value);
        }
    }
}

TEST(Bytes, ReadUintTruncated) {
    std::uint64_t value = 0;
    EXPECT_FALSE(readUint({0x01}, 0, 2, value));
    EXPECT_FALSE(readUint({}, 0, 1, value));
    EXPECT_FALSE(readUint({0x01, 0x02}, 1, 2, value));
}

TEST(Strings, SplitKeepsEmptyPieces) {
    EXPECT_EQ(split("a::b", ':'), (std::vector<std::string>{"a", "", "b"}));
    EXPECT_EQ(split("", ':'), (std::vector<std::string>{""}));
    EXPECT_EQ(split(":", ':'), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitMultiChar) {
    EXPECT_EQ(split("a\r\nb\r\n", std::string_view("\r\n")),
              (std::vector<std::string>{"a", "b", ""}));
}

TEST(Strings, SplitFirst) {
    const auto halves = splitFirst("LOCATION: http://x:80/", ':');
    ASSERT_TRUE(halves);
    EXPECT_EQ(halves->first, "LOCATION");
    EXPECT_EQ(halves->second, " http://x:80/");
    EXPECT_FALSE(splitFirst("nocolon", ':'));
}

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  a b \t\n"), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseHelpers) {
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_TRUE(iequals("Content-Length", "content-length"));
    EXPECT_FALSE(iequals("a", "ab"));
}

TEST(Strings, StartsEndsWith) {
    EXPECT_TRUE(startsWith("service:printer", "service:"));
    EXPECT_FALSE(startsWith("srv", "service:"));
    EXPECT_TRUE(endsWith("desc.xml", ".xml"));
    EXPECT_FALSE(endsWith("x", ".xml"));
}

TEST(Strings, ParseIntStrict) {
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt("-7"), -7);
    EXPECT_EQ(parseInt("+7"), 7);
    EXPECT_FALSE(parseInt(""));
    EXPECT_FALSE(parseInt("4a"));
    EXPECT_FALSE(parseInt("-"));
    EXPECT_FALSE(parseInt(" 42"));
}

TEST(Strings, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
    EXPECT_EQ(join({}, "."), "");
    EXPECT_EQ(join({"x"}, "."), "x");
}

TEST(Rng, Deterministic) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeInclusiveBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes) {
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

}  // namespace
}  // namespace starlink
