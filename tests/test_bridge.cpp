// Unit tests for the Starlink facade and the built-in model library:
// deployment validation, runtime extensibility, model sanity.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "sim_fixture.hpp"

namespace starlink::bridge {
namespace {

using models::Case;
using models::Role;
using testing::SimTest;

class BridgeTest : public SimTest {
protected:
    Starlink starlink{network};
};

TEST_F(BridgeTest, DeploysEveryCase) {
    int port = 8085;
    for (const Case c : models::kAllCases) {
        // Distinct host per bridge; distinct HTTP port to avoid rebinds.
        const std::string host = "10.0.1." + std::to_string(static_cast<int>(c) + 1);
        EXPECT_NO_THROW(starlink.deploy(models::forCase(c, host, port++), host))
            << models::caseName(c);
    }
    EXPECT_EQ(starlink.bridges().size(), 6u);
}

TEST_F(BridgeTest, DeployedBridgeStartsAtInitialState) {
    auto& bridge = starlink.deploy(models::forCase(Case::SlpToBonjour, "10.0.0.9"), "10.0.0.9");
    EXPECT_TRUE(bridge.engine().running());
    EXPECT_EQ(bridge.engine().currentState(), "s10");
    EXPECT_EQ(bridge.host(), "10.0.0.9");
    EXPECT_TRUE(bridge.engine().sessions().empty());
}

TEST_F(BridgeTest, RejectsBridgeWithUncoveredMandatoryField) {
    auto spec = models::forCase(Case::SlpToBonjour, "10.0.0.9");
    // Excise the XID assignment block: SLPSrvReply's mandatory XID is then
    // uncovered and the deployment must fail the eqn-1 check.
    const std::size_t start = spec.bridgeXml.find(
        "    <Assignment>\n      <Field state=\"s11\" message=\"SLPSrvReply\" path=\"XID\"");
    ASSERT_NE(start, std::string::npos);
    const std::size_t end = spec.bridgeXml.find("</Assignment>\n", start);
    ASSERT_NE(end, std::string::npos);
    spec.bridgeXml.erase(start, end + 14 - start);

    EXPECT_THROW(starlink.deploy(spec, "10.0.0.9"), SpecError);
}

TEST_F(BridgeTest, RejectsDuplicateProtocolNames) {
    auto spec = models::forCase(Case::SlpToBonjour, "10.0.0.9");
    spec.protocols.push_back(spec.protocols[0]);
    EXPECT_THROW(starlink.deploy(spec, "10.0.0.9"), SpecError);
}

TEST_F(BridgeTest, RejectsBrokenBridgeXml) {
    auto spec = models::forCase(Case::SlpToBonjour, "10.0.0.9");
    spec.bridgeXml = "<Bridge name='x'><Start state='nowhere'/></Bridge>";
    EXPECT_THROW(starlink.deploy(spec, "10.0.0.9"), SpecError);
}

TEST_F(BridgeTest, RegistriesAreExposedForRuntimeExtension) {
    starlink.translations().add("wrap", [](const Value& v) -> std::optional<Value> {
        return Value::ofString("[" + v.toText() + "]");
    });
    EXPECT_TRUE(starlink.translations().contains("wrap"));
    starlink.marshallers().add("Custom", std::make_shared<mdl::StringMarshaller>());
    EXPECT_NE(starlink.marshallers().find("Custom"), nullptr);
}

TEST(Models, MdlDocumentsAllLoad) {
    EXPECT_NO_THROW(mdl::MdlDocument::fromXml(models::slpMdl()));
    EXPECT_NO_THROW(mdl::MdlDocument::fromXml(models::dnsMdl()));
    EXPECT_NO_THROW(mdl::MdlDocument::fromXml(models::ssdpMdl()));
    EXPECT_NO_THROW(mdl::MdlDocument::fromXml(models::httpMdl()));
}

TEST(Models, CaseNamesAreDistinct) {
    std::set<std::string> names;
    for (const Case c : models::kAllCases) {
        EXPECT_TRUE(names.insert(models::caseName(c)).second);
    }
}

TEST(Models, HttpServerAutomatonUsesRequestedPort) {
    const std::string xml = models::httpAutomaton(Role::Server, 9999);
    EXPECT_NE(xml.find("port=\"9999\""), std::string::npos);
    const std::string client = models::httpAutomaton(Role::Client);
    EXPECT_NE(client.find("port=\"80\""), std::string::npos);
}

TEST(Models, BridgeHostParameterisesLocation) {
    const auto spec = models::forCase(Case::UpnpToSlp, "192.168.1.50", 8444);
    EXPECT_NE(spec.bridgeXml.find("http://192.168.1.50:8444/desc.xml"), std::string::npos);
}

}  // namespace
}  // namespace starlink::bridge
