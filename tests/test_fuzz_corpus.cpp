// Corpus replay: every committed fuzz seed through its fuzz target, plus a
// bounded deterministic mutation sweep around each seed. This runs as a
// plain ctest in EVERY configuration -- including the CI sanitizer jobs --
// so the fuzz invariants (differential codec identity, coded-error-only
// loaders, taxonomy-complete session aborts) are exercised without a
// fuzzing toolchain. A violated invariant abort()s, which gtest reports as
// a crashed test; the seed file named on stderr is the reproducer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/targets.hpp"

namespace starlink::fuzz {
namespace {

std::vector<std::string> corpusFiles(const std::string& dir) {
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

using Target = int (*)(const std::uint8_t*, std::size_t);

/// Replays every seed, then `rounds` deterministic mutations per seed.
void replay(const std::string& dir, Target target, long rounds) {
    const auto files = corpusFiles(dir);
    ASSERT_FALSE(files.empty()) << "empty corpus: " << dir;
    for (const auto& file : files) {
        SCOPED_TRACE(file);
        const auto seed = loadCorpusInput(file);
        target(seed.data(), seed.size());
        // Fixed rng seed: the sweep explores the same neighbourhood every
        // run, so a failure here is reproducible bit-for-bit.
        std::uint64_t rng = 0x5eed5eedULL;
        for (long round = 0; round < rounds; ++round) {
            const auto mutated = mutate(seed, rng);
            target(mutated.data(), mutated.size());
        }
    }
}

TEST(FuzzCorpus, CodecSeedsAndMutations) {
    replay(std::string(STARLINK_FUZZ_CORPUS_DIR) + "/codec", fuzzCodecInput, 200);
}

TEST(FuzzCorpus, ModelSeedsAndMutations) {
    replay(std::string(STARLINK_FUZZ_CORPUS_DIR) + "/model", fuzzModelInput, 100);
}

TEST(FuzzCorpus, SessionSeedsAndMutations) {
    // Each session input deploys a fresh simulated bridge; keep the sweep
    // shallow so the suite stays fast.
    replay(std::string(STARLINK_FUZZ_CORPUS_DIR) + "/session", fuzzSessionInput, 20);
}

TEST(FuzzCorpus, ShippedModelsAreCleanThroughTheModelTarget) {
    // The real model fleet must satisfy the same loader contract as fuzz
    // garbage: load fine or reject coded.
    for (const auto& file : corpusFiles(STARLINK_MODELS_DIR)) {
        SCOPED_TRACE(file);
        const auto bytes = loadCorpusInput(file);  // .xml -> raw passthrough
        fuzzModelInput(bytes.data(), bytes.size());
    }
}

TEST(FuzzCorpus, BadModelFleetStaysCodedThroughTheModelTarget) {
    // tests/models_bad holds deliberately defective models; each must come
    // back as lint diagnostics / coded throws, never an uncoded escape.
    for (const auto& file : corpusFiles(STARLINK_MODELS_BAD_DIR)) {
        SCOPED_TRACE(file);
        const auto bytes = loadCorpusInput(file);
        fuzzModelInput(bytes.data(), bytes.size());
    }
}

}  // namespace
}  // namespace starlink::fuzz
