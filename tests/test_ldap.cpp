// Tests for the SLP <-> LDAP extension: codec, directory agents, and the
// rich-translation claim of paper section III-A -- attribute-based requests
// survive the bridge in both directions, while a greatest-common-divisor
// bridge (predicate dropped) returns the wrong service.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/mdl/codec.hpp"
#include "protocols/ldap/ldap_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "sim_fixture.hpp"

namespace starlink::ldap {
namespace {

using testing::SimTest;

// --- codec ---------------------------------------------------------------------

TEST(LdapCodec, RequestRoundTrip) {
    SearchRequest request;
    request.messageId = 321;
    request.serviceClass = "service:printer";
    request.filter = "(color=true)";
    const auto decoded = decodeRequest(encode(request));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->messageId, 321);
    EXPECT_EQ(decoded->serviceClass, "service:printer");
    EXPECT_EQ(decoded->filter, "(color=true)");
    EXPECT_EQ(decoded->baseDn, "dc=services,dc=local");
}

TEST(LdapCodec, ResultRoundTrip) {
    SearchResult result;
    result.messageId = 11;
    result.dn = "cn=p1,dc=services,dc=local";
    result.url = "service:printer://10.0.0.3:515/q";
    const auto decoded = decodeResult(encode(result));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->messageId, 11);
    EXPECT_EQ(decoded->resultCode, 0);
    EXPECT_EQ(decoded->url, result.url);
}

TEST(LdapCodec, CrossAndCorruptRejected) {
    EXPECT_FALSE(decodeResult(encode(SearchRequest{})));
    EXPECT_FALSE(decodeRequest(encode(SearchResult{})));
    EXPECT_FALSE(decodeRequest({}));
    Bytes truncated = encode(SearchRequest{});
    truncated.pop_back();
    EXPECT_FALSE(decodeRequest(truncated));
}

TEST(LdapCodec, FilterEvaluation) {
    const std::map<std::string, std::string> attributes{{"color", "true"}, {"dpi", "600"}};
    EXPECT_TRUE(filterMatches("", attributes));
    EXPECT_TRUE(filterMatches("(color=true)", attributes));
    EXPECT_TRUE(filterMatches(" ( dpi = 600 ) ", attributes));
    EXPECT_FALSE(filterMatches("(color=false)", attributes));
    EXPECT_FALSE(filterMatches("(missing=x)", attributes));
    EXPECT_FALSE(filterMatches("garbage", attributes));
}

// --- MDL over the legacy wire format ----------------------------------------------

TEST(LdapMdl, ParsesAndComposesLegacyMessages) {
    const auto codec = mdl::MessageCodec::fromXml(bridge::models::ldapMdl());

    SearchRequest request;
    request.messageId = 5;
    request.serviceClass = "service:printer";
    request.filter = "(color=true)";
    const auto parsed = codec->parse(encode(request));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->type(), "LDAP_SearchRequest");
    EXPECT_EQ(parsed->value("Filter")->asString(), "(color=true)");
    EXPECT_EQ(codec->compose(*parsed), encode(request));

    AbstractMessage reply("LDAP_SearchResult");
    reply.setValue("MessageID", Value::ofInt(5), "Integer");
    reply.setValue("URL", Value::ofString("service:printer://10.0.0.2:515/q"));
    const auto decoded = decodeResult(codec->compose(reply));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->messageId, 5);
    EXPECT_EQ(decoded->resultCode, 0);
}

// --- agents -------------------------------------------------------------------------

class LdapAgentsTest : public SimTest {
protected:
    DirectoryServer::Config fastDirectory() {
        DirectoryServer::Config config;
        config.responseDelayBase = net::ms(5);
        config.responseDelayJitter = net::ms(1);
        return config;
    }
};

TEST_F(LdapAgentsTest, DirectoryAnswersFilteredSearch) {
    DirectoryServer directory(network, fastDirectory());
    directory.addEntry({"cn=mono,dc=services,dc=local", "service:printer",
                        "service:printer://10.0.0.3:515/mono", {{"color", "false"}}});
    directory.addEntry({"cn=color,dc=services,dc=local", "service:printer",
                        "service:printer://10.0.0.3:515/color", {{"color", "true"}}});
    DirectoryClient client(network, "10.0.0.1");

    std::optional<DirectoryClient::Result> outcome;
    client.search("10.0.0.3", kPort, "service:printer", "(color=true)",
                  [&outcome](const DirectoryClient::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    ASSERT_TRUE(outcome->success);
    EXPECT_EQ(outcome->url, "service:printer://10.0.0.3:515/color");
    EXPECT_EQ(directory.searchesServed(), 1u);
}

TEST_F(LdapAgentsTest, NoMatchYieldsNoSuchObject) {
    DirectoryServer directory(network, fastDirectory());
    directory.addEntry({"cn=p,dc=services,dc=local", "service:printer", "url", {}});
    DirectoryClient client(network, "10.0.0.1");
    std::optional<DirectoryClient::Result> outcome;
    client.search("10.0.0.3", kPort, "service:scanner", "",
                  [&outcome](const DirectoryClient::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    EXPECT_FALSE(outcome->success);
}

TEST_F(LdapAgentsTest, ConnectionRefusedReported) {
    DirectoryClient client(network, "10.0.0.1");
    std::optional<DirectoryClient::Result> outcome;
    client.search("10.0.0.200", kPort, "service:printer", "",
                  [&outcome](const DirectoryClient::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    EXPECT_FALSE(outcome->success);
}

// --- rich translation end to end ------------------------------------------------------

class RichTranslationTest : public SimTest {
protected:
    bridge::Starlink starlink{network};

    DirectoryServer::Config fastDirectory() {
        DirectoryServer::Config config;
        config.responseDelayBase = net::ms(5);
        config.responseDelayJitter = net::ms(1);
        return config;
    }

    void populate(DirectoryServer& directory) {
        directory.addEntry({"cn=mono,dc=services,dc=local", "service:printer",
                            "service:printer://10.0.0.3:515/mono", {{"color", "false"}}});
        directory.addEntry({"cn=color,dc=services,dc=local", "service:printer",
                            "service:printer://10.0.0.3:515/color", {{"color", "true"}}});
    }
};

TEST_F(RichTranslationTest, SlpPredicateReachesLdapDirectory) {
    starlink.deploy(bridge::models::slpToLdap("10.0.0.3"), "10.0.0.9");
    DirectoryServer directory(network, fastDirectory());
    populate(directory);

    // SLP SrvRqst carries an attribute predicate; a slp::UserAgent has no
    // predicate parameter, so drive the codec directly.
    auto socket = network.openUdp("10.0.0.1");
    std::optional<slp::SrvReply> reply;
    socket->onDatagram([&reply](const Bytes& payload, const net::Address&) {
        reply = slp::decodeReply(payload);
    });
    slp::SrvRequest request;
    request.xid = 900;
    request.serviceType = "service:printer";
    request.predicate = "(color=true)";
    socket->sendTo(net::Address{slp::kGroup, slp::kPort}, slp::encode(request));
    run();

    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->xid, 900);
    EXPECT_EQ(reply->url, "service:printer://10.0.0.3:515/color");  // predicate honoured
}

TEST_F(RichTranslationTest, GcdStyleBridgeLosesThePredicate) {
    // The same lookup through the subset-intermediary-style bridge: the
    // predicate is dropped, and the directory returns its FIRST printer --
    // the wrong one. This is exactly the restriction the paper ascribes to
    // ESB/INDISS-style common intermediaries.
    starlink.deploy(bridge::models::slpToLdapWithoutPredicate("10.0.0.3"), "10.0.0.9");
    DirectoryServer directory(network, fastDirectory());
    populate(directory);

    auto socket = network.openUdp("10.0.0.1");
    std::optional<slp::SrvReply> reply;
    socket->onDatagram([&reply](const Bytes& payload, const net::Address&) {
        reply = slp::decodeReply(payload);
    });
    slp::SrvRequest request;
    request.xid = 901;
    request.serviceType = "service:printer";
    request.predicate = "(color=true)";
    socket->sendTo(net::Address{slp::kGroup, slp::kPort}, slp::encode(request));
    run();

    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->url, "service:printer://10.0.0.3:515/mono");  // wrong service
}

TEST_F(RichTranslationTest, LdapFilterReachesSlpService) {
    starlink.deploy(bridge::models::ldapToSlp(), "10.0.0.9");

    // Two SLP services; only one carries the requested attribute.
    slp::ServiceAgent::Config mono;
    mono.host = "10.0.0.2";
    mono.url = "service:printer://10.0.0.2:515/mono";
    mono.attributes = {{"color", "false"}};
    mono.responseDelayBase = net::ms(5);
    mono.responseDelayJitter = net::ms(1);
    slp::ServiceAgent monoService(network, mono);

    slp::ServiceAgent::Config color = mono;
    color.host = "10.0.0.4";
    color.url = "service:printer://10.0.0.4:515/color";
    color.attributes = {{"color", "true"}};
    color.seed = 8;
    slp::ServiceAgent colorService(network, color);

    DirectoryClient client(network, "10.0.0.1");
    std::optional<DirectoryClient::Result> outcome;
    client.search("10.0.0.9", kPort, "service:printer", "(color=true)",
                  [&outcome](const DirectoryClient::Result& result) { outcome = result; });
    run();

    ASSERT_TRUE(outcome);
    ASSERT_TRUE(outcome->success);
    EXPECT_EQ(outcome->url, "service:printer://10.0.0.4:515/color");
    EXPECT_EQ(colorService.requestsServed(), 1u);
    EXPECT_EQ(monoService.requestsServed(), 0u);  // predicate filtered it out
}

TEST_F(RichTranslationTest, LdapBridgeSpecsValidate) {
    EXPECT_NO_THROW(starlink.deploy(bridge::models::slpToLdap("10.0.0.3"), "10.0.2.1"));
    EXPECT_NO_THROW(starlink.deploy(bridge::models::ldapToSlp(), "10.0.2.2"));
}

}  // namespace
}  // namespace starlink::ldap
