// Abort observability across the sharded driver: shed (engine.overload) and
// idle-evicted (engine.idle-timeout) sessions must be first-class citizens of
// every telemetry surface -- a terminal session span, the per-code abort
// counter family -- and the multi-shard span merge must stay structurally
// sound (unique ids, no dangling parents, legs still tiling the translation
// window) with those synthetic/aborted sessions mixed in.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/engine/shard_engine.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/span.hpp"
#include "core/telemetry/trace_export.hpp"

namespace starlink {
namespace {

const telemetry::SpanAttr* attrOf(const telemetry::Span& span, const std::string& key) {
    for (const auto& attr : span.attrs) {
        if (attr.key == key) return &attr;
    }
    return nullptr;
}

/// Sum of the per-code abort counter over every bridge direction label.
std::uint64_t abortedTotal(const telemetry::MetricsRegistry& merged, errc::ErrorCode code) {
    std::uint64_t total = 0;
    for (const auto c : bridge::models::kAllCases) {
        // Shed accounting labels with models::caseSlug; in-engine aborts label
        // with the merged-automaton name -- identical for forCase bridges, so
        // one query covers both paths.
        total += const_cast<telemetry::MetricsRegistry&>(merged)
                     .counter(telemetry::labeled(
                         "starlink_engine_sessions_aborted_total",
                         {{"bridge", bridge::models::caseSlug(c)},
                          {"code", std::to_string(errc::to_error_code(code))},
                          {"cause", errc::to_string(code)}}))
                     .value();
    }
    return total;
}

struct RunSummary {
    std::size_t shed = 0;
    std::size_t idleEvicted = 0;
    std::uint64_t shedCounter = 0;
    std::uint64_t idleCounter = 0;
    std::vector<telemetry::Span> spans;
    /// Per job key, the outcome codes in order -- the shard-count
    /// determinism handle.
    std::map<std::string, std::vector<int>> codesByKey;
};

RunSummary runWorkload(int shards, std::size_t maxPending, bool chaos, int idleTimeoutMs,
                       int jobs) {
    telemetry::setEnabled(true);
    engine::ShardEngineOptions options;
    options.shards = shards;
    options.baseSeed = 77;
    options.maxPendingPerShard = maxPending;
    options.engine.spanCapacity = 16384;
    if (idleTimeoutMs > 0) options.engine.idleTimeout = net::ms(idleTimeoutMs);
    if (chaos) {
        options.chaos = true;
        options.chaosLoss = 0.25;
        options.engine.receiveTimeout = net::ms(7000);
        options.engine.maxRetransmits = 5;
        options.engine.retransmitBackoff = 1.5;
        options.engine.retransmitJitter = net::ms(100);
        options.engine.sessionTimeout = net::ms(30000);
    }
    engine::ShardEngine shardEngine(options);
    for (int i = 0; i < jobs; ++i) {
        engine::SessionJob job;
        job.caseId = bridge::models::kAllCases[static_cast<std::size_t>(i) % 6];
        job.key = "abortobs-" + std::to_string(i);
        shardEngine.submit(job);
    }
    RunSummary summary;
    for (const auto& result : shardEngine.run()) {
        if (result.shed) ++summary.shed;
        auto& codes = summary.codesByKey[result.job.key];
        for (const auto& outcome : result.outcomes) {
            codes.push_back(errc::to_error_code(outcome.code));
            if (outcome.code == errc::ErrorCode::EngineIdleTimeout) ++summary.idleEvicted;
        }
    }
    telemetry::MetricsRegistry merged;
    shardEngine.mergeMetricsInto(merged);
    summary.shedCounter = abortedTotal(merged, errc::ErrorCode::EngineOverload);
    summary.idleCounter = abortedTotal(merged, errc::ErrorCode::EngineIdleTimeout);
    summary.spans = shardEngine.spans();
    telemetry::setEnabled(false);
    return summary;
}

TEST(ShedObservability, ShedSessionsGetSpanAndAbortCount) {
    for (const int shards : {1, 8}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        const RunSummary run = runWorkload(shards, /*maxPending=*/3, /*chaos=*/false,
                                           /*idleTimeoutMs=*/0, /*jobs=*/60);
        ASSERT_GT(run.shed, 0u);

        // The per-code abort counter sees every shed job, exactly once.
        EXPECT_EQ(run.shedCounter, run.shed);

        // Every shed job has a terminal session span with the overload code,
        // carrying a unique merged id and session ordinal.
        std::size_t shedSpans = 0;
        std::set<std::uint64_t> shedSessions;
        for (const auto& span : run.spans) {
            const auto* result = attrOf(span, "result");
            if (span.name != "session" || result == nullptr || result->value != "shed") continue;
            ++shedSpans;
            EXPECT_NE(span.id, 0u);
            EXPECT_EQ(span.parent, 0u);
            EXPECT_TRUE(shedSessions.insert(span.session).second)
                << "shed span session ordinal collides";
            const auto* code = attrOf(span, "error_code");
            ASSERT_NE(code, nullptr);
            EXPECT_EQ(code->value,
                      std::to_string(errc::to_error_code(errc::ErrorCode::EngineOverload)));
        }
        EXPECT_EQ(shedSpans, run.shed);
        // Synthetic ordinals must not collide with engine sessions either.
        for (const auto& span : run.spans) {
            if (span.name != "session") continue;
            const auto* result = attrOf(span, "result");
            if (result != nullptr && result->value == "shed") continue;
            EXPECT_FALSE(shedSessions.contains(span.session));
        }
    }
}

TEST(IdleEvictionObservability, EvictionsCountedAndShardCountInvariant) {
    const RunSummary one = runWorkload(1, 0, /*chaos=*/true, /*idleTimeoutMs=*/3000,
                                       /*jobs=*/24);
    const RunSummary eight = runWorkload(8, 0, /*chaos=*/true, /*idleTimeoutMs=*/3000,
                                         /*jobs=*/24);

    // Chaos at this loss level must actually exercise the idle evictor.
    ASSERT_GT(one.idleEvicted, 0u);

    // Determinism contract: per-key outcome codes are shard-count invariant,
    // so the -611 population is identical at 1 and 8 shards.
    EXPECT_EQ(one.codesByKey, eight.codesByKey);
    EXPECT_EQ(one.idleEvicted, eight.idleEvicted);

    // The abort counter family agrees with the outcome records in both runs.
    EXPECT_EQ(one.idleCounter, one.idleEvicted);
    EXPECT_EQ(eight.idleCounter, eight.idleEvicted);

    // Every idle-evicted session left a terminal span with the -611 code.
    for (const RunSummary* run : {&one, &eight}) {
        std::size_t evictedSpans = 0;
        for (const auto& span : run->spans) {
            if (span.name != "session") continue;
            const auto* code = attrOf(span, "error_code");
            if (code != nullptr &&
                code->value ==
                    std::to_string(errc::to_error_code(errc::ErrorCode::EngineIdleTimeout))) {
                ++evictedSpans;
            }
        }
        EXPECT_EQ(evictedSpans, run->idleEvicted);
    }
}

// -- satellite 3: Chrome trace export over the multi-shard merge -------------

TEST(MergedTraceExport, MultiShardMergeStaysStructurallySound) {
    const RunSummary run = runWorkload(8, /*maxPending=*/2, /*chaos=*/true,
                                       /*idleTimeoutMs=*/3000, /*jobs=*/40);
    ASSERT_FALSE(run.spans.empty());
    ASSERT_GT(run.shed, 0u);  // the merge really contains synthetic spans

    // Unique ids, no dangling parents, parents within the same session.
    std::set<std::uint64_t> ids;
    std::map<std::uint64_t, const telemetry::Span*> byId;
    for (const auto& span : run.spans) {
        ASSERT_NE(span.id, 0u);
        ASSERT_TRUE(ids.insert(span.id).second) << "duplicate span id after merge";
        byId[span.id] = &span;
    }
    for (const auto& span : run.spans) {
        if (span.parent == 0) continue;
        const auto parent = byId.find(span.parent);
        ASSERT_NE(parent, byId.end()) << "dangling parent id " << span.parent;
        EXPECT_EQ(parent->second->session, span.session)
            << "parent and child in different sessions";
    }

    // Completed sessions still tile their translation window after the merge:
    // translate + receive-wait legs up to the client reply (the session
    // span's start plus its translation_us attr) sum to exactly that window.
    std::map<std::uint64_t, std::vector<const telemetry::Span*>> yardsBySession;
    std::map<std::uint64_t, const telemetry::Span*> rootBySession;
    for (const auto& span : run.spans) {
        if (span.name == "session") rootBySession[span.session] = &span;
        if (span.name == "translate" || span.name == "receive-wait") {
            yardsBySession[span.session].push_back(&span);
        }
    }
    std::size_t tiledSessions = 0;
    for (const auto& [session, root] : rootBySession) {
        const auto* result = attrOf(*root, "result");
        const auto* translationUs = attrOf(*root, "translation_us");
        if (result == nullptr || result->value != "completed") continue;
        ASSERT_NE(translationUs, nullptr);
        const std::int64_t window = std::stoll(translationUs->value);
        const net::TimePoint replyAt = root->start + net::Duration{window};
        std::int64_t covered = 0;
        for (const auto* span : yardsBySession[session]) {
            if (span->end <= replyAt) covered += (span->end - span->start).count();
        }
        EXPECT_EQ(covered, window) << "session " << session;
        ++tiledSessions;
    }
    EXPECT_GT(tiledSessions, 0u);

    // The Chrome trace export renders the merged snapshot: one complete event
    // per span, and it parses as the expected envelope.
    const std::string json = telemetry::toChromeTrace(run.spans, "starlink-shards");
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    std::size_t complete = 0;
    for (std::size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
         pos = json.find("\"ph\":\"X\"", pos + 1)) {
        ++complete;
    }
    EXPECT_EQ(complete, run.spans.size());
}

// -- satellite 1: residency gauges exported per bridge -----------------------

TEST(ResidencyGauges, ExportedAfterSessionBoundaries) {
    telemetry::setEnabled(true);
    engine::ShardEngineOptions options;
    options.shards = 1;
    options.baseSeed = 5;
    options.engine.spanCapacity = 8;            // tiny: forces span-ring drops
    options.engine.sessionHistoryCapacity = 2;  // tiny: forces history eviction
    options.engine.recorderSessionBytes = 4096;
    engine::ShardEngine shardEngine(options);
    for (int i = 0; i < 12; ++i) {
        engine::SessionJob job;
        job.caseId = bridge::models::Case::SlpToBonjour;  // pure-udp direction
        job.key = "gauge-" + std::to_string(i);
        shardEngine.submit(job);
    }
    shardEngine.run();
    telemetry::MetricsRegistry merged;
    shardEngine.mergeMetricsInto(merged);
    const std::string slug = bridge::models::caseSlug(bridge::models::Case::SlpToBonjour);
    auto gauge = [&](const std::string& name) {
        return merged.gauge(telemetry::labeled(name, {{"bridge", slug}})).value();
    };
    EXPECT_GT(gauge("starlink_telemetry_spans_dropped"), 0);
    EXPECT_GT(gauge("starlink_engine_session_history_evicted"), 0);
    EXPECT_GT(gauge("starlink_mdl_rx_arena_reserved_bytes"), 0);
    EXPECT_GT(gauge("starlink_mdl_rx_arena_chunks"), 0);
    EXPECT_GT(gauge("starlink_telemetry_recorder_reserved_bytes"), 0);
    const std::string exposition = merged.renderPrometheus();
    EXPECT_NE(exposition.find("starlink_telemetry_spans_dropped"), std::string::npos);
    EXPECT_NE(exposition.find("starlink_mdl_rx_arena_reserved_bytes"), std::string::npos);
    telemetry::setEnabled(false);
}

}  // namespace
}  // namespace starlink
