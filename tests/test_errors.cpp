// Taxonomy tests: the structured error catalogue of src/core/error/.
//
// The catalogue is load-bearing in three places -- exceptions carry codes
// across layer boundaries, the engine records per-code abort metrics, and
// the linter aliases its rule ids into the same space -- so these tests pin
// the properties everything relies on: every code round-trips through
// int/name/catalogue lookups, the per-layer ranges do not overlap, every
// FailureCause and every lint rule id maps to exactly one code, and the
// JSON envelope starlinkd prints has a stable shape.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

#include "common/error.hpp"
#include "core/engine/automata_engine.hpp"
#include "core/error/error_code.hpp"
#include "core/lint/diagnostic.hpp"

namespace starlink::errc {
namespace {

TEST(ErrorCatalogue, HasEveryLayerAndOkFirst) {
    const auto& codes = allCodes();
    ASSERT_FALSE(codes.empty());
    EXPECT_EQ(codes.front(), ErrorCode::Ok);

    std::set<Layer> layers;
    for (const ErrorCode code : codes) layers.insert(layerOf(code));
    // Ok maps to Common; every named layer must own at least one code.
    for (const Layer layer : {Layer::Common, Layer::Xml, Layer::Mdl, Layer::Automata,
                              Layer::Merge, Layer::Bridge, Layer::Engine, Layer::Net,
                              Layer::Lint}) {
        EXPECT_TRUE(layers.count(layer)) << "no codes in layer " << layerName(layer);
    }
}

TEST(ErrorCatalogue, EveryCodeRoundTrips) {
    std::set<int> numeric;
    std::set<std::string> names;
    for (const ErrorCode code : allCodes()) {
        const int value = to_error_code(code);
        const std::string name = to_string(code);

        // Unique numbers, unique names.
        EXPECT_TRUE(numeric.insert(value).second) << "duplicate code " << value;
        EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;

        // int -> code and name -> code both recover the original.
        const auto byInt = fromInt(value);
        ASSERT_TRUE(byInt.has_value()) << name;
        EXPECT_EQ(*byInt, code);
        const auto byName = fromName(name);
        ASSERT_TRUE(byName.has_value()) << name;
        EXPECT_EQ(*byName, code);

        // Every code documents itself.
        EXPECT_FALSE(std::string(remediation(code)).empty()) << name;
    }
    EXPECT_FALSE(fromInt(-99999).has_value());
    EXPECT_FALSE(fromName("no.such.code").has_value());
}

TEST(ErrorCatalogue, LayerRangesDoNotOverlap) {
    // Each layer owns one block of 100 negative codes (Common additionally
    // owns 0). A code numerically inside a block must report that block's
    // layer -- this is what keeps "subtract to find the layer" tooling valid.
    const std::map<Layer, std::pair<int, int>> ranges = {
        {Layer::Common, {-99, 0}},     {Layer::Xml, {-199, -100}},
        {Layer::Mdl, {-299, -200}},    {Layer::Automata, {-399, -300}},
        {Layer::Merge, {-499, -400}},  {Layer::Bridge, {-599, -500}},
        {Layer::Engine, {-699, -600}}, {Layer::Net, {-799, -700}},
        {Layer::Lint, {-899, -800}},
    };
    for (const ErrorCode code : allCodes()) {
        const auto range = ranges.at(layerOf(code));
        const int value = to_error_code(code);
        EXPECT_GE(value, range.first) << to_string(code);
        EXPECT_LE(value, range.second) << to_string(code);
    }
}

TEST(ErrorCatalogue, NamesCarryTheLayerPrefix) {
    // Dotted names start with a prefix owned by the code's layer. Two layers
    // expose sub-families: Mdl covers both the document loader ("mdl.") and
    // the runtime codecs ("codec."), and the Automata layer names its codes
    // after the singular artefact ("automaton.").
    const std::map<Layer, std::vector<std::string>> prefixes = {
        {Layer::Common, {"common."}}, {Layer::Xml, {"xml."}},
        {Layer::Mdl, {"mdl.", "codec."}}, {Layer::Automata, {"automaton."}},
        {Layer::Merge, {"merge."}},   {Layer::Bridge, {"bridge."}},
        {Layer::Engine, {"engine."}}, {Layer::Net, {"net."}},
        {Layer::Lint, {"lint."}},
    };
    for (const ErrorCode code : allCodes()) {
        if (code == ErrorCode::Ok) continue;  // "ok" has no layer prefix
        const std::string name = to_string(code);
        bool matched = false;
        for (const auto& prefix : prefixes.at(layerOf(code))) {
            matched = matched || name.rfind(prefix, 0) == 0;
        }
        EXPECT_TRUE(matched) << name << " lacks a prefix of layer "
                             << layerName(layerOf(code));
    }
}

TEST(ErrorCatalogue, ExceptionMappingHonoursCodes) {
    // The coded constructors surface their exact code; the legacy one-arg
    // constructors keep their class default; anything outside the hierarchy
    // is the taxonomy escape marker.
    EXPECT_EQ(to_error_code(SpecError("x")), ErrorCode::SpecViolation);
    EXPECT_EQ(to_error_code(SpecError(ErrorCode::CodecBitRange, "x")), ErrorCode::CodecBitRange);
    EXPECT_EQ(to_error_code(ProtocolError("x")), ErrorCode::ProtocolEncode);
    EXPECT_EQ(to_error_code(NetError("x")), ErrorCode::NetMisuse);
    EXPECT_EQ(to_error_code(PeerClosedError("x")), ErrorCode::NetPeerClosed);
    EXPECT_EQ(to_error_code(ConnectRefusedError("x")), ErrorCode::NetConnectRefused);
    EXPECT_EQ(starlink::to_error_code(std::runtime_error("raw")), ErrorCode::Unclassified);
}

TEST(ErrorCatalogue, OsBackendNetCodesRoundTrip) {
    // The real-transport backend's codes (src/core/net/os_network.cpp) are
    // first-class taxonomy members: stable names, net layer, remediation
    // text, numeric round-trips. A bind/connect/fd failure on real sockets
    // must never surface as Unclassified.
    const std::vector<std::pair<ErrorCode, std::string>> codes = {
        {ErrorCode::NetBindFailed, "net.bind-failed"},
        {ErrorCode::NetFdExhausted, "net.fd-exhausted"},
        {ErrorCode::NetIo, "net.io"},
    };
    for (const auto& [code, name] : codes) {
        EXPECT_EQ(to_string(code), name);
        EXPECT_EQ(layerOf(code), Layer::Net);
        EXPECT_EQ(fromInt(to_error_code(code)), code);
        EXPECT_EQ(fromName(name), code);
        EXPECT_NE(std::string(remediation(code)), "");
        EXPECT_EQ(to_error_code(NetError(code, "x")), code);
    }
}

TEST(ErrorCatalogue, EveryFailureCauseMapsToOneCode) {
    using engine::FailureCause;
    EXPECT_EQ(engine::to_error_code(FailureCause::None), ErrorCode::Ok);
    EXPECT_EQ(engine::to_error_code(FailureCause::Timeout), ErrorCode::EngineSessionTimeout);
    EXPECT_EQ(engine::to_error_code(FailureCause::ConnectRefused),
              ErrorCode::EngineConnectRefused);
    EXPECT_EQ(engine::to_error_code(FailureCause::PeerClosed), ErrorCode::EnginePeerClosed);
    EXPECT_EQ(engine::to_error_code(FailureCause::DecodeError), ErrorCode::EngineDecode);
}

TEST(ErrorCatalogue, EveryLintRuleAliasesOneCode) {
    // The documented rule ids of docs/LINT.md. A new rule must be added here
    // AND to codeForRule -- an Unclassified alias is a taxonomy escape.
    const std::vector<std::string> rules = {
        "xml.parse",
        "lint.unknown-kind",
        "mdl.invalid",
        "mdl.marshaller.unknown",
        "mdl.plan",
        "mdl.rule.shadowed",
        "automaton.invalid",
        "automaton.message.unknown",
        "automaton.receive.ambiguous",
        "automaton.transition.dead",
        "automaton.state.dead-end",
        "bridge.invalid",
        "bridge.closure.missing",
        "bridge.state.unknown",
        "bridge.ref.message-not-stored",
        "bridge.message.unknown",
        "bridge.field.unknown",
        "bridge.transform.unknown",
        "bridge.transform.mismatch",
        "bridge.equivalence.unknown",
        "bridge.equivalence.uncovered",
        "bridge.delta.missing",
    };
    std::set<ErrorCode> seen;
    for (const auto& rule : rules) {
        const ErrorCode code = lint::codeForRule(rule);
        EXPECT_NE(code, ErrorCode::Unclassified) << rule;
        EXPECT_TRUE(seen.insert(code).second) << rule << " shares a code with another rule";
    }
    EXPECT_EQ(lint::codeForRule("made.up.rule"), ErrorCode::Unclassified);
}

TEST(ErrorCatalogue, EnvelopeJsonShape) {
    Envelope envelope;
    envelope.code = ErrorCode::EngineDecode;
    envelope.message = "bad \"wire\" bytes";
    envelope.traceId = "starlinkd/run";
    const std::string json = toJson(envelope);
    EXPECT_NE(json.find("\"error\":{"), std::string::npos) << json;
    EXPECT_NE(json.find("\"code\":-604"), std::string::npos) << json;
    EXPECT_NE(json.find("\"name\":\"engine.decode\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"layer\":\"engine\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"message\":\"bad \\\"wire\\\" bytes\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"trace_id\":\"starlinkd/run\""), std::string::npos) << json;
}

}  // namespace
}  // namespace starlink::errc
