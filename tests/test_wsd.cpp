// Tests for the WS-Discovery extension and the XML MDL dialect: codec,
// agents, MDL parse/compose over real envelopes, hand-written SLP<->WSD
// bridges end to end, and a SYNTHESIZED SLP->WSD bridge (the ontology covers
// WSD, so the generator handles the xml-dialect protocol unchanged).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/mdl/codec.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/wsd/wsd_agents.hpp"
#include "sim_fixture.hpp"

namespace starlink::wsd {
namespace {

using bridge::models::ProtocolModel;
using bridge::models::Role;
using testing::SimTest;

// --- legacy codec ----------------------------------------------------------------

TEST(WsdCodec, ProbeRoundTrip) {
    Probe probe;
    probe.messageId = "uuid:client-1";
    probe.types = "printer";
    const auto decoded = decodeProbe(encode(probe));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->messageId, "uuid:client-1");
    EXPECT_EQ(decoded->types, "printer");
}

TEST(WsdCodec, ProbeMatchRoundTrip) {
    ProbeMatch match;
    match.messageId = "uuid:target-1";
    match.relatesTo = "uuid:client-1";
    match.types = "printer";
    match.xaddrs = "http://10.0.0.3:5357/printer";
    const auto decoded = decodeProbeMatch(encode(match));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->relatesTo, "uuid:client-1");
    EXPECT_EQ(decoded->xaddrs, "http://10.0.0.3:5357/printer");
}

TEST(WsdCodec, CrossAndGarbageRejected) {
    EXPECT_FALSE(decodeProbeMatch(encode(Probe{"uuid:x", "printer"})));
    EXPECT_FALSE(decodeProbe(encode(ProbeMatch{"a", "b", "c", "http://x"})));
    EXPECT_FALSE(decodeProbe(toBytes("not xml at all")));
    EXPECT_FALSE(decodeProbe(toBytes("<Envelope><Header/></Envelope>")));
}

// --- xml MDL dialect over the legacy wire format -----------------------------------

class WsdMdlTest : public ::testing::Test {
protected:
    std::shared_ptr<mdl::MessageCodec> codec =
        mdl::MessageCodec::fromXml(bridge::models::wsdMdl());
};

TEST_F(WsdMdlTest, ParsesLegacyProbe) {
    const auto message = codec->parse(encode(Probe{"uuid:client-9", "printer"}));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "WSD_Probe");
    EXPECT_EQ(message->value("MessageID")->asString(), "uuid:client-9");
    EXPECT_EQ(message->value("Types")->asString(), "printer");
}

TEST_F(WsdMdlTest, ParsesLegacyProbeMatch) {
    const auto message = codec->parse(
        encode(ProbeMatch{"uuid:t", "uuid:client-9", "printer", "http://10.0.0.3:5357/p"}));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "WSD_ProbeMatch");
    EXPECT_EQ(message->value("RelatesTo")->asString(), "uuid:client-9");
    EXPECT_EQ(message->value("XAddrs")->asString(), "http://10.0.0.3:5357/p");
}

TEST_F(WsdMdlTest, ComposedProbeDecodableByLegacyStack) {
    AbstractMessage message("WSD_Probe");
    message.setValue("MessageID", Value::ofString("uuid:bridge-1"));
    message.setValue("Types", Value::ofString("printer"));
    const auto decoded = decodeProbe(codec->compose(message));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->messageId, "uuid:bridge-1");
    EXPECT_EQ(decoded->types, "printer");
}

TEST_F(WsdMdlTest, ComposedProbeMatchDecodableByLegacyStack) {
    AbstractMessage message("WSD_ProbeMatch");
    message.setValue("MessageID", Value::ofString("uuid:bridge-2"));
    message.setValue("RelatesTo", Value::ofString("uuid:client-7"));
    message.setValue("XAddrs", Value::ofString("http://10.0.0.2:80/x"));
    const auto decoded = decodeProbeMatch(codec->compose(message));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->relatesTo, "uuid:client-7");
    EXPECT_EQ(decoded->xaddrs, "http://10.0.0.2:80/x");
}

TEST_F(WsdMdlTest, MandatoryEnforcedOnBothDirections) {
    // Compose without the mandatory Types.
    AbstractMessage probe("WSD_Probe");
    probe.setValue("MessageID", Value::ofString("uuid:x"));
    EXPECT_THROW(codec->compose(probe), SpecError);
    // Parse of a match without XAddrs fails.
    std::string error;
    EXPECT_FALSE(codec->parse(
        toBytes("<Envelope><Header>"
                "<Action>http://schemas.xmlsoap.org/ws/2005/04/discovery/ProbeMatches</Action>"
                "<MessageID>uuid:m</MessageID><RelatesTo>uuid:c</RelatesTo></Header>"
                "<Body/></Envelope>"),
        &error));
    EXPECT_NE(error.find("XAddrs"), std::string::npos);
}

TEST_F(WsdMdlTest, WrongRootAndNoRuleRejected) {
    std::string error;
    EXPECT_FALSE(codec->parse(toBytes("<Wrong/>"), &error));
    EXPECT_FALSE(codec->parse(
        toBytes("<Envelope><Header><Action>unknown</Action>"
                "<MessageID>uuid:m</MessageID></Header></Envelope>"),
        &error));
    EXPECT_FALSE(codec->parse(toBytes("<<<"), &error));
}

// --- agents --------------------------------------------------------------------------

class WsdAgentsTest : public SimTest {};

TEST_F(WsdAgentsTest, ProbeFindsTarget) {
    Target::Config targetConfig;
    targetConfig.responseDelayBase = net::ms(20);
    Target target(network, targetConfig);
    Client client(network, {});
    std::optional<Client::Result> outcome;
    client.probe("printer", [&outcome](const Client::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    ASSERT_EQ(outcome->xaddrs.size(), 1u);
    EXPECT_EQ(outcome->xaddrs[0], targetConfig.xaddrs);
    EXPECT_EQ(target.probesAnswered(), 1u);
}

TEST_F(WsdAgentsTest, MismatchedTypeTimesOut) {
    Target target(network, {});
    Client::Config config;
    config.timeout = net::ms(200);
    Client client(network, config);
    std::optional<Client::Result> outcome;
    client.probe("scanner", [&outcome](const Client::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    EXPECT_TRUE(outcome->xaddrs.empty());
    EXPECT_EQ(target.probesAnswered(), 0u);
}

// --- bridges end to end -----------------------------------------------------------------

class WsdBridgeTest : public SimTest {
protected:
    bridge::Starlink starlink{network};
};

TEST_F(WsdBridgeTest, SlpClientDiscoversWsdTarget) {
    auto& deployed = starlink.deploy(bridge::models::slpToWsd(), "10.0.0.9");
    Target::Config targetConfig;
    targetConfig.responseDelayBase = net::ms(20);
    Target target(network, targetConfig);
    slp::UserAgent client(network, {});

    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], targetConfig.xaddrs);
    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    EXPECT_TRUE(deployed.engine().sessions()[0].completed);
}

TEST_F(WsdBridgeTest, WsdClientDiscoversSlpService) {
    auto& deployed = starlink.deploy(bridge::models::wsdToSlp(), "10.0.0.9");
    slp::ServiceAgent::Config serviceConfig;
    serviceConfig.responseDelayBase = net::ms(20);
    serviceConfig.responseDelayJitter = net::ms(2);
    slp::ServiceAgent service(network, serviceConfig);
    Client client(network, {});

    std::optional<Client::Result> outcome;
    client.probe("printer", [&outcome](const Client::Result& result) { outcome = result; });
    run();
    ASSERT_TRUE(outcome);
    ASSERT_EQ(outcome->xaddrs.size(), 1u);
    EXPECT_EQ(outcome->xaddrs[0], serviceConfig.url);
    EXPECT_TRUE(deployed.engine().sessions()[0].completed);
}

TEST_F(WsdBridgeTest, SynthesizedSlpToWsdBridgeWorks) {
    // The generator covers the xml-dialect protocol with no special casing:
    // concepts + the MDL's mandatory fields are all it needs.
    std::vector<std::string> report;
    auto& deployed = starlink.deploySynthesized(
        ProtocolModel{bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server)},
        ProtocolModel{bridge::models::wsdMdl(), bridge::models::wsdAutomaton(Role::Client)},
        merge::Ontology::discovery(), "10.0.0.9", {}, &report);
    EXPECT_FALSE(report.empty());

    Target::Config targetConfig;
    targetConfig.responseDelayBase = net::ms(20);
    Target target(network, targetConfig);
    slp::UserAgent client(network, {});
    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], targetConfig.xaddrs);
    EXPECT_TRUE(deployed.engine().sessions()[0].completed);
}

}  // namespace
}  // namespace starlink::wsd
