// Telemetry layer tests: metrics primitives, the span buffer/tracer, the
// capped automata trace, and an end-to-end check that a bridged SLP -> UPnP
// conversation produces a coherent span tree whose legs tile the paper's
// translation-time window (Fig 12(b)) and agree with the engine's counters.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/automata/trace.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/span.hpp"
#include "core/telemetry/trace_export.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "sim_fixture.hpp"

namespace starlink {
namespace {

using testing::SimTest;

// -- metrics primitives -----------------------------------------------------

TEST(Histogram, BucketsObservationsWithLeSemantics) {
    telemetry::Histogram h({1.0, 2.0, 4.0});
    for (const double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);

    // Per-bin storage: (<=1), (<=2), (<=4), +Inf.
    EXPECT_EQ(h.bucketCounts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 106.0);
}

TEST(Histogram, RejectsMalformedBounds) {
    EXPECT_THROW(telemetry::Histogram({}), std::invalid_argument);
    EXPECT_THROW(telemetry::Histogram({1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(telemetry::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, MergeAddsCountsAndRejectsMismatchedBounds) {
    telemetry::Histogram a({10.0, 20.0});
    telemetry::Histogram b({10.0, 20.0});
    a.observe(5.0);
    b.observe(15.0);
    b.observe(50.0);

    a.merge(b);
    EXPECT_EQ(a.bucketCounts(), (std::vector<std::uint64_t>{1, 1, 1}));
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 70.0);

    telemetry::Histogram other({1.0, 2.0});
    EXPECT_THROW(a.merge(other), std::invalid_argument);
}

TEST(MetricsRegistry, RegistrationIsIdempotentAndBoundsAreSticky) {
    auto& registry = telemetry::MetricsRegistry::global();
    auto& c1 = registry.counter("test_registry_counter_total");
    auto& c2 = registry.counter("test_registry_counter_total");
    EXPECT_EQ(&c1, &c2);

    auto& h1 = registry.histogram("test_registry_histogram", {1.0, 2.0});
    auto& h2 = registry.histogram("test_registry_histogram", {1.0, 2.0});
    EXPECT_EQ(&h1, &h2);
    EXPECT_THROW(registry.histogram("test_registry_histogram", {3.0, 4.0}),
                 std::invalid_argument);
}

TEST(MetricsRegistry, PrometheusRenderExpandsHistogramsAndEscapesLabels) {
    auto& registry = telemetry::MetricsRegistry::global();
    registry.counter(telemetry::labeled("test_render_total", {{"kind", "a\"b"}})).add(3);
    auto& h = registry.histogram("test_render_ms", {1.0, 2.0});
    h.observe(0.5);
    h.observe(10.0);

    const std::string text = registry.renderPrometheus(1234567);
    EXPECT_NE(text.find("starlink_virtual_time_us 1234567"), std::string::npos);
    EXPECT_NE(text.find("test_render_total{kind=\"a\\\"b\"} 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE test_render_ms histogram"), std::string::npos);
    // Cumulative le buckets plus the implicit +Inf, then _sum/_count.
    EXPECT_NE(text.find("test_render_ms_bucket{le=\"1\"} 1"), std::string::npos);
    EXPECT_NE(text.find("test_render_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
    EXPECT_NE(text.find("test_render_ms_count 2"), std::string::npos);
}

// -- span buffer + tracer ---------------------------------------------------

TEST(SpanBuffer, OverflowKeepsNewestAndCountsDropped) {
    telemetry::SpanBuffer buffer(3);
    for (int i = 1; i <= 5; ++i) {
        telemetry::Span span;
        span.id = static_cast<telemetry::SpanId>(i);
        span.name = "s" + std::to_string(i);
        buffer.push(std::move(span));
    }
    EXPECT_EQ(buffer.size(), 3u);
    EXPECT_EQ(buffer.dropped(), 2u);

    const auto spans = buffer.snapshot();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].name, "s3");  // oldest retained first
    EXPECT_EQ(spans[2].name, "s5");
}

TEST(SpanBuffer, ZeroCapacityDisablesRecording) {
    telemetry::SpanBuffer buffer(0);
    buffer.push(telemetry::Span{});
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.dropped(), 1u);

    telemetry::SessionTracer tracer(buffer);
    EXPECT_FALSE(tracer.enabled());
    EXPECT_EQ(tracer.beginSession(net::TimePoint{}), 0u);
}

TEST(SessionTracer, BuildsNestedTreeAndForceClosesStragglers) {
    telemetry::SpanBuffer buffer(16);
    telemetry::SessionTracer tracer(buffer);
    const net::TimePoint t0{};

    const auto root = tracer.beginSession(t0);
    ASSERT_NE(root, 0u);
    EXPECT_TRUE(tracer.inSession());
    EXPECT_EQ(tracer.sessionOrdinal(), 1u);

    // parent 0 attaches to the session root; explicit parents nest deeper.
    const auto leg = tracer.begin("leg", t0 + net::ms(1));
    tracer.instant("child", t0 + net::ms(2), /*wallNs=*/777, leg);
    tracer.attr(leg, "k", "v");
    tracer.end(leg, t0 + net::ms(5));

    const auto straggler = tracer.begin("straggler", t0 + net::ms(6));
    (void)straggler;
    tracer.endSession(t0 + net::ms(10));
    EXPECT_FALSE(tracer.inSession());

    std::map<std::string, telemetry::Span> byName;
    for (const auto& span : buffer.snapshot()) byName[span.name] = span;
    ASSERT_EQ(byName.size(), 4u);
    EXPECT_EQ(byName["leg"].parent, root);
    EXPECT_EQ(byName["child"].parent, byName["leg"].id);
    EXPECT_EQ(byName["child"].wallNs, 777u);
    ASSERT_NE(byName["leg"].attr("k"), nullptr);
    EXPECT_EQ(*byName["leg"].attr("k"), "v");
    // The straggler was clamped to the session end, not lost.
    EXPECT_EQ(byName["straggler"].end, t0 + net::ms(10));
    EXPECT_EQ(byName["session"].session, 1u);
    for (const auto& [name, span] : byName) EXPECT_EQ(span.session, 1u) << name;
}

// -- capped automata trace --------------------------------------------------

TEST(AutomataTrace, RingEvictsOldestAtCapacity) {
    automata::Trace trace(3);
    for (int i = 0; i < 5; ++i) {
        automata::TraceEvent event;
        event.from = "s" + std::to_string(i);
        trace.record(std::move(event));
    }
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.dropped(), 2u);
    EXPECT_EQ(trace.events().front().from, "s2");

    trace.setCapacity(1);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.events().front().from, "s4");
    EXPECT_EQ(trace.dropped(), 4u);
}

// -- minimal JSON reader for the Chrome trace round-trip --------------------
//
// Just enough JSON to re-read what trace_export writes: validates syntax and
// flattens each object of "traceEvents" into its string/number fields.

class MiniJson {
public:
    explicit MiniJson(const std::string& text) : s_(text) {}

    /// Parses the whole document; returns false on any syntax error.
    bool parse() {
        skipWs();
        if (!value(nullptr)) return false;
        skipWs();
        return i_ == s_.size();
    }

    const std::vector<std::map<std::string, std::string>>& events() const { return events_; }

private:
    bool value(std::map<std::string, std::string>* flat, const std::string& key = "") {
        if (i_ >= s_.size()) return false;
        switch (s_[i_]) {
            case '{': return object(nullptr);
            case '[': return array(key == "traceEvents");
            case '"': {
                std::string out;
                if (!string(&out)) return false;
                if (flat != nullptr) (*flat)[key] = out;
                return true;
            }
            default: {
                const std::size_t start = i_;
                while (i_ < s_.size() && std::string("+-.0123456789eEtruefalsn").find(s_[i_]) !=
                                             std::string::npos) {
                    ++i_;
                }
                if (i_ == start) return false;
                if (flat != nullptr) (*flat)[key] = s_.substr(start, i_ - start);
                return true;
            }
        }
    }

    bool object(std::map<std::string, std::string>* flat) {
        ++i_;  // '{'
        skipWs();
        if (i_ < s_.size() && s_[i_] == '}') return ++i_, true;
        while (true) {
            skipWs();
            std::string key;
            if (!string(&key)) return false;
            skipWs();
            if (i_ >= s_.size() || s_[i_] != ':') return false;
            ++i_;
            skipWs();
            if (!value(flat, key)) return false;
            skipWs();
            if (i_ < s_.size() && s_[i_] == ',') {
                ++i_;
                continue;
            }
            break;
        }
        if (i_ >= s_.size() || s_[i_] != '}') return false;
        return ++i_, true;
    }

    bool array(bool isEvents) {
        ++i_;  // '['
        skipWs();
        if (i_ < s_.size() && s_[i_] == ']') return ++i_, true;
        while (true) {
            skipWs();
            if (isEvents) {
                if (i_ >= s_.size() || s_[i_] != '{') return false;
                inEvents_ = true;
                std::map<std::string, std::string> flat;
                const std::size_t start = i_;
                ++i_;
                skipWs();
                bool ok = true;
                if (s_[i_] != '}') {
                    i_ = start;
                    ok = eventObject(&flat);
                } else {
                    ++i_;
                }
                inEvents_ = false;
                if (!ok) return false;
                events_.push_back(std::move(flat));
            } else if (!value(nullptr)) {
                return false;
            }
            skipWs();
            if (i_ < s_.size() && s_[i_] == ',') {
                ++i_;
                continue;
            }
            break;
        }
        if (i_ >= s_.size() || s_[i_] != ']') return false;
        return ++i_, true;
    }

    /// An event object: top-level string/number fields land in `flat`;
    /// nested objects ("args") are validated but flattened one level down
    /// with their keys ("args.wall_ns").
    bool eventObject(std::map<std::string, std::string>* flat, const std::string& prefix = "") {
        ++i_;  // '{'
        skipWs();
        if (i_ < s_.size() && s_[i_] == '}') return ++i_, true;
        while (true) {
            skipWs();
            std::string key;
            if (!string(&key)) return false;
            skipWs();
            if (i_ >= s_.size() || s_[i_] != ':') return false;
            ++i_;
            skipWs();
            if (i_ < s_.size() && s_[i_] == '{') {
                if (!eventObject(flat, prefix + key + ".")) return false;
            } else if (!value(flat, prefix + key)) {
                return false;
            }
            skipWs();
            if (i_ < s_.size() && s_[i_] == ',') {
                ++i_;
                continue;
            }
            break;
        }
        if (i_ >= s_.size() || s_[i_] != '}') return false;
        return ++i_, true;
    }

    bool string(std::string* out) {
        if (i_ >= s_.size() || s_[i_] != '"') return false;
        ++i_;
        while (i_ < s_.size() && s_[i_] != '"') {
            if (s_[i_] == '\\') {
                ++i_;
                if (i_ >= s_.size()) return false;
                switch (s_[i_]) {
                    case 'n': *out += '\n'; break;
                    case 't': *out += '\t'; break;
                    default: *out += s_[i_];
                }
            } else {
                *out += s_[i_];
            }
            ++i_;
        }
        if (i_ >= s_.size()) return false;
        ++i_;  // closing quote
        return true;
    }

    void skipWs() {
        while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' ||
                                  s_[i_] == '\r')) {
            ++i_;
        }
    }

    const std::string& s_;
    std::size_t i_ = 0;
    bool inEvents_ = false;
    std::vector<std::map<std::string, std::string>> events_;
};

// -- end-to-end: bridged SLP -> UPnP span tree ------------------------------

class TelemetrySpanTest : public SimTest {
protected:
    void SetUp() override { telemetry::setEnabled(true); }
    void TearDown() override { telemetry::setEnabled(false); }

    bridge::Starlink starlink{network};

    bridge::DeployedBridge& deploySlpToUpnp(std::size_t spanCapacity) {
        engine::EngineOptions options;
        options.spanCapacity = spanCapacity;
        return starlink.deploy(bridge::models::forCase(bridge::models::Case::SlpToUpnp, "10.0.0.9"),
                               "10.0.0.9", options);
    }

    ssdp::Device::Config fastDevice() {
        ssdp::Device::Config config;
        config.responseDelayBase = net::ms(5);
        config.responseDelayJitter = net::ms(1);
        return config;
    }
};

TEST_F(TelemetrySpanTest, BridgedSessionProducesCoherentSpanTree) {
    constexpr int kLookups = 3;
    auto& engineCounters = telemetry::MetricsRegistry::global();
    auto& messagesIn = engineCounters.counter(
        telemetry::labeled("starlink_engine_messages_in_total", {{"bridge", "slp-to-upnp"}}));
    auto& messagesOut = engineCounters.counter(
        telemetry::labeled("starlink_engine_messages_out_total", {{"bridge", "slp-to-upnp"}}));
    const auto inBefore = messagesIn.value();
    const auto outBefore = messagesOut.value();

    auto& deployed = deploySlpToUpnp(4096);
    ssdp::Device device(network, fastDevice());
    slp::UserAgent client(network, slp::UserAgent::Config{});
    int successes = 0;
    for (int i = 0; i < kLookups; ++i) {
        client.lookup("service:printer", [&successes](const slp::UserAgent::Result& result) {
            if (!result.urls.empty()) ++successes;
        });
        run();
    }
    EXPECT_EQ(successes, kLookups);

    const auto& sessions = deployed.engine().sessions();
    ASSERT_EQ(sessions.size(), static_cast<std::size_t>(kLookups));
    for (const auto& session : sessions) EXPECT_TRUE(session.completed);

    // Index the spans per session / per leg name.
    struct PerSession {
        std::vector<telemetry::Span> parse, compose, translate, wait, retransmit;
        int roots = 0;
    };
    std::map<std::uint64_t, PerSession> perSession;
    const auto spans = deployed.engine().spans().snapshot();
    ASSERT_FALSE(spans.empty());
    for (const auto& span : spans) {
        ASSERT_GE(span.session, 1u);
        ASSERT_LE(span.session, sessions.size());
        auto& bucket = perSession[span.session];
        if (span.name == "session") ++bucket.roots;
        if (span.name == "parse") bucket.parse.push_back(span);
        if (span.name == "compose") bucket.compose.push_back(span);
        if (span.name == "translate") bucket.translate.push_back(span);
        if (span.name == "receive-wait") bucket.wait.push_back(span);
        if (span.name == "retransmit") bucket.retransmit.push_back(span);
    }
    ASSERT_EQ(perSession.size(), sessions.size());

    std::size_t totalIn = 0, totalOut = 0;
    for (std::uint64_t ordinal = 1; ordinal <= sessions.size(); ++ordinal) {
        const auto& record = sessions[ordinal - 1];
        const auto& legs = perSession[ordinal];
        EXPECT_EQ(legs.roots, 1) << "session " << ordinal;

        // Counter/span agreement: every received message was parsed, every
        // sent message left through a translate window or a retransmission.
        EXPECT_EQ(legs.parse.size(), record.messagesIn) << "session " << ordinal;
        EXPECT_EQ(legs.translate.size() + legs.retransmit.size(), record.messagesOut)
            << "session " << ordinal;
        totalIn += record.messagesIn;
        totalOut += record.messagesOut;

        // The virtually-instant legs carry real wall-clock cost.
        for (const auto& span : legs.parse) EXPECT_GT(span.wallNs, 0u);
        for (const auto& span : legs.compose) EXPECT_GT(span.wallNs, 0u);

        // Leg tiling: translate + receive-wait (up to the client reply)
        // cover the translation window exactly.
        const net::TimePoint replyAt = record.clientReply.value_or(record.lastSend);
        net::Duration covered{};
        for (const auto& span : legs.translate) {
            if (span.end <= replyAt) covered += span.duration();
        }
        for (const auto& span : legs.wait) {
            if (span.end <= replyAt) covered += span.duration();
        }
        EXPECT_EQ(covered, record.translationTime()) << "session " << ordinal;
    }
    EXPECT_EQ(messagesIn.value() - inBefore, totalIn);
    EXPECT_EQ(messagesOut.value() - outBefore, totalOut);

    // Chrome trace round-trip: the export is valid JSON, one complete event
    // per span (plus metadata), timestamps in virtual microseconds.
    const std::string json = telemetry::toChromeTrace(deployed.engine().spans(), "test-bridge");
    MiniJson reader(json);
    ASSERT_TRUE(reader.parse()) << json.substr(0, 400);
    std::size_t complete = 0, metadata = 0;
    bool sawWait = false;
    for (const auto& event : reader.events()) {
        ASSERT_TRUE(event.count("ph"));
        if (event.at("ph") == "X") {
            ++complete;
            EXPECT_TRUE(event.count("ts"));
            EXPECT_TRUE(event.count("dur"));
            EXPECT_TRUE(event.count("pid"));
            EXPECT_TRUE(event.count("tid"));
            if (event.at("name") == "receive-wait") sawWait = true;
        } else {
            ++metadata;
        }
    }
    EXPECT_EQ(complete, spans.size());
    EXPECT_GT(metadata, 0u);
    EXPECT_TRUE(sawWait);
}

TEST_F(TelemetrySpanTest, SpanBufferOverflowSurfacesInDroppedCount) {
    auto& deployed = deploySlpToUpnp(4);  // far too small for one session
    ssdp::Device device(network, fastDevice());
    slp::UserAgent client(network, slp::UserAgent::Config{});
    client.lookup("service:printer", [](const slp::UserAgent::Result&) {});
    run();

    EXPECT_EQ(deployed.engine().spans().size(), 4u);
    EXPECT_GT(deployed.engine().spans().dropped(), 0u);
}

class TelemetryDisabledTest : public SimTest {
protected:
    bridge::Starlink starlink{network};
};

TEST_F(TelemetryDisabledTest, DisabledTelemetryRecordsNothing) {
    ASSERT_FALSE(telemetry::enabled());

    auto& deployed = starlink.deploy(
        bridge::models::forCase(bridge::models::Case::SlpToUpnp, "10.0.0.9"), "10.0.0.9");
    const std::string before = telemetry::MetricsRegistry::global().renderPrometheus();

    ssdp::Device device(network, ssdp::Device::Config{});
    slp::UserAgent client(network, slp::UserAgent::Config{});
    bool success = false;
    client.lookup("service:printer",
                  [&success](const slp::UserAgent::Result& result) { success = !result.urls.empty(); });
    run();
    EXPECT_TRUE(success);

    // Default EngineOptions: spans off; disabled flag: no metric moved.
    EXPECT_EQ(deployed.engine().spans().capacity(), 0u);
    EXPECT_EQ(deployed.engine().spans().size(), 0u);
    EXPECT_EQ(telemetry::MetricsRegistry::global().renderPrometheus(), before);
}

}  // namespace
}  // namespace starlink
