// Tests for the hand-coded z2z-style static bridges (ablation baseline):
// each must achieve the same interoperability as its Starlink counterpart.
#include <gtest/gtest.h>

#include "baseline/static_bridges.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "sim_fixture.hpp"

namespace starlink::baseline {
namespace {

using testing::SimTest;

TEST(NameConversions, HandCodedMatchesStarlinkSemantics) {
    EXPECT_EQ(slpTypeToDnssd("service:printer"), "_printer._tcp.local");
    EXPECT_EQ(slpTypeToDnssd("service:printer:lpr"), "_printer._tcp.local");
    EXPECT_EQ(dnssdToSlpType("_printer._tcp.local"), "service:printer");
    EXPECT_EQ(slpTypeToUrn("service:printer"), "urn:schemas-upnp-org:service:printer:1");
}

class StaticBridgeTest : public SimTest {
protected:
    mdns::Responder::Config fastResponder() {
        mdns::Responder::Config config;
        config.responseDelayBase = net::ms(5);
        config.responseDelayJitter = net::ms(1);
        return config;
    }
    slp::ServiceAgent::Config fastSlpService() {
        slp::ServiceAgent::Config config;
        config.responseDelayBase = net::ms(5);
        config.responseDelayJitter = net::ms(1);
        return config;
    }
    ssdp::Device::Config fastDevice() {
        ssdp::Device::Config config;
        config.responseDelayBase = net::ms(5);
        config.responseDelayJitter = net::ms(1);
        return config;
    }
};

TEST_F(StaticBridgeTest, SlpToBonjour) {
    SlpToBonjourStatic bridge(network, "10.0.0.9");
    mdns::Responder responder(network, fastResponder());
    slp::UserAgent client(network, {});

    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], responder.config().url);
    ASSERT_EQ(bridge.sessions().size(), 1u);
    EXPECT_TRUE(bridge.sessions()[0].completed);
}

TEST_F(StaticBridgeTest, SlpToUpnp) {
    SlpToUpnpStatic bridge(network, "10.0.0.9");
    ssdp::Device device(network, fastDevice());
    slp::UserAgent client(network, {});

    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], device.config().serviceUrl);
    ASSERT_EQ(bridge.sessions().size(), 1u);
}

TEST_F(StaticBridgeTest, BonjourToSlp) {
    BonjourToSlpStatic bridge(network, "10.0.0.9");
    slp::ServiceAgent service(network, fastSlpService());
    mdns::Resolver::Config resolverConfig;
    resolverConfig.aggregationBase = net::ms(20);
    mdns::Resolver client(network, resolverConfig);

    std::vector<std::string> urls;
    client.browse("_printer._tcp.local",
                  [&urls](const mdns::Resolver::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], service.config().url);
    ASSERT_EQ(bridge.sessions().size(), 1u);
}

TEST_F(StaticBridgeTest, UpnpToSlp) {
    UpnpToSlpStatic bridge(network, "10.0.0.9");
    slp::ServiceAgent service(network, fastSlpService());
    ssdp::ControlPoint::Config cpConfig;
    cpConfig.mxWindowBase = net::ms(30);
    ssdp::ControlPoint client(network, cpConfig);

    std::vector<std::string> urls;
    client.search("urn:schemas-upnp-org:service:printer:1",
                  [&urls](const ssdp::ControlPoint::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], service.config().url);
    ASSERT_EQ(bridge.sessions().size(), 1u);
}

TEST_F(StaticBridgeTest, BonjourToUpnp) {
    BonjourToUpnpStatic bridge(network, "10.0.0.9");
    ssdp::Device device(network, fastDevice());
    mdns::Resolver::Config resolverConfig;
    resolverConfig.aggregationBase = net::ms(20);
    mdns::Resolver client(network, resolverConfig);

    std::vector<std::string> urls;
    client.browse("_printer._tcp.local",
                  [&urls](const mdns::Resolver::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], device.config().serviceUrl);
    ASSERT_EQ(bridge.sessions().size(), 1u);
}

TEST_F(StaticBridgeTest, StaticBridgesServeRepeatedLookups) {
    SlpToBonjourStatic bridge(network, "10.0.0.9");
    mdns::Responder responder(network, fastResponder());
    slp::UserAgent client(network, {});
    int successes = 0;
    for (int i = 0; i < 4; ++i) {
        client.lookup("service:printer", [&successes](const slp::UserAgent::Result& result) {
            if (!result.urls.empty()) ++successes;
        });
        run();
    }
    EXPECT_EQ(successes, 4);
    EXPECT_EQ(bridge.sessions().size(), 4u);
}

}  // namespace
}  // namespace starlink::baseline
