// Unit tests for the Automata Engine and Network Engine over a minimal toy
// protocol pair, exercising engine semantics in isolation from the discovery
// models: state stepping, queue placement, translation application, trace
// recording, robustness to garbage and misdelivered traffic, session stats.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/bridge/starlink.hpp"
#include "sim_fixture.hpp"

namespace starlink::engine {
namespace {

using testing::SimTest;

// Toy wire formats, one byte kind + 16-bit payload.
//   PING (udp multicast 239.9.9.9:901):  kind 1 = Ping, kind 2 = Pong
//   ECHO (udp multicast 239.8.8.8:902):  kind 1 = EchoReq, kind 2 = EchoRep
const char* kPingMdl = R"(<Mdl protocol="PING" kind="binary">
  <Types><Kind>Integer</Kind><Val>Integer</Val></Types>
  <Header type="PING"><Kind>8</Kind></Header>
  <Message type="Ping"><Rule>Kind=1</Rule><Val mandatory="true">16</Val></Message>
  <Message type="Pong"><Rule>Kind=2</Rule><Val mandatory="true">16</Val></Message>
</Mdl>)";

const char* kEchoMdl = R"(<Mdl protocol="ECHO" kind="binary">
  <Types><Kind>Integer</Kind><Num>Integer</Num></Types>
  <Header type="ECHO"><Kind>8</Kind></Header>
  <Message type="EchoReq"><Rule>Kind=1</Rule><Num mandatory="true">16</Num></Message>
  <Message type="EchoRep"><Rule>Kind=2</Rule><Num mandatory="true">16</Num></Message>
</Mdl>)";

const char* kPingAutomaton = R"(<Automaton name="PING">
  <Color transport_protocol="udp" port="901" mode="async" multicast="yes" group="239.9.9.9"/>
  <State id="p0" initial="true"/>
  <State id="p1"/>
  <State id="p2" accepting="true"/>
  <Transition from="p0" action="receive" message="Ping" to="p1"/>
  <Transition from="p1" action="send" message="Pong" to="p2"/>
</Automaton>)";

const char* kEchoAutomaton = R"(<Automaton name="ECHO">
  <Color transport_protocol="udp" port="902" mode="async" multicast="yes" group="239.8.8.8"/>
  <State id="e0" initial="true"/>
  <State id="e1"/>
  <State id="e2" accepting="true"/>
  <Transition from="e0" action="send" message="EchoReq" to="e1"/>
  <Transition from="e1" action="receive" message="EchoRep" to="e2"/>
</Automaton>)";

const char* kBridgeSpec = R"(<Bridge name="ping-to-echo">
  <Start state="p0"/>
  <Accept state="p2"/>
  <Equivalence message="EchoReq" of="Ping"/>
  <Equivalence message="Pong" of="EchoRep"/>
  <TranslationLogic>
    <Assignment>
      <Field state="e0" message="EchoReq" path="Num"/>
      <Field state="p1" message="Ping" path="Val"/>
    </Assignment>
    <Assignment>
      <Field state="p1" message="Pong" path="Val"/>
      <Field state="e2" message="EchoRep" path="Num"/>
    </Assignment>
  </TranslationLogic>
  <DeltaTransition from="p1" to="e0"/>
  <DeltaTransition from="e2" to="p1"/>
</Bridge>)";

Bytes toyMessage(std::uint8_t kind, std::uint16_t value) {
    Bytes out;
    out.push_back(kind);
    appendUint(out, value, 2);
    return out;
}

class EngineTest : public SimTest {
protected:
    bridge::Starlink starlink{network};

    bridge::models::DeploymentSpec toySpec() {
        bridge::models::DeploymentSpec spec;
        spec.protocols.push_back({kPingMdl, kPingAutomaton});
        spec.protocols.push_back({kEchoMdl, kEchoAutomaton});
        spec.bridgeXml = kBridgeSpec;
        return spec;
    }

    /// A hand-rolled ECHO legacy service: answers EchoReq with EchoRep
    /// carrying the same number plus one.
    std::unique_ptr<net::UdpSocket> makeEchoService() {
        auto socket = network.openUdp("10.0.0.3", 902);
        socket->joinGroup(net::Address{"239.8.8.8", 902});
        auto* raw = socket.get();
        socket->onDatagram([raw](const Bytes& payload, const net::Address& from) {
            if (payload.size() == 3 && payload[0] == 1) {
                const std::uint16_t num =
                    static_cast<std::uint16_t>(payload[1] << 8 | payload[2]);
                Bytes reply;
                reply.push_back(2);
                appendUint(reply, static_cast<std::uint16_t>(num + 1), 2);
                raw->sendTo(from, reply);
            }
        });
        return socket;
    }
};

TEST_F(EngineTest, EndToEndToyTranslation) {
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9");
    auto echoService = makeEchoService();

    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    std::optional<std::uint16_t> pongValue;
    client->onDatagram([&pongValue](const Bytes& payload, const net::Address&) {
        if (payload.size() == 3 && payload[0] == 2) {
            pongValue = static_cast<std::uint16_t>(payload[1] << 8 | payload[2]);
        }
    });
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 41));
    run();

    ASSERT_TRUE(pongValue);
    EXPECT_EQ(*pongValue, 42);  // service incremented, bridge carried it back
    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    const SessionRecord& session = deployed.engine().sessions()[0];
    EXPECT_TRUE(session.completed);
    EXPECT_EQ(session.messagesIn, 2u);
    EXPECT_EQ(session.messagesOut, 2u);
    EXPECT_TRUE(session.clientReply.has_value());
}

TEST_F(EngineTest, TraceRecordsQueuePlacementAndDeltas) {
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9");
    auto echoService = makeEchoService();
    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 7));
    run();

    const auto& events = deployed.engine().trace().events();
    ASSERT_EQ(events.size(), 6u);
    EXPECT_EQ(events[0].to, "p1");  // receive stored at entered state
    EXPECT_FALSE(events[1].action.has_value());  // delta p1 -> e0
    EXPECT_EQ(events[1].to, "e0");
    EXPECT_EQ(events[2].message.type(), "EchoReq");
    EXPECT_EQ(events[2].message.value("Num")->asInt(), 7);
    EXPECT_EQ(events[3].message.type(), "EchoRep");
    EXPECT_FALSE(events[4].action.has_value());  // delta e2 -> p1
    EXPECT_EQ(events[5].message.type(), "Pong");
    EXPECT_EQ(events[5].message.value("Val")->asInt(), 8);

    // The history operator over live trace data (paper's => operator).
    const auto received = deployed.engine().trace().history("p0", "p2", automata::Action::Receive);
    ASSERT_EQ(received.size(), 2u);
    EXPECT_EQ(received[0].type(), "Ping");
    EXPECT_EQ(received[1].type(), "EchoRep");
}

TEST_F(EngineTest, GarbageBytesAreIgnored) {
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9");
    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    client->sendTo(net::Address{"239.9.9.9", 901}, toBytes("complete garbage"));
    client->sendTo(net::Address{"239.9.9.9", 901}, Bytes{});
    client->sendTo(net::Address{"239.9.9.9", 901}, Bytes{9});  // no rule matches kind 9
    run();
    EXPECT_TRUE(deployed.engine().sessions().empty());
    EXPECT_EQ(deployed.engine().currentState(), "p0");
}

TEST_F(EngineTest, WrongDirectionMessageIgnored) {
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9");
    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    // A Pong arrives while the bridge expects a Ping: no transition fires.
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(2, 1));
    run();
    EXPECT_TRUE(deployed.engine().sessions().empty());
    EXPECT_EQ(deployed.engine().currentState(), "p0");
}

TEST_F(EngineTest, MessageForInactiveAutomatonIgnored) {
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9");
    // An EchoRep arrives while the bridge still sits at p0 (ECHO inactive).
    auto stranger = network.openUdp("10.0.0.5", 902);
    stranger->joinGroup(net::Address{"239.8.8.8", 902});
    stranger->sendTo(net::Address{"239.8.8.8", 902}, toyMessage(2, 5));
    run();
    EXPECT_TRUE(deployed.engine().sessions().empty());
    EXPECT_EQ(deployed.engine().currentState(), "p0");
}

TEST_F(EngineTest, ProcessingDelayIsCharged) {
    engine::EngineOptions options;
    options.processingDelay = net::ms(100);
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9", options);
    auto echoService = makeEchoService();
    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 1));
    run();
    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    // Two composes at 100 ms each, plus network latency.
    EXPECT_GE(elapsedMs(deployed.engine().sessions()[0].translationTime()), 200.0);
}

TEST_F(EngineTest, StopSilencesTheBridge) {
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9");
    auto echoService = makeEchoService();
    deployed.engine().stop();
    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 1));
    run();
    EXPECT_TRUE(deployed.engine().sessions().empty());
    EXPECT_FALSE(deployed.engine().running());
}

TEST_F(EngineTest, MissingCodecRejectedAtConstruction) {
    auto spec = toySpec();
    spec.protocols.pop_back();  // drop the ECHO protocol models
    EXPECT_THROW(starlink.deploy(spec, "10.0.0.9"), SpecError);
}

TEST_F(EngineTest, SessionsAreIsolated) {
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9");
    auto echoService = makeEchoService();
    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    std::vector<std::uint16_t> pongs;
    client->onDatagram([&pongs](const Bytes& payload, const net::Address&) {
        if (payload.size() == 3 && payload[0] == 2) {
            pongs.push_back(static_cast<std::uint16_t>(payload[1] << 8 | payload[2]));
        }
    });
    for (std::uint16_t v : {10, 20, 30}) {
        client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, v));
        run();
    }
    // Queues were reset between sessions: each pong reflects its own ping.
    EXPECT_EQ(pongs, (std::vector<std::uint16_t>{11, 21, 31}));
    EXPECT_EQ(deployed.engine().sessions().size(), 3u);
}

// --- network engine edge cases -----------------------------------------------------

TEST_F(EngineTest, NetworkEngineRejectsUnattachedColorOperations) {
    NetworkEngine engine(network, "10.0.0.9");
    EXPECT_THROW(engine.send(12345, toBytes("x")), SpecError);
    EXPECT_THROW(engine.setHost(12345, "10.0.0.1", 80), SpecError);
}

TEST_F(EngineTest, NetworkEngineRejectsPortlessUdpColor) {
    NetworkEngine engine(network, "10.0.0.9");
    automata::Color color{{automata::keys::transport, "udp"}};
    EXPECT_THROW(engine.attach(1, color), SpecError);
}

TEST_F(EngineTest, NetworkEngineRejectsUnknownTransport) {
    NetworkEngine engine(network, "10.0.0.9");
    automata::Color color{{automata::keys::transport, "carrier-pigeon"},
                          {automata::keys::port, "80"}};
    EXPECT_THROW(engine.attach(1, color), SpecError);
}

TEST_F(EngineTest, NetworkEngineTcpClientWithoutTargetThrows) {
    NetworkEngine engine(network, "10.0.0.9");
    automata::Color color{{automata::keys::transport, "tcp"},
                          {automata::keys::port, "80"},
                          {automata::keys::mode, "sync"},
                          {automata::keys::multicast, "no"}};
    engine.attach(7, color, /*serverRole=*/false);
    // No set_host was executed and the color has no static host.
    EXPECT_THROW(engine.send(7, toBytes("GET")), NetError);
}

TEST_F(EngineTest, NetworkEngineTcpServerWithoutConnectionThrows) {
    NetworkEngine engine(network, "10.0.0.9");
    automata::Color color{{automata::keys::transport, "tcp"},
                          {automata::keys::port, "8088"},
                          {automata::keys::mode, "sync"},
                          {automata::keys::multicast, "no"}};
    engine.attach(8, color, /*serverRole=*/true);
    EXPECT_THROW(engine.send(8, toBytes("200 OK")), NetError);
}

TEST_F(EngineTest, NetworkEngineUdpStaticUnicastTarget) {
    // A unicast udp color with a static host sends without any prior receive.
    NetworkEngine engine(network, "10.0.0.9");
    automata::Color color{{automata::keys::transport, "udp"},
                          {automata::keys::port, "5000"},
                          {automata::keys::multicast, "no"},
                          {automata::keys::host, "10.0.0.2"}};
    engine.attach(9, color);
    auto receiver = network.openUdp("10.0.0.2", 5000);
    Bytes got;
    receiver->onDatagram([&got](const Bytes& payload, const net::Address&) { got = payload; });
    engine.send(9, toBytes("hello"));
    run();
    EXPECT_EQ(toString(got), "hello");
}

TEST_F(EngineTest, SetHostDirectsTcpConnection) {
    NetworkEngine engine(network, "10.0.0.9");
    automata::Color color{{automata::keys::transport, "tcp"},
                          {automata::keys::port, "80"},
                          {automata::keys::mode, "sync"},
                          {automata::keys::multicast, "no"}};
    engine.attach(10, color);
    auto listener = network.listenTcp("10.0.0.2", 9090);
    Bytes got;
    listener->onAccept([&got](std::shared_ptr<net::TcpConnection> connection) {
        connection->onData([&got](const Bytes& payload) { got = payload; });
    });
    engine.setHost(10, "10.0.0.2", 9090);
    engine.send(10, toBytes("GET /"));
    run();
    EXPECT_EQ(toString(got), "GET /");
    // resetSession clears the override: the next send has no target.
    engine.resetSession();
    EXPECT_THROW(engine.send(10, toBytes("x")), NetError);
}

}  // namespace
}  // namespace starlink::engine
