// Codec corpus tests: the compiled-plan paths against the pre-plan
// interpreters, and adversarial wire input against every decoder.
//
// Two halves:
//  - differential: every MDL under models/ (the exported files on disk, via
//    STARLINK_MODELS_DIR -- not the embedded strings, so drift between the
//    two would surface here) must parse and compose BYTE-IDENTICALLY through
//    the plan and the interpreter, on clean samples, truncations, and seeded
//    single-byte corruptions;
//  - malformed corpus: DNS compression-pointer abuse, oversized XML numeric
//    entities, and delimiter-free text must come back as a clean nullopt or
//    SpecError -- never a crash -- which the CI sanitizer job checks under
//    ASan/UBSan.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mdl/codec.hpp"
#include "protocols/http/http_codec.hpp"
#include "protocols/ldap/ldap_codec.hpp"
#include "protocols/mdns/dns_codec.hpp"
#include "protocols/slp/slp_codec.hpp"
#include "protocols/ssdp/ssdp_codec.hpp"
#include "protocols/wsd/wsd_codec.hpp"
#include "xml/parser.hpp"

namespace starlink::mdl {
namespace {

// --- differential: plan vs interpreter over models/*.mdl.xml -----------------

std::string slurp(const std::filesystem::path& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Sample wire messages per protocol, produced by the legacy stacks: one
/// request and one reply each, the shapes a bridged session carries.
std::map<std::string, std::vector<Bytes>> sampleWires() {
    std::map<std::string, std::vector<Bytes>> wires;

    slp::SrvRequest slpRequest;
    slpRequest.xid = 11;
    slpRequest.serviceType = "service:printer";
    slpRequest.predicate = "(colour=true)";
    slp::SrvReply slpReply;
    slpReply.xid = 11;
    slpReply.url = "service:printer://10.0.0.3:515/queue";
    wires["SLP"] = {slp::encode(slpRequest), slp::encode(slpReply)};

    wires["DNS"] = {
        mdns::encode(mdns::makeQuestion(7, "_printer._tcp.local")),
        mdns::encode(mdns::makeResponse(7, "_printer._tcp.local", "http://10.0.0.3:631/ipp"))};

    ssdp::MSearch search;
    search.st = "urn:schemas-upnp-org:service:printer:1";
    ssdp::Response ssdpResponse;
    ssdpResponse.st = search.st;
    ssdpResponse.usn = "uuid:device-1::" + search.st;
    ssdpResponse.location = "http://10.0.0.3:8080/description.xml";
    wires["SSDP"] = {ssdp::encode(search), ssdp::encode(ssdpResponse)};

    http::Request request;
    request.path = "/description.xml";
    request.headers.emplace_back("Host", "10.0.0.3:8080");
    http::Response response;
    response.headers.emplace_back("Content-Type", "text/xml");
    response.body = "<root><device/></root>";
    wires["HTTP"] = {http::encode(request), http::encode(response)};

    ldap::SearchRequest ldapRequest;
    ldapRequest.messageId = 3;
    ldapRequest.serviceClass = "service:printer";
    ldapRequest.filter = "(colour=true)";
    ldap::SearchResult ldapResult;
    ldapResult.messageId = 3;
    ldapResult.dn = "cn=printer,dc=services,dc=local";
    ldapResult.url = "service:printer://10.0.0.3:515/queue";
    wires["LDAP"] = {ldap::encode(ldapRequest), ldap::encode(ldapResult)};

    wires["WSD"] = {
        wsd::encode(wsd::Probe{"uuid:client-9", "printer"}),
        wsd::encode(wsd::ProbeMatch{"uuid:t", "uuid:client-9", "printer",
                                    "http://10.0.0.3:5357/p"})};
    return wires;
}

std::vector<std::filesystem::path> modelFiles() {
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(STARLINK_MODELS_DIR)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 8 && name.substr(name.size() - 8) == ".mdl.xml") {
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(PlanDifferential, ModelsDirectoryIsCovered) {
    // The corpus must actually sweep something; six MDLs ship today.
    EXPECT_GE(modelFiles().size(), 6u);
}

TEST(PlanDifferential, CleanSamplesParseAndComposeIdentically) {
    const auto wires = sampleWires();
    for (const auto& path : modelFiles()) {
        const auto codec = MessageCodec::fromXml(slurp(path));
        const auto it = wires.find(codec->protocol());
        ASSERT_NE(it, wires.end()) << path << ": no wire samples for " << codec->protocol();
        for (const Bytes& wire : it->second) {
            std::string planError;
            std::string interpError;
            const auto viaPlan = codec->parse(wire, &planError);
            const auto viaInterp = codec->parseInterpreted(wire, &interpError);
            ASSERT_TRUE(viaPlan) << path << ": " << planError;
            ASSERT_TRUE(viaInterp) << path << ": " << interpError;
            EXPECT_EQ(*viaPlan, *viaInterp) << path;

            const Bytes composedInterp = codec->composeInterpreted(*viaInterp);
            Bytes composedPlan;
            codec->composeInto(*viaPlan, composedPlan);
            EXPECT_EQ(composedPlan, composedInterp) << path << ": compose paths diverge";
            EXPECT_EQ(codec->compose(*viaPlan), composedInterp) << path;
        }
    }
}

TEST(PlanDifferential, TruncationsAgree) {
    const auto wires = sampleWires();
    for (const auto& path : modelFiles()) {
        const auto codec = MessageCodec::fromXml(slurp(path));
        for (const Bytes& wire : wires.at(codec->protocol())) {
            for (std::size_t cut = 0; cut < wire.size(); ++cut) {
                const Bytes truncated(wire.begin(),
                                      wire.begin() + static_cast<std::ptrdiff_t>(cut));
                const auto viaPlan = codec->parse(truncated);
                const auto viaInterp = codec->parseInterpreted(truncated);
                ASSERT_EQ(viaPlan.has_value(), viaInterp.has_value())
                    << path << ": paths disagree at truncation " << cut;
                if (viaPlan) EXPECT_EQ(*viaPlan, *viaInterp) << path << " cut " << cut;
            }
        }
    }
}

TEST(PlanDifferential, SeededCorruptionsAgree) {
    const auto wires = sampleWires();
    for (const auto& path : modelFiles()) {
        const auto codec = MessageCodec::fromXml(slurp(path));
        Rng rng(0xC0DEC + wires.at(codec->protocol())[0].size());
        for (const Bytes& wire : wires.at(codec->protocol())) {
            for (int round = 0; round < 100; ++round) {
                Bytes mutated = wire;
                mutated[rng.range(0, mutated.size() - 1)] =
                    static_cast<std::uint8_t>(rng.range(0, 255));
                const auto viaPlan = codec->parse(mutated);
                const auto viaInterp = codec->parseInterpreted(mutated);
                ASSERT_EQ(viaPlan.has_value(), viaInterp.has_value())
                    << path << ": paths disagree on corruption round " << round;
                if (viaPlan) EXPECT_EQ(*viaPlan, *viaInterp) << path << " round " << round;
            }
        }
    }
}

// --- malformed corpus: DNS compression abuse ---------------------------------

/// A DNS header with the given section counts.
Bytes dnsHeader(std::uint16_t qd, std::uint16_t an) {
    Bytes out;
    appendUint(out, 1, 2);       // id
    appendUint(out, 0x8400, 2);  // flags
    appendUint(out, qd, 2);
    appendUint(out, an, 2);
    appendUint(out, 0, 2);  // ns
    appendUint(out, 0, 2);  // ar
    return out;
}

TEST(DnsAdversarial, CompressedAnswerNameDecodes) {
    // The legitimate shape: answer name is a pointer back to the question
    // name at offset 12.
    Bytes wire = dnsHeader(1, 1);
    for (const char* label : {"\x08_printer", "\x04_tcp", "\x05local"}) {
        wire.insert(wire.end(), label, label + 1 + label[0]);
    }
    wire.push_back(0);
    appendUint(wire, mdns::kTypePtr, 2);
    appendUint(wire, mdns::kClassIn, 2);
    wire.push_back(0xC0);  // answer name: pointer to offset 12
    wire.push_back(0x0C);
    appendUint(wire, mdns::kTypeTxt, 2);
    appendUint(wire, mdns::kClassIn, 2);
    appendUint(wire, 120, 4);
    const std::string url = "http://10.0.0.3:631/ipp";
    appendUint(wire, url.size(), 2);
    wire.insert(wire.end(), url.begin(), url.end());

    const auto message = mdns::decode(wire);
    ASSERT_TRUE(message);
    ASSERT_EQ(message->answers.size(), 1u);
    EXPECT_EQ(message->answers[0].name, "_printer._tcp.local");
    EXPECT_EQ(toString(message->answers[0].rdata), url);

    // And every truncation of it fails cleanly.
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        EXPECT_FALSE(mdns::decode(
            Bytes(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut))))
            << "truncation at " << cut;
    }
}

/// Question name region + qtype/qclass where the name is raw `nameBytes`.
Bytes dnsWithQuestionName(const Bytes& nameBytes) {
    Bytes wire = dnsHeader(1, 0);
    wire.insert(wire.end(), nameBytes.begin(), nameBytes.end());
    appendUint(wire, mdns::kTypePtr, 2);
    appendUint(wire, mdns::kClassIn, 2);
    return wire;
}

TEST(DnsAdversarial, PointerLoopsRejected) {
    // Self-pointer: offset 12 points at offset 12.
    EXPECT_FALSE(mdns::decode(dnsWithQuestionName({0xC0, 0x0C})));
    // Forward pointer: target past the pointer.
    EXPECT_FALSE(mdns::decode(dnsWithQuestionName({0xC0, 0x20})));
    // Two-pointer cycle: 12 -> 14 is already forward; 14 -> 12 -> 14 the
    // monotonicity guard kills (second target not strictly below the first).
    EXPECT_FALSE(mdns::decode(dnsWithQuestionName({0xC0, 0x0E, 0xC0, 0x0C})));
}

TEST(DnsAdversarial, ReservedLabelTypesRejected) {
    EXPECT_FALSE(mdns::decode(dnsWithQuestionName({0x41, 'x', 0x00})));  // 0x40 class
    EXPECT_FALSE(mdns::decode(dnsWithQuestionName({0x81, 'x', 0x00})));  // 0x80 class
}

TEST(DnsAdversarial, JumpChainBeyondCapRejected) {
    // A strictly-backwards pointer chain long enough to trip the jump cap
    // (every hop monotonically decreasing, so only the cap can stop it).
    // Layout: question name is ONE 69-byte opaque label whose content holds
    // the chain; the answer name enters the chain at its top.
    Bytes name;
    name.push_back(69);                  // label length; content = offsets 13..81
    name.push_back(0);                   // offset 13: filler
    for (int o = 14; o <= 78; o += 2) {  // 33 pointers, each one hop backwards
        name.push_back(0xC0);            // pointer at offset o -> o-2 (14 -> 12,
        name.push_back(static_cast<std::uint8_t>(o - 2));  // the label itself)
    }
    name.push_back(0);                   // offsets 80-81: pad the label content
    name.push_back(0);
    ASSERT_EQ(name.size(), 70u);
    name.push_back(0);                   // offset 82: end of the question name

    Bytes wire = dnsHeader(1, 1);
    wire.insert(wire.end(), name.begin(), name.end());
    appendUint(wire, mdns::kTypePtr, 2);
    appendUint(wire, mdns::kClassIn, 2);
    wire.push_back(0xC0);                // answer name: jump to the chain top
    wire.push_back(78);
    appendUint(wire, mdns::kTypeTxt, 2);
    appendUint(wire, mdns::kClassIn, 2);
    appendUint(wire, 120, 4);
    appendUint(wire, 0, 2);

    // 1 entry jump + 33 chain hops = 34 > the 32-jump cap.
    EXPECT_FALSE(mdns::decode(wire));
}

TEST(DnsAdversarial, OversizedNameRejected) {
    // Labels totalling more than 255 bytes of name.
    Bytes name;
    for (int i = 0; i < 5; ++i) {
        name.push_back(63);
        for (int j = 0; j < 63; ++j) name.push_back('a');
    }
    name.push_back(0);
    EXPECT_FALSE(mdns::decode(dnsWithQuestionName(name)));
}

// --- malformed corpus: XML numeric entities ----------------------------------

TEST(XmlEntityCorpus, NumericReferencesBecomeUtf8) {
    EXPECT_EQ(xml::parse("<a>&#65;</a>")->text(), "A");
    EXPECT_EQ(xml::parse("<a>&#xE9;</a>")->text(), "\xC3\xA9");          // e-acute
    EXPECT_EQ(xml::parse("<a>&#x20AC;</a>")->text(), "\xE2\x82\xAC");    // euro sign
    EXPECT_EQ(xml::parse("<a>&#x1F600;</a>")->text(), "\xF0\x9F\x98\x80");
    EXPECT_EQ(xml::parse("<a>&#x10FFFF;</a>")->text(), "\xF4\x8F\xBF\xBF");
}

TEST(XmlEntityCorpus, OversizedAndSurrogateEntitiesRejected) {
    EXPECT_THROW(xml::parse("<a>&#x110000;</a>"), SpecError);  // beyond Unicode
    EXPECT_THROW(xml::parse("<a>&#1114112;</a>"), SpecError);
    EXPECT_THROW(xml::parse("<a>&#xD800;</a>"), SpecError);    // surrogates
    EXPECT_THROW(xml::parse("<a>&#xDFFF;</a>"), SpecError);
    EXPECT_THROW(xml::parse("<a>&#;</a>"), SpecError);
    EXPECT_THROW(xml::parse("<a>&#xZZ;</a>"), SpecError);
    EXPECT_THROW(xml::parse("<a>&#x7FFFFFFFFFFF;</a>"), SpecError);  // stol overflow
    EXPECT_THROW(xml::parse("<a>&#65</a>"), SpecError);        // unterminated
}

// --- malformed corpus: delimiter-free text -----------------------------------

TEST(TextCorpus, AbsentDelimitersFailCleanly) {
    const auto codec =
        MessageCodec::fromXml(slurp(std::filesystem::path(STARLINK_MODELS_DIR) / "ssdp.mdl.xml"));
    for (const char* wire : {
             "",                          // empty datagram
             "M-SEARCH",                  // no token terminators at all
             "M-SEARCH * HTTP/1.1",       // start line never CRLF-terminated
             "M-SEARCH * HTTP/1.1\rST: x\r",  // bare CR is not the delimiter
         }) {
        std::string planError;
        std::string interpError;
        EXPECT_FALSE(codec->parse(toBytes(wire), &planError)) << wire;
        EXPECT_FALSE(codec->parseInterpreted(toBytes(wire), &interpError)) << wire;
        EXPECT_FALSE(planError.empty()) << wire;
        EXPECT_EQ(planError, interpError) << wire;
    }
    // Header line without the ':' split fails with the same diagnostic on
    // both paths.
    const Bytes noSplit = toBytes("M-SEARCH * HTTP/1.1\r\nST urn-x\r\n\r\n");
    std::string planError;
    std::string interpError;
    EXPECT_FALSE(codec->parse(noSplit, &planError));
    EXPECT_FALSE(codec->parseInterpreted(noSplit, &interpError));
    EXPECT_EQ(planError, interpError);
}

}  // namespace
}  // namespace starlink::mdl
