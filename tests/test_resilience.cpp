// Resilience-layer tests: per-state receive deadlines with bounded
// retransmission, the session watchdog, structured failure causes for
// connect-refused / peer-closed / timeout aborts, the declarative
// FaultSchedule, and determinism of chaos runs. The invariant under test
// throughout: a stuck or failed session NEVER wedges the connector -- the
// next client always finds the bridge listening at q0.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "net/sim_network.hpp"
#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "protocols/ssdp/ssdp_codec.hpp"
#include "sim_fixture.hpp"

namespace starlink::engine {
namespace {

using testing::SimTest;

// The toy PING/ECHO pair from test_engine.cpp: one byte kind + 16-bit value,
// both udp multicast, so loss/retransmission can be staged precisely.
const char* kPingMdl = R"(<Mdl protocol="PING" kind="binary">
  <Types><Kind>Integer</Kind><Val>Integer</Val></Types>
  <Header type="PING"><Kind>8</Kind></Header>
  <Message type="Ping"><Rule>Kind=1</Rule><Val mandatory="true">16</Val></Message>
  <Message type="Pong"><Rule>Kind=2</Rule><Val mandatory="true">16</Val></Message>
</Mdl>)";

const char* kEchoMdl = R"(<Mdl protocol="ECHO" kind="binary">
  <Types><Kind>Integer</Kind><Num>Integer</Num></Types>
  <Header type="ECHO"><Kind>8</Kind></Header>
  <Message type="EchoReq"><Rule>Kind=1</Rule><Num mandatory="true">16</Num></Message>
  <Message type="EchoRep"><Rule>Kind=2</Rule><Num mandatory="true">16</Num></Message>
</Mdl>)";

const char* kPingAutomaton = R"(<Automaton name="PING">
  <Color transport_protocol="udp" port="901" mode="async" multicast="yes" group="239.9.9.9"/>
  <State id="p0" initial="true"/>
  <State id="p1"/>
  <State id="p2" accepting="true"/>
  <Transition from="p0" action="receive" message="Ping" to="p1"/>
  <Transition from="p1" action="send" message="Pong" to="p2"/>
</Automaton>)";

const char* kEchoAutomaton = R"(<Automaton name="ECHO">
  <Color transport_protocol="udp" port="902" mode="async" multicast="yes" group="239.8.8.8"/>
  <State id="e0" initial="true"/>
  <State id="e1"/>
  <State id="e2" accepting="true"/>
  <Transition from="e0" action="send" message="EchoReq" to="e1"/>
  <Transition from="e1" action="receive" message="EchoRep" to="e2"/>
</Automaton>)";

const char* kBridgeSpec = R"(<Bridge name="ping-to-echo">
  <Start state="p0"/>
  <Accept state="p2"/>
  <Equivalence message="EchoReq" of="Ping"/>
  <Equivalence message="Pong" of="EchoRep"/>
  <TranslationLogic>
    <Assignment>
      <Field state="e0" message="EchoReq" path="Num"/>
      <Field state="p1" message="Ping" path="Val"/>
    </Assignment>
    <Assignment>
      <Field state="p1" message="Pong" path="Val"/>
      <Field state="e2" message="EchoRep" path="Num"/>
    </Assignment>
  </TranslationLogic>
  <DeltaTransition from="p1" to="e0"/>
  <DeltaTransition from="e2" to="p1"/>
</Bridge>)";

Bytes toyMessage(std::uint8_t kind, std::uint16_t value) {
    Bytes out;
    out.push_back(kind);
    appendUint(out, value, 2);
    return out;
}

bridge::models::DeploymentSpec toySpec() {
    bridge::models::DeploymentSpec spec;
    spec.protocols.push_back({kPingMdl, kPingAutomaton});
    spec.protocols.push_back({kEchoMdl, kEchoAutomaton});
    spec.bridgeXml = kBridgeSpec;
    return spec;
}

std::unique_ptr<net::UdpSocket> makeEchoService(net::SimNetwork& network) {
    auto socket = network.openUdp("10.0.0.3", 902);
    socket->joinGroup(net::Address{"239.8.8.8", 902});
    auto* raw = socket.get();
    socket->onDatagram([raw](const Bytes& payload, const net::Address& from) {
        if (payload.size() == 3 && payload[0] == 1) {
            const std::uint16_t num = static_cast<std::uint16_t>(payload[1] << 8 | payload[2]);
            Bytes reply;
            reply.push_back(2);
            appendUint(reply, static_cast<std::uint16_t>(num + 1), 2);
            raw->sendTo(from, reply);
        }
    });
    return socket;
}

class ResilienceTest : public SimTest {
protected:
    bridge::Starlink starlink{network};
};

// --- retransmission ----------------------------------------------------------

TEST_F(ResilienceTest, RetransmissionRecoversFromTotalLossBurst) {
    EngineOptions options;
    options.receiveTimeout = net::ms(150);
    options.maxRetransmits = 3;
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9", options);
    auto echo = makeEchoService(network);

    // Every datagram touching the echo service is lost for the first 100 ms:
    // the bridge's EchoReq (sent at ~12 ms after the processing delay) dies
    // in this window; the client's Ping (10.0.0.1 -> bridge) is unaffected.
    net::FaultSchedule schedule;
    schedule.lossBurst(net::TimePoint{}, net::ms(100), 1.0, "10.0.0.3");
    network.setFaultSchedule(schedule);

    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    std::optional<std::uint16_t> pongValue;
    client->onDatagram([&pongValue](const Bytes& payload, const net::Address&) {
        if (payload.size() == 3 && payload[0] == 2) {
            pongValue = static_cast<std::uint16_t>(payload[1] << 8 | payload[2]);
        }
    });
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 41));
    run();

    ASSERT_TRUE(pongValue);
    EXPECT_EQ(*pongValue, 42);
    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    const SessionRecord& session = deployed.engine().sessions()[0];
    EXPECT_TRUE(session.completed);
    EXPECT_EQ(session.cause, FailureCause::None);
    EXPECT_GE(session.retransmits, 1u);  // the re-sent EchoReq saved the session
    EXPECT_GE(network.datagramsLost(), 1u);
}

TEST_F(ResilienceTest, RetransmitBudgetExhaustionAbortsWithTimeoutCause) {
    EngineOptions options;
    options.receiveTimeout = net::ms(100);
    options.maxRetransmits = 2;
    options.sessionTimeout = net::ms(60000);  // far away: the retry budget aborts first
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9", options);
    // No echo service exists at all: every EchoReq vanishes unanswered.

    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 5));
    run();

    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    EXPECT_FALSE(deployed.engine().sessions()[0].completed);
    EXPECT_EQ(deployed.engine().sessions()[0].cause, FailureCause::Timeout);
    EXPECT_EQ(deployed.engine().sessions()[0].retransmits, 2u);
    EXPECT_EQ(deployed.engine().currentState(), "p0");  // re-armed at q0

    // The connector survived: the next client (with a service up) succeeds.
    auto echo = makeEchoService(network);
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 6));
    run();
    ASSERT_EQ(deployed.engine().sessions().size(), 2u);
    EXPECT_TRUE(deployed.engine().sessions()[1].completed);
}

// --- session watchdog --------------------------------------------------------

TEST_F(ResilienceTest, WatchdogAbortsStalledSessionAndNextClientSucceeds) {
    EngineOptions options;
    options.sessionTimeout = net::ms(500);
    options.maxRetransmits = 0;  // isolate the watchdog from retransmission
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9", options);

    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 1));
    run();

    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    const SessionRecord& aborted = deployed.engine().sessions()[0];
    EXPECT_FALSE(aborted.completed);
    EXPECT_EQ(aborted.cause, FailureCause::Timeout);
    EXPECT_GE(elapsedMs(aborted.sessionTime()), 0.0);
    EXPECT_EQ(deployed.engine().currentState(), "p0");

    auto echo = makeEchoService(network);
    std::optional<std::uint16_t> pongValue;
    client->onDatagram([&pongValue](const Bytes& payload, const net::Address&) {
        if (payload.size() == 3 && payload[0] == 2) {
            pongValue = static_cast<std::uint16_t>(payload[1] << 8 | payload[2]);
        }
    });
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 7));
    run();
    ASSERT_TRUE(pongValue);
    EXPECT_EQ(*pongValue, 8);
    ASSERT_EQ(deployed.engine().sessions().size(), 2u);
    EXPECT_TRUE(deployed.engine().sessions()[1].completed);
}

// --- tcp fault attribution ---------------------------------------------------

/// An SSDP responder whose LOCATION points wherever the test wants -- the
/// bridge will walk into the trap on its HTTP leg.
std::unique_ptr<net::UdpSocket> makeRogueSsdpResponder(net::SimNetwork& network,
                                                       const std::string& location) {
    auto socket = network.openUdp("10.0.0.3", ssdp::kPort);
    socket->joinGroup(net::Address{ssdp::kGroup, ssdp::kPort});
    auto* raw = socket.get();
    socket->onDatagram([raw, location](const Bytes& payload, const net::Address& from) {
        if (!ssdp::decodeMSearch(payload)) return;
        ssdp::Response response;
        response.st = "urn:schemas-upnp-org:service:printer:1";
        response.usn = "uuid:rogue-0001::" + response.st;
        response.location = location;
        raw->sendTo(from, ssdp::encode(response));
    });
    return socket;
}

TEST_F(ResilienceTest, RefusedTcpConnectAbortsSessionWithCause) {
    auto& deployed = starlink.deploy(
        bridge::models::forCase(bridge::models::Case::SlpToUpnp, "10.0.0.9"), "10.0.0.9");
    // LOCATION points at a port where nothing ever listens.
    auto rogue = makeRogueSsdpResponder(network, "http://10.0.0.3:9999/desc.xml");

    slp::UserAgent::Config uaConfig;
    uaConfig.timeout = net::ms(3000);
    slp::UserAgent client(network, uaConfig);
    std::vector<std::string> urls{"sentinel"};
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();

    EXPECT_TRUE(urls.empty());  // the client saw a clean timeout, not a hang
    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    EXPECT_FALSE(deployed.engine().sessions()[0].completed);
    EXPECT_EQ(deployed.engine().sessions()[0].cause, FailureCause::ConnectRefused);
    EXPECT_EQ(network.connectsRefused(), 3u);  // the full bounded retry budget

    // Connector survives: replace the trap with a real device and retry.
    rogue.reset();
    ssdp::Device::Config deviceConfig;
    deviceConfig.responseDelayBase = net::ms(5);
    deviceConfig.responseDelayJitter = net::ms(1);
    ssdp::Device device(network, deviceConfig);
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], device.config().serviceUrl);
    ASSERT_EQ(deployed.engine().sessions().size(), 2u);
    EXPECT_TRUE(deployed.engine().sessions()[1].completed);
}

TEST_F(ResilienceTest, MidSessionPeerCloseAbortsSessionWithCause) {
    auto& deployed = starlink.deploy(
        bridge::models::forCase(bridge::models::Case::SlpToUpnp, "10.0.0.9"), "10.0.0.9");
    auto rogue = makeRogueSsdpResponder(network, "http://10.0.0.3:9999/desc.xml");
    // A trap http server: accepts the connection, then slams it shut the
    // moment the GET arrives.
    auto trap = network.listenTcp("10.0.0.3", 9999);
    trap->onAccept([](std::shared_ptr<net::TcpConnection> connection) {
        connection->onData([connection](const Bytes&) { connection->close(); });
    });

    slp::UserAgent::Config uaConfig;
    uaConfig.timeout = net::ms(3000);
    slp::UserAgent client(network, uaConfig);
    std::vector<std::string> urls{"sentinel"};
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();

    EXPECT_TRUE(urls.empty());
    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    EXPECT_FALSE(deployed.engine().sessions()[0].completed);
    EXPECT_EQ(deployed.engine().sessions()[0].cause, FailureCause::PeerClosed);
    EXPECT_EQ(deployed.engine().currentState(),
              deployed.engine().merged().initialState());
}

// --- drop accounting ---------------------------------------------------------

TEST_F(ResilienceTest, PartitionDropsCountedSeparatelyFromLoss) {
    auto a = network.openUdp("10.0.0.1", 7001);
    auto b = network.openUdp("10.0.0.2", 7002);

    network.latency().lossProbability = 1.0;
    a->sendTo(net::Address{"10.0.0.2", 7002}, toBytes("x"));
    run();
    EXPECT_EQ(network.datagramsLost(), 1u);
    EXPECT_EQ(network.partitionDrops(), 0u);

    network.latency().lossProbability = 0.0;
    network.partitionHost("10.0.0.2");
    a->sendTo(net::Address{"10.0.0.2", 7002}, toBytes("y"));
    run();
    EXPECT_EQ(network.datagramsLost(), 1u);
    EXPECT_EQ(network.partitionDrops(), 1u);
    EXPECT_EQ(network.datagramsDropped(), 2u);  // the combined view

    // A SCHEDULED partition episode counts as a partition drop too.
    network.healHost("10.0.0.2");
    net::FaultSchedule schedule;
    schedule.partition(network.now(), net::ms(50), "10.0.0.2");
    network.setFaultSchedule(schedule);
    a->sendTo(net::Address{"10.0.0.2", 7002}, toBytes("z"));
    run();
    EXPECT_EQ(network.partitionDrops(), 2u);
    EXPECT_EQ(network.datagramsLost(), 1u);
}

TEST_F(ResilienceTest, ConnectBlackholeRefusesAndCounts) {
    auto listener = network.listenTcp("10.0.0.2", 8080);
    net::FaultSchedule schedule;
    schedule.blackhole(network.now(), net::ms(100), "10.0.0.2");
    network.setFaultSchedule(schedule);

    bool resolved = false;
    std::shared_ptr<net::TcpConnection> got;
    network.connectTcp("10.0.0.1", net::Address{"10.0.0.2", 8080},
                       [&](std::shared_ptr<net::TcpConnection> connection) {
                           resolved = true;
                           got = std::move(connection);
                       });
    run();
    EXPECT_TRUE(resolved);
    EXPECT_EQ(got, nullptr);
    EXPECT_EQ(network.connectsRefused(), 1u);

    // After the episode expires the same connect succeeds.
    scheduler.schedule(net::ms(200), [&] {
        network.connectTcp("10.0.0.1", net::Address{"10.0.0.2", 8080},
                           [&](std::shared_ptr<net::TcpConnection> connection) {
                               got = std::move(connection);
                           });
    });
    run();
    EXPECT_NE(got, nullptr);
    EXPECT_EQ(network.connectsRefused(), 1u);
}

TEST_F(ResilienceTest, LatencySpikeDelaysDelivery) {
    auto a = network.openUdp("10.0.0.1", 7001);
    auto b = network.openUdp("10.0.0.2", 7002);
    net::FaultSchedule schedule;
    schedule.latencySpike(network.now(), net::ms(100), net::ms(75), "10.0.0.2");
    network.setFaultSchedule(schedule);

    std::optional<net::TimePoint> arrived;
    b->onDatagram([&](const Bytes&, const net::Address&) { arrived = network.now(); });
    const net::TimePoint sent = network.now();
    a->sendTo(net::Address{"10.0.0.2", 7002}, toBytes("slow"));
    run();
    ASSERT_TRUE(arrived);
    EXPECT_GE(*arrived - sent, net::ms(75));
}

// --- client-side retransmission knob ----------------------------------------

TEST_F(ResilienceTest, SlpClientRetransmitKnobRecoversLostRequest) {
    slp::ServiceAgent::Config serviceConfig;
    serviceConfig.responseDelayBase = net::ms(5);
    serviceConfig.responseDelayJitter = net::ms(1);
    slp::ServiceAgent service(network, serviceConfig);

    // The first request dies in a burst; the client's periodic re-send lands
    // after the window.
    net::FaultSchedule schedule;
    schedule.lossBurst(net::TimePoint{}, net::ms(150), 1.0, "10.0.0.2");
    network.setFaultSchedule(schedule);

    slp::UserAgent::Config uaConfig;
    uaConfig.retransmitInterval = net::ms(200);
    uaConfig.timeout = net::ms(5000);
    slp::UserAgent client(network, uaConfig);
    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], service.config().url);
    EXPECT_GE(network.datagramsLost(), 1u);
}

// --- determinism -------------------------------------------------------------

struct RunSignature {
    std::vector<std::tuple<bool, int, std::size_t, std::size_t, std::size_t>> sessions;
    std::size_t sent = 0;
    std::size_t lost = 0;
    std::size_t partitionDrops = 0;
    std::size_t refused = 0;

    bool operator==(const RunSignature&) const = default;
};

/// One full chaos run from fixed seeds: toy bridge + echo service + a client
/// firing pings on a fixed cadence under a generated fault schedule.
RunSignature chaosRun() {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler, /*seed=*/99);
    network.latency().lossProbability = 0.05;
    network.setFaultSchedule(net::FaultSchedule::chaos(
        /*seed=*/7, net::ms(8000), {"10.0.0.1", "10.0.0.3", "10.0.0.9"}));

    bridge::Starlink starlink(network);
    EngineOptions options;
    options.receiveTimeout = net::ms(200);
    options.maxRetransmits = 3;
    options.retransmitJitter = net::ms(50);  // exercise the jittered path too
    options.sessionTimeout = net::ms(2000);
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9", options);

    auto echo = makeEchoService(network);
    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    auto* rawClient = client.get();
    for (int i = 0; i < 8; ++i) {
        scheduler.schedule(net::ms(i * 900), [rawClient, i] {
            rawClient->sendTo(net::Address{"239.9.9.9", 901},
                              toyMessage(1, static_cast<std::uint16_t>(100 + i)));
        });
    }
    scheduler.runUntilIdle(200000);

    RunSignature signature;
    for (const SessionRecord& session : deployed.engine().sessions()) {
        signature.sessions.emplace_back(session.completed, static_cast<int>(session.cause),
                                        session.retransmits, session.messagesIn,
                                        session.messagesOut);
    }
    signature.sent = network.datagramsSent();
    signature.lost = network.datagramsLost();
    signature.partitionDrops = network.partitionDrops();
    signature.refused = network.connectsRefused();
    return signature;
}

TEST(ResilienceDeterminism, IdenticalSeedAndScheduleReproduceIdenticalRuns) {
    const RunSignature first = chaosRun();
    const RunSignature second = chaosRun();
    EXPECT_EQ(first, second);
    // The chaos plan actually did something: traffic flowed and some of it
    // was disturbed.
    EXPECT_GT(first.sent, 0u);
    EXPECT_FALSE(first.sessions.empty());
}

TEST(ResilienceDeterminism, ChaosScheduleIsSeedDeterministicAndSeedSensitive) {
    const auto a1 = net::FaultSchedule::chaos(21, net::ms(5000), {"h1", "h2"});
    const auto a2 = net::FaultSchedule::chaos(21, net::ms(5000), {"h1", "h2"});
    const auto b = net::FaultSchedule::chaos(22, net::ms(5000), {"h1", "h2"});
    ASSERT_EQ(a1.episodes().size(), a2.episodes().size());
    for (std::size_t i = 0; i < a1.episodes().size(); ++i) {
        EXPECT_EQ(static_cast<int>(a1.episodes()[i].kind),
                  static_cast<int>(a2.episodes()[i].kind));
        EXPECT_EQ(a1.episodes()[i].start, a2.episodes()[i].start);
        EXPECT_EQ(a1.episodes()[i].length, a2.episodes()[i].length);
        EXPECT_EQ(a1.episodes()[i].host, a2.episodes()[i].host);
    }
    // A different seed yields a different plan (episode makeup or timing).
    bool differs = b.episodes().size() != a1.episodes().size();
    for (std::size_t i = 0; !differs && i < b.episodes().size(); ++i) {
        differs = b.episodes()[i].start != a1.episodes()[i].start ||
                  b.episodes()[i].kind != a1.episodes()[i].kind;
    }
    EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace starlink::engine
