// Tests for passive behaviour/color learning (paper section VII future
// work): prefix-tree automaton construction and majority-vote color
// inference, including learning the SLP automaton from real engine traffic.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/automata/learner.hpp"
#include "core/bridge/models.hpp"
#include "core/merge/spec_loader.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "sim_fixture.hpp"

namespace starlink::automata {
namespace {

using testing::SimTest;

Color anyColor() {
    return Color{{keys::transport, "udp"}, {keys::port, "427"}, {keys::multicast, "yes"},
                 {keys::group, "239.255.255.253"}, {keys::mode, "async"}};
}

TEST(BehaviourLearner, LearnsLinearChainFromOneSession) {
    BehaviourLearner learner;
    learner.observeSession({{Action::Receive, "Req"}, {Action::Send, "Rep"}});
    ColorRegistry registry;
    const auto automaton = learner.build("L", anyColor(), registry);
    EXPECT_EQ(automaton->states().size(), 3u);
    EXPECT_EQ(automaton->initialState(), "q0");
    EXPECT_EQ(automaton->acceptingStates(), (std::vector<std::string>{"q2"}));
    ASSERT_NE(automaton->transitionFor("q0", Action::Receive, "Req"), nullptr);
    ASSERT_NE(automaton->transitionFor("q1", Action::Send, "Rep"), nullptr);
}

TEST(BehaviourLearner, IdenticalSessionsCollapse) {
    BehaviourLearner learner;
    for (int i = 0; i < 50; ++i) {
        learner.observeSession({{Action::Receive, "Req"}, {Action::Send, "Rep"}});
    }
    EXPECT_EQ(learner.sessionsObserved(), 50u);
    EXPECT_EQ(learner.stateCount(), 3u);
}

TEST(BehaviourLearner, DivergentSessionsBranchDeterministically) {
    BehaviourLearner learner;
    learner.observeSession({{Action::Receive, "Req"}, {Action::Send, "RepA"}});
    learner.observeSession({{Action::Receive, "Req"}, {Action::Send, "RepB"}});
    ColorRegistry registry;
    const auto automaton = learner.build("L", anyColor(), registry);
    EXPECT_EQ(automaton->states().size(), 4u);  // q0, q1, two leaves
    EXPECT_EQ(automaton->acceptingStates().size(), 2u);
    EXPECT_NO_THROW(automaton->validate());  // deterministic by construction
}

TEST(BehaviourLearner, PrefixSessionsMarkIntermediateAccepting) {
    BehaviourLearner learner;
    learner.observeSession({{Action::Receive, "Req"}});
    learner.observeSession({{Action::Receive, "Req"}, {Action::Send, "Rep"}});
    ColorRegistry registry;
    const auto automaton = learner.build("L", anyColor(), registry);
    EXPECT_EQ(automaton->states().size(), 3u);
    EXPECT_EQ(automaton->acceptingStates().size(), 2u);  // q1 and q2
}

TEST(BehaviourLearner, EmptyLearnerThrows) {
    BehaviourLearner learner;
    ColorRegistry registry;
    EXPECT_THROW(learner.build("L", anyColor(), registry), SpecError);
}

TEST(BehaviourLearner, LearnedSlpMatchesHandModel) {
    // Observing the canonical SLP server conversation must reproduce the
    // structure of the built-in Fig 1 automaton.
    BehaviourLearner learner;
    learner.observeSession(
        {{Action::Receive, "SLPSrvRequest"}, {Action::Send, "SLPSrvReply"}});
    ColorRegistry registry;
    const auto learned = learner.build("SLP", anyColor(), registry, "s1");
    const auto hand = merge::loadAutomaton(
        bridge::models::slpAutomaton(bridge::models::Role::Server), registry);
    ASSERT_EQ(learned->states().size(), hand->states().size());
    ASSERT_EQ(learned->transitions().size(), hand->transitions().size());
    for (std::size_t i = 0; i < hand->transitions().size(); ++i) {
        EXPECT_EQ(learned->transitions()[i].action, hand->transitions()[i].action);
        EXPECT_EQ(learned->transitions()[i].messageType, hand->transitions()[i].messageType);
    }
    EXPECT_EQ(learned->color(), hand->color());  // same descriptor, same k
}

// --- color inference ------------------------------------------------------------

TEST(ColorInference, MajorityVote) {
    ColorInference inference;
    ColorInference::PacketFacts facts;
    facts.transport = "udp";
    facts.destinationPort = 427;
    facts.multicast = true;
    facts.group = "239.255.255.253";
    for (int i = 0; i < 9; ++i) inference.observePacket(facts);
    // One noisy unicast reply packet.
    ColorInference::PacketFacts reply;
    reply.transport = "udp";
    reply.destinationPort = 50000;
    reply.multicast = false;
    inference.observePacket(reply);

    const Color color = inference.infer();
    EXPECT_EQ(color.transport(), "udp");
    EXPECT_EQ(color.port(), 427);
    EXPECT_TRUE(color.isMulticast());
    EXPECT_EQ(color.group(), "239.255.255.253");
    EXPECT_FALSE(color.isSync());
}

TEST(ColorInference, TcpSyncInference) {
    ColorInference inference;
    ColorInference::PacketFacts facts;
    facts.transport = "tcp";
    facts.destinationPort = 80;
    facts.synchronous = true;
    inference.observePacket(facts);
    const Color color = inference.infer();
    EXPECT_EQ(color.transport(), "tcp");
    EXPECT_TRUE(color.isSync());
    EXPECT_FALSE(color.isMulticast());
}

TEST(ColorInference, EmptyThrows) {
    ColorInference inference;
    EXPECT_THROW(inference.infer(), SpecError);
}

// --- learning from live traffic ----------------------------------------------------

class LiveLearningTest : public SimTest {};

TEST_F(LiveLearningTest, LearnsSlpServerBehaviourFromObservedTraffic) {
    // A monitoring point on the SLP group records the service side of real
    // conversations; the learner rebuilds the Fig 1 automaton and color.
    slp::ServiceAgent::Config serviceConfig;
    serviceConfig.responseDelayBase = net::ms(5);
    slp::ServiceAgent service(network, serviceConfig);
    slp::UserAgent client(network, {});

    BehaviourLearner learner;
    ColorInference colors;
    std::vector<ObservedEvent> session;

    // Monitor: a socket in the request group plus interpretation of the
    // observed exchange from the service's perspective.
    auto monitor = network.openUdp("10.0.0.77", slp::kPort);
    monitor->joinGroup(net::Address{slp::kGroup, slp::kPort});
    monitor->onDatagram([&](const Bytes& payload, const net::Address&) {
        if (slp::peekFunction(payload) == slp::kFnSrvRqst) {
            session.push_back({Action::Receive, "SLPSrvRequest"});
            ColorInference::PacketFacts facts;
            facts.transport = "udp";
            facts.destinationPort = slp::kPort;
            facts.multicast = true;
            facts.group = slp::kGroup;
            colors.observePacket(facts);
        }
    });

    for (int i = 0; i < 3; ++i) {
        bool replied = false;
        client.lookup("service:printer", [&replied](const slp::UserAgent::Result& result) {
            replied = !result.urls.empty();
        });
        run();
        ASSERT_TRUE(replied);
        // The unicast reply is not multicast-visible; the monitor learns it
        // from the service's send (here: appended from ground truth, as a
        // tap on the service host would).
        session.push_back({Action::Send, "SLPSrvReply"});
        learner.observeSession(session);
        session.clear();
    }

    ColorRegistry registry;
    const auto automaton = learner.build("SLP-learned", colors.infer(), registry, "s1");
    EXPECT_EQ(automaton->states().size(), 3u);
    const Color* inferred = registry.lookup(automaton->color());
    ASSERT_NE(inferred, nullptr);
    EXPECT_EQ(inferred->port(), 427);
    EXPECT_EQ(inferred->group(), slp::kGroup);
}

}  // namespace
}  // namespace starlink::automata
