// Unit tests for k-colored automata: colors and the perfect hash f, state
// queues, transitions, validation, the history operator (paper section III-B,
// experiment E4).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/automata/colored_automaton.hpp"
#include "core/automata/trace.hpp"

namespace starlink::automata {
namespace {

Color slpColor() {
    return Color{{keys::transport, "udp"},
                 {keys::port, "427"},
                 {keys::mode, "async"},
                 {keys::multicast, "yes"},
                 {keys::group, "239.255.255.253"}};
}

Color ssdpColor() {
    return Color{{keys::transport, "udp"},
                 {keys::port, "1900"},
                 {keys::mode, "async"},
                 {keys::multicast, "yes"},
                 {keys::group, "239.255.255.250"}};
}

TEST(Color, CanonicalKeyIsOrderIndependent) {
    Color a;
    a.set("port", "427");
    a.set("transport_protocol", "udp");
    Color b;
    b.set("transport_protocol", "udp");
    b.set("port", "427");
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
    EXPECT_EQ(a, b);
}

TEST(Color, SetReplacesValue) {
    Color c;
    c.set("port", "427");
    c.set("port", "1900");
    EXPECT_EQ(c.get("port"), "1900");
    EXPECT_EQ(c.entries().size(), 1u);
}

TEST(Color, TypedAccessors) {
    const Color c = slpColor();
    EXPECT_EQ(c.transport(), "udp");
    EXPECT_EQ(c.port(), 427);
    EXPECT_TRUE(c.isMulticast());
    EXPECT_FALSE(c.isSync());
    EXPECT_EQ(c.group(), "239.255.255.253");
}

TEST(Color, BadPortIsNullopt) {
    Color c;
    c.set(keys::port, "99999");
    EXPECT_FALSE(c.port());
    c.set(keys::port, "abc");
    EXPECT_FALSE(c.port());
}

TEST(ColorRegistry, EqualColorsShareK) {
    ColorRegistry registry;
    EXPECT_EQ(registry.colorOf(slpColor()), registry.colorOf(slpColor()));
}

TEST(ColorRegistry, DistinctColorsGetDistinctK) {
    ColorRegistry registry;
    EXPECT_NE(registry.colorOf(slpColor()), registry.colorOf(ssdpColor()));
}

TEST(ColorRegistry, LookupReturnsDescriptor) {
    ColorRegistry registry;
    const std::uint64_t k = registry.colorOf(slpColor());
    const Color* color = registry.lookup(k);
    ASSERT_NE(color, nullptr);
    EXPECT_EQ(*color, slpColor());
    EXPECT_EQ(registry.lookup(k + 1), nullptr);
}

TEST(ColorRegistry, PerfectHashPropertySweep) {
    // f must be injective over many random tuple lists (paper: "a perfect
    // hash function... without collisions").
    ColorRegistry registry;
    Rng rng(5);
    std::map<std::uint64_t, std::string> seen;
    for (int i = 0; i < 2000; ++i) {
        Color c;
        c.set("port", std::to_string(rng.range(1, 65535)));
        c.set("transport_protocol", rng.chance(0.5) ? "udp" : "tcp");
        c.set("salt", std::to_string(rng.range(0, 1 << 20)));
        const std::uint64_t k = registry.colorOf(c);
        const auto [it, inserted] = seen.emplace(k, c.canonicalKey());
        if (!inserted) {
            EXPECT_EQ(it->second, c.canonicalKey());  // same k => same descriptor
        }
    }
}

// --- automaton ----------------------------------------------------------------

class AutomatonTest : public ::testing::Test {
protected:
    ColorRegistry registry;

    ColoredAutomaton makeSlpServer() {
        ColoredAutomaton automaton("SLP");
        automaton.addState("s10", slpColor(), registry);
        automaton.addState("s11", slpColor(), registry);
        automaton.addState("s12", slpColor(), registry, /*accepting=*/true);
        automaton.setInitial("s10");
        automaton.addTransition("s10", Action::Receive, "SLPSrvRequest", "s11");
        automaton.addTransition("s11", Action::Send, "SLPSrvReply", "s12");
        return automaton;
    }
};

TEST_F(AutomatonTest, ValidatesWellFormed) {
    ColoredAutomaton automaton = makeSlpServer();
    EXPECT_NO_THROW(automaton.validate());
    EXPECT_EQ(automaton.acceptingStates(), (std::vector<std::string>{"s12"}));
    EXPECT_EQ(automaton.states().size(), 3u);
}

TEST_F(AutomatonTest, TransitionLookup) {
    ColoredAutomaton automaton = makeSlpServer();
    const Transition* t = automaton.transitionFor("s10", Action::Receive, "SLPSrvRequest");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->to, "s11");
    EXPECT_EQ(automaton.transitionFor("s10", Action::Send, "SLPSrvRequest"), nullptr);
    EXPECT_EQ(automaton.transitionFor("s10", Action::Receive, "Other"), nullptr);
    EXPECT_EQ(automaton.transitionsFrom("s10").size(), 1u);
}

TEST_F(AutomatonTest, DuplicateStateThrows) {
    ColoredAutomaton automaton("A");
    automaton.addState("s", slpColor(), registry);
    EXPECT_THROW(automaton.addState("s", slpColor(), registry), SpecError);
}

TEST_F(AutomatonTest, MissingInitialFailsValidation) {
    ColoredAutomaton automaton("A");
    automaton.addState("s", slpColor(), registry, true);
    EXPECT_THROW(automaton.validate(), SpecError);
}

TEST_F(AutomatonTest, NoAcceptingFailsValidation) {
    ColoredAutomaton automaton("A");
    automaton.addState("s", slpColor(), registry);
    automaton.setInitial("s");
    EXPECT_THROW(automaton.validate(), SpecError);
}

TEST_F(AutomatonTest, MixedColorsFailValidation) {
    // The paper: an automaton passes between states "only if the concerned
    // states share the same color".
    ColoredAutomaton automaton("A");
    automaton.addState("a", slpColor(), registry);
    automaton.addState("b", ssdpColor(), registry, true);
    automaton.setInitial("a");
    automaton.addTransition("a", Action::Send, "M", "b");
    EXPECT_THROW(automaton.validate(), SpecError);
}

TEST_F(AutomatonTest, UnknownTransitionEndpointFailsValidation) {
    ColoredAutomaton automaton("A");
    automaton.addState("a", slpColor(), registry, true);
    automaton.setInitial("a");
    automaton.addTransition("a", Action::Send, "M", "ghost");
    EXPECT_THROW(automaton.validate(), SpecError);
}

TEST_F(AutomatonTest, NondeterminismFailsValidation) {
    ColoredAutomaton automaton("A");
    automaton.addState("a", slpColor(), registry);
    automaton.addState("b", slpColor(), registry, true);
    automaton.addState("c", slpColor(), registry, true);
    automaton.setInitial("a");
    automaton.addTransition("a", Action::Receive, "M", "b");
    automaton.addTransition("a", Action::Receive, "M", "c");
    EXPECT_THROW(automaton.validate(), SpecError);
}

TEST_F(AutomatonTest, UnreachableStateFailsValidation) {
    ColoredAutomaton automaton("A");
    automaton.addState("a", slpColor(), registry, true);
    automaton.addState("island", slpColor(), registry);
    automaton.setInitial("a");
    EXPECT_THROW(automaton.validate(), SpecError);
}

TEST_F(AutomatonTest, QueueStoresAndFindsLatestInstance) {
    ColoredAutomaton automaton = makeSlpServer();
    State* s11 = automaton.state("s11");
    AbstractMessage first("SLPSrvRequest");
    first.setValue("XID", Value::ofInt(1), "Integer");
    AbstractMessage second("SLPSrvRequest");
    second.setValue("XID", Value::ofInt(2), "Integer");
    s11->pushMessage(first);
    s11->pushMessage(second);
    const AbstractMessage* found = s11->message("SLPSrvRequest");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->value("XID")->asInt(), 2);  // latest wins
    EXPECT_EQ(s11->message("Other"), nullptr);
    EXPECT_EQ(s11->messages().size(), 2u);
    automaton.reset();
    EXPECT_TRUE(s11->messages().empty());
}

// --- history operator ------------------------------------------------------------

TEST(TraceHistory, CollectsActionFilteredSegment) {
    Trace trace;
    AbstractMessage rq("Rq");
    AbstractMessage rs("Rs");
    trace.record({"A", "s0", "s1", Action::Receive, rq});
    trace.record({"A", "s1", "s2", std::nullopt, AbstractMessage()});  // delta
    trace.record({"B", "s2", "s3", Action::Send, rs});
    trace.record({"B", "s3", "s4", Action::Receive, rq});

    const auto received = trace.history("s0", "s4", Action::Receive);
    ASSERT_EQ(received.size(), 2u);
    EXPECT_EQ(received[0].type(), "Rq");

    const auto sent = trace.history("s0", "s4", Action::Send);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type(), "Rs");

    EXPECT_EQ(trace.historyAll("s0", "s4").size(), 3u);  // deltas excluded
}

TEST(TraceHistory, MissingSegmentIsEmpty) {
    Trace trace;
    trace.record({"A", "s0", "s1", Action::Receive, AbstractMessage("M")});
    EXPECT_TRUE(trace.history("s5", "s1", Action::Receive).empty());
    EXPECT_TRUE(trace.history("s0", "s9", Action::Receive).empty());
    EXPECT_TRUE(Trace().history("a", "b", Action::Send).empty());
}

TEST(TraceHistory, UsesLastDeparture) {
    Trace trace;
    trace.record({"A", "s0", "s1", Action::Receive, AbstractMessage("First")});
    trace.record({"A", "s1", "s0", Action::Send, AbstractMessage("Back")});
    trace.record({"A", "s0", "s1", Action::Receive, AbstractMessage("Second")});
    const auto received = trace.history("s0", "s1", Action::Receive);
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].type(), "Second");
}

}  // namespace
}  // namespace starlink::automata
