// Unit tests for the XML substrate: DOM, parser, writer, XPath-lite.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"
#include "xml/xpath.hpp"

namespace starlink::xml {
namespace {

TEST(XmlParser, SimpleElement) {
    const auto root = parse("<a>hello</a>");
    EXPECT_EQ(root->name(), "a");
    EXPECT_EQ(root->text(), "hello");
}

TEST(XmlParser, Attributes) {
    const auto root = parse(R"(<a x="1" y='two'/>)");
    EXPECT_EQ(root->attribute("x"), "1");
    EXPECT_EQ(root->attribute("y"), "two");
    EXPECT_FALSE(root->attribute("z"));
}

TEST(XmlParser, NestedChildren) {
    const auto root = parse("<a><b>1</b><c/><b>2</b></a>");
    EXPECT_EQ(root->children().size(), 3u);
    EXPECT_EQ(root->childText("b"), "1");
    EXPECT_EQ(root->childrenNamed("b").size(), 2u);
    EXPECT_NE(root->child("c"), nullptr);
}

TEST(XmlParser, EntitiesDecoded) {
    const auto root = parse("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos; &#65;&#x42;</a>");
    EXPECT_EQ(root->text(), "<x> & \"y\" 'z' AB");
}

TEST(XmlParser, EntityInAttribute) {
    const auto root = parse(R"(<a v="&quot;ssdp:discover&quot;"/>)");
    EXPECT_EQ(root->attribute("v"), "\"ssdp:discover\"");
}

TEST(XmlParser, CommentsAndDeclarationSkipped) {
    const auto root = parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- inner -->x</a>");
    EXPECT_EQ(root->name(), "a");
    EXPECT_EQ(root->text(), "x");
}

TEST(XmlParser, MalformedThrows) {
    EXPECT_THROW(parse("<a>"), SpecError);
    EXPECT_THROW(parse("<a></b>"), SpecError);
    EXPECT_THROW(parse("<a x=1/>"), SpecError);
    EXPECT_THROW(parse("<a/><b/>"), SpecError);
    EXPECT_THROW(parse("<a>&unknown;</a>"), SpecError);
    EXPECT_THROW(parse(""), SpecError);
}

TEST(XmlParser, ErrorCarriesPosition) {
    try {
        parse("<a>\n  <b>\n</a>");
        FAIL() << "expected SpecError";
    } catch (const SpecError& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(XmlWriter, RoundTripStructure) {
    const std::string doc =
        R"(<Bridge name="b"><Field a="1">text &amp; more</Field><Empty/></Bridge>)";
    const auto parsed = parse(doc);
    const auto reparsed = parse(write(*parsed));
    EXPECT_TRUE(parsed->structurallyEquals(*reparsed));
}

TEST(XmlWriter, EscapesSpecials) {
    Node node("a");
    node.setText("<&>");
    node.setAttribute("k", "a\"b");
    const auto reparsed = parse(write(node));
    EXPECT_EQ(reparsed->text(), "<&>");
    EXPECT_EQ(reparsed->attribute("k"), "a\"b");
}

TEST(XmlDom, CloneIsDeep) {
    const auto root = parse("<a><b c=\"1\">x</b></a>");
    const auto copy = root->clone();
    EXPECT_TRUE(root->structurallyEquals(*copy));
    copy->child("b")->setText("y");
    EXPECT_EQ(root->childText("b"), "x");
}

TEST(XmlDom, SetAttributeReplaces) {
    Node node("a");
    node.setAttribute("k", "1");
    node.setAttribute("k", "2");
    EXPECT_EQ(node.attribute("k"), "2");
    EXPECT_EQ(node.attributes().size(), 1u);
}

// --- XPath-lite ---------------------------------------------------------------

TEST(Xpath, SelectsByLabelPredicate) {
    const auto root = parse(
        "<field>"
        "<primitiveField><label>ST</label><value>urn:x</value></primitiveField>"
        "<primitiveField><label>MX</label><value>2</value></primitiveField>"
        "</field>");
    const auto path = Path::compile("/field/primitiveField[label='MX']/value");
    const Node* node = path.first(*root);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->text(), "2");
}

TEST(Xpath, SelectsNestedStructuredField) {
    const auto root = parse(
        "<field>"
        "<structuredField><label>URL</label>"
        "<primitiveField><label>port</label><value>80</value></primitiveField>"
        "</structuredField>"
        "</field>");
    const auto path = Path::compile(
        "/field/structuredField[label='URL']/primitiveField[label='port']/value");
    const Node* node = path.first(*root);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->text(), "80");
}

TEST(Xpath, AttributePredicate) {
    const auto root = parse(R"(<a><b k="1">x</b><b k="2">y</b></a>)");
    EXPECT_EQ(Path::compile("/a/b[@k='2']").first(*root)->text(), "y");
}

TEST(Xpath, PositionPredicate) {
    const auto root = parse("<a><b>x</b><c/><b>y</b></a>");
    EXPECT_EQ(Path::compile("/a/b[2]").first(*root)->text(), "y");
    EXPECT_EQ(Path::compile("/a/b[1]").first(*root)->text(), "x");
}

TEST(Xpath, NoMatchReturnsEmpty) {
    const auto root = parse("<a><b/></a>");
    EXPECT_EQ(Path::compile("/a/zzz").first(*root), nullptr);
    EXPECT_EQ(Path::compile("/wrongroot/b").first(*root), nullptr);
}

TEST(Xpath, SelectOrCreateMaterialisesPath) {
    auto root = parse("<field/>");
    const auto path = Path::compile("/field/primitiveField[label='ST']/value");
    Node* value = path.selectOrCreate(*root);
    ASSERT_NE(value, nullptr);
    value->setText("urn:y");
    // Now a plain select finds it, and the predicate child exists.
    EXPECT_EQ(path.first(*root)->text(), "urn:y");
    EXPECT_EQ(root->child("primitiveField")->childText("label"), "ST");
}

TEST(Xpath, SelectOrCreateReusesExisting) {
    auto root = parse(
        "<field><primitiveField><label>ST</label><value>old</value></primitiveField></field>");
    const auto path = Path::compile("/field/primitiveField[label='ST']/value");
    path.selectOrCreate(*root)->setText("new");
    EXPECT_EQ(root->children().size(), 1u);
    EXPECT_EQ(path.first(*root)->text(), "new");
}

TEST(Xpath, CompileErrors) {
    EXPECT_THROW(Path::compile(""), SpecError);
    EXPECT_THROW(Path::compile("nounslash"), SpecError);
    EXPECT_THROW(Path::compile("/a/b["), SpecError);
    EXPECT_THROW(Path::compile("/a/b[label='x'"), SpecError);
    EXPECT_THROW(Path::compile("/a/b[0]"), SpecError);
}

TEST(Xpath, SelectAllMatches) {
    const auto root = parse("<a><b>1</b><b>2</b></a>");
    const auto nodes = Path::compile("/a/b").select(*root);
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0]->text(), "1");
    EXPECT_EQ(nodes[1]->text(), "2");
}

}  // namespace
}  // namespace starlink::xml
