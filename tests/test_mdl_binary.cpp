// Unit and property tests for the binary MDL interpreter: bit I/O,
// marshallers, spec loading, and the generic parser/composer against the
// built-in SLP and DNS MDLs (paper Fig 7, experiment E7).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/bridge/models.hpp"
#include "core/mdl/codec.hpp"
#include "protocols/mdns/dns_codec.hpp"
#include "protocols/slp/slp_codec.hpp"

namespace starlink::mdl {
namespace {

// --- bit I/O -----------------------------------------------------------------

TEST(BitIo, WriteReadAcrossByteBoundaries) {
    BitWriter writer;
    writer.writeBits(0b101, 3);
    writer.writeBits(0b11111, 5);
    writer.writeBits(0x1234, 16);
    Bytes data = writer.take();
    ASSERT_EQ(data.size(), 3u);

    BitReader reader(data);
    EXPECT_EQ(reader.readBits(3), 0b101u);
    EXPECT_EQ(reader.readBits(5), 0b11111u);
    EXPECT_EQ(reader.readBits(16), 0x1234u);
    EXPECT_TRUE(reader.atEnd());
}

TEST(BitIo, RandomRoundTripProperty) {
    Rng rng(2024);
    for (int round = 0; round < 100; ++round) {
        std::vector<std::pair<std::uint64_t, int>> fields;
        BitWriter writer;
        const int count = static_cast<int>(rng.range(1, 20));
        for (int i = 0; i < count; ++i) {
            const int bits = static_cast<int>(rng.range(1, 63));
            const std::uint64_t value = bits == 63 ? rng.next() >> 1 : rng.next() % (1ULL << bits);
            writer.writeBits(value, bits);
            fields.emplace_back(value, bits);
        }
        const Bytes data = writer.take();
        BitReader reader(data);
        for (const auto& [value, bits] : fields) {
            ASSERT_EQ(reader.readBits(bits), value);
        }
    }
}

TEST(BitIo, ReadPastEndReturnsNullopt) {
    const Bytes data{0xff};
    BitReader reader(data);
    EXPECT_TRUE(reader.readBits(8));
    EXPECT_FALSE(reader.readBits(1));
}

TEST(BitIo, ReadBytesAlignedAndUnaligned) {
    BitWriter writer;
    writer.writeBits(0b1010, 4);
    writer.writeBytes(toBytes("xy"));
    const Bytes data = writer.take();
    BitReader reader(data);
    EXPECT_EQ(reader.readBits(4), 0b1010u);
    EXPECT_EQ(reader.readBytes(2), toBytes("xy"));
}

TEST(BitIo, PatchBits) {
    BitWriter writer;
    writer.writeBits(0, 24);
    writer.writeBytes(toBytes("abc"));
    writer.patchBits(0, 6, 24);
    const Bytes data = writer.take();
    BitReader reader(data);
    EXPECT_EQ(reader.readBits(24), 6u);
}

TEST(BitIo, PatchBeyondWrittenThrows) {
    BitWriter writer;
    writer.writeBits(0, 8);
    EXPECT_THROW(writer.patchBits(4, 1, 8), SpecError);
}

TEST(BitIo, BadBitCountThrows) {
    BitWriter writer;
    EXPECT_THROW(writer.writeBits(0, 0), SpecError);
    EXPECT_THROW(writer.writeBits(0, 65), SpecError);
    const Bytes data{0x00};
    BitReader reader(data);
    EXPECT_THROW(reader.readBits(0), SpecError);
}

// --- marshallers ----------------------------------------------------------------

TEST(Marshallers, IntegerRejectsOverflow) {
    IntegerMarshaller m;
    BitWriter writer;
    EXPECT_THROW(m.write(writer, Value::ofInt(256), 8), ProtocolError);
    EXPECT_THROW(m.write(writer, Value::ofInt(-1), 8), ProtocolError);
    EXPECT_NO_THROW(m.write(writer, Value::ofInt(255), 8));
}

TEST(Marshallers, StringRequiresExactFit) {
    StringMarshaller m;
    BitWriter writer;
    EXPECT_THROW(m.write(writer, Value::ofString("abc"), 16), ProtocolError);
    EXPECT_NO_THROW(m.write(writer, Value::ofString("ab"), 16));
}

TEST(Marshallers, FqdnRoundTrip) {
    FqdnMarshaller m;
    for (const std::string name : {"_printer._tcp.local", "a.b", "local", ""}) {
        BitWriter writer;
        m.write(writer, Value::ofString(name), std::nullopt);
        const Bytes data = writer.take();
        EXPECT_EQ(static_cast<int>(data.size() * 8),
                  m.encodedBits(Value::ofString(name), std::nullopt));
        BitReader reader(data);
        const auto back = m.read(reader, std::nullopt);
        ASSERT_TRUE(back);
        EXPECT_EQ(back->asString(), name);
    }
}

TEST(Marshallers, FqdnMatchesLegacyDnsEncoding) {
    // The pluggable FQDN marshaller must agree with the hand-written legacy
    // DNS codec byte for byte.
    const auto legacy = mdns::encode(mdns::makeQuestion(7, "_printer._tcp.local"));
    FqdnMarshaller m;
    BitWriter writer;
    m.write(writer, Value::ofString("_printer._tcp.local"), std::nullopt);
    const Bytes name = writer.take();
    // QNAME begins at offset 12 in a DNS message.
    ASSERT_LE(12 + name.size(), legacy.size());
    EXPECT_TRUE(std::equal(name.begin(), name.end(), legacy.begin() + 12));
}

TEST(Marshallers, FqdnRejectsOversizedLabel) {
    FqdnMarshaller m;
    BitWriter writer;
    const std::string big(64, 'a');
    EXPECT_THROW(m.write(writer, Value::ofString(big + ".local"), std::nullopt), ProtocolError);
}

TEST(Marshallers, RegistryDefaultsAndExtension) {
    auto registry = MarshallerRegistry::withDefaults();
    EXPECT_NE(registry->find("Integer"), nullptr);
    EXPECT_NE(registry->find("String"), nullptr);
    EXPECT_NE(registry->find("FQDN"), nullptr);
    EXPECT_EQ(registry->find("Nope"), nullptr);
    registry->add("Nope", std::make_shared<StringMarshaller>());
    EXPECT_NE(registry->find("Nope"), nullptr);
}

// --- spec loading -----------------------------------------------------------------

TEST(MdlSpec, LoadsBuiltInSlp) {
    const MdlDocument doc = MdlDocument::fromXml(bridge::models::slpMdl());
    EXPECT_EQ(doc.protocol(), "SLP");
    EXPECT_EQ(doc.kind(), MdlKind::Binary);
    ASSERT_NE(doc.message("SLPSrvRequest"), nullptr);
    ASSERT_NE(doc.message("SLPSrvReply"), nullptr);
    EXPECT_EQ(doc.message("Nope"), nullptr);
    EXPECT_EQ(doc.mandatoryFields("SLPSrvRequest"),
              (std::vector<std::string>{"XID", "SRVType"}));
    EXPECT_EQ(doc.mandatoryFields("SLPSrvReply"),
              (std::vector<std::string>{"XID", "URLEntry"}));
}

TEST(MdlSpec, TypeFunctionsParsed) {
    const MdlDocument doc = MdlDocument::fromXml(bridge::models::slpMdl());
    const TypeDef* msgLength = doc.type("MessageLength");
    ASSERT_NE(msgLength, nullptr);
    EXPECT_EQ(msgLength->function, "f-msglength");
    const TypeDef* urlLength = doc.type("URLLength");
    ASSERT_NE(urlLength, nullptr);
    EXPECT_EQ(urlLength->function, "f-length");
    EXPECT_EQ(urlLength->functionArg, "URLEntry");
}

TEST(MdlSpec, RejectsMalformedDocuments) {
    EXPECT_THROW(MdlDocument::fromXml("<NotMdl/>"), SpecError);
    EXPECT_THROW(MdlDocument::fromXml("<Mdl kind='binary'><Header type='X'/></Mdl>"),
                 SpecError);  // no messages
    EXPECT_THROW(MdlDocument::fromXml(
                     "<Mdl kind='binary'><Message type='M'><A>8</A></Message></Mdl>"),
                 SpecError);  // no header
    EXPECT_THROW(MdlDocument::fromXml("<Mdl kind='nope'><Header/><Message type='M'/></Mdl>"),
                 SpecError);  // bad kind
}

TEST(MdlSpec, RejectsRuleOnUnknownField) {
    EXPECT_THROW(MdlDocument::fromXml(R"(<Mdl kind="binary">
        <Header type="X"><A>8</A></Header>
        <Message type="M"><Rule>Nope=1</Rule></Message></Mdl>)"),
                 SpecError);
}

TEST(MdlSpec, RejectsForwardLengthReference) {
    EXPECT_THROW(MdlDocument::fromXml(R"(<Mdl kind="binary">
        <Header type="X"><A>B</A><B>16</B></Header>
        <Message type="M"><Rule>B=1</Rule></Message></Mdl>)"),
                 SpecError);
}

TEST(MdlSpec, RejectsDuplicateField) {
    EXPECT_THROW(MdlDocument::fromXml(R"(<Mdl kind="binary">
        <Header type="X"><A>8</A><A>8</A></Header>
        <Message type="M"/></Mdl>)"),
                 SpecError);
}

// --- codec: SLP -----------------------------------------------------------------

class SlpCodecTest : public ::testing::Test {
protected:
    std::shared_ptr<MessageCodec> codec = MessageCodec::fromXml(bridge::models::slpMdl());
};

TEST_F(SlpCodecTest, ParsesLegacyRequest) {
    slp::SrvRequest request;
    request.xid = 301;
    request.serviceType = "service:printer";
    const auto message = codec->parse(slp::encode(request));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "SLPSrvRequest");
    EXPECT_EQ(message->value("XID")->asInt(), 301);
    EXPECT_EQ(message->value("SRVType")->asString(), "service:printer");
    EXPECT_EQ(message->value("Version")->asInt(), 2);
    EXPECT_EQ(message->value("LangTag")->asString(), "en");
}

TEST_F(SlpCodecTest, ParsesLegacyReply) {
    slp::SrvReply reply;
    reply.xid = 77;
    reply.url = "service:printer://10.0.0.2:515/q";
    const auto message = codec->parse(slp::encode(reply));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "SLPSrvReply");
    EXPECT_EQ(message->value("XID")->asInt(), 77);
    EXPECT_EQ(message->value("URLEntry")->asString(), "service:printer://10.0.0.2:515/q");
    EXPECT_EQ(message->value("ErrorCode")->asInt(), 0);
}

TEST_F(SlpCodecTest, ComposedRequestDecodableByLegacyStack) {
    AbstractMessage message("SLPSrvRequest");
    message.setValue("XID", Value::ofInt(55), "Integer");
    message.setValue("SRVType", Value::ofString("service:printer"));
    const Bytes wire = codec->compose(message);
    const auto decoded = slp::decodeRequest(wire);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->xid, 55);
    EXPECT_EQ(decoded->serviceType, "service:printer");
    EXPECT_EQ(decoded->langTag, "en");  // MDL default
}

TEST_F(SlpCodecTest, ComposedReplyDecodableByLegacyStack) {
    AbstractMessage message("SLPSrvReply");
    message.setValue("XID", Value::ofInt(56), "Integer");
    message.setValue("URLEntry", Value::ofString("http://10.0.0.3:8080/x"));
    const Bytes wire = codec->compose(message);
    const auto decoded = slp::decodeReply(wire);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->xid, 56);
    EXPECT_EQ(decoded->url, "http://10.0.0.3:8080/x");
    EXPECT_EQ(decoded->errorCode, 0);
}

TEST_F(SlpCodecTest, ParseComposeRoundTripProperty) {
    Rng rng(31337);
    const std::string alphabet = "abcdefghijklmnopqrstuvwxyz:/._-";
    auto randomText = [&rng, &alphabet](int maxLength) {
        std::string out;
        const int length = static_cast<int>(rng.range(0, maxLength));
        for (int i = 0; i < length; ++i) {
            out.push_back(alphabet[static_cast<std::size_t>(
                rng.range(0, static_cast<std::int64_t>(alphabet.size() - 1)))]);
        }
        return out;
    };
    for (int round = 0; round < 100; ++round) {
        slp::SrvRequest request;
        request.xid = static_cast<std::uint16_t>(rng.range(0, 65535));
        request.serviceType = "service:" + randomText(20);
        request.prList = randomText(15);
        request.predicate = randomText(15);
        request.spi = randomText(10);
        const Bytes original = slp::encode(request);
        const auto message = codec->parse(original);
        ASSERT_TRUE(message) << "round " << round;
        const Bytes recomposed = codec->compose(*message);
        EXPECT_EQ(recomposed, original) << "round " << round;
    }
}

TEST_F(SlpCodecTest, MessageLengthBackpatched) {
    AbstractMessage message("SLPSrvReply");
    message.setValue("XID", Value::ofInt(1), "Integer");
    message.setValue("URLEntry", Value::ofString("0123456789"));
    const Bytes wire = codec->compose(message);
    std::uint64_t length = 0;
    ASSERT_TRUE(readUint(wire, 2, 3, length));
    EXPECT_EQ(length, wire.size());
}

TEST_F(SlpCodecTest, ParseFailuresReturnNulloptWithDiagnostics) {
    std::string error;
    EXPECT_FALSE(codec->parse({}, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(codec->parse(toBytes("not slp at all"), &error));
    // Truncated real message.
    slp::SrvRequest request;
    request.serviceType = "service:x";
    Bytes wire = slp::encode(request);
    wire.resize(wire.size() / 2);
    EXPECT_FALSE(codec->parse(wire, &error));
}

TEST_F(SlpCodecTest, ComposeUnknownTypeThrows) {
    EXPECT_THROW(codec->compose(AbstractMessage("NoSuchMessage")), SpecError);
}

TEST_F(SlpCodecTest, ComposeMissingMandatoryThrows) {
    AbstractMessage message("SLPSrvReply");
    message.setValue("XID", Value::ofInt(5), "Integer");
    // URLEntry (mandatory) missing.
    EXPECT_THROW(codec->compose(message), SpecError);
}

// --- codec: DNS -----------------------------------------------------------------

class DnsCodecTest : public ::testing::Test {
protected:
    std::shared_ptr<MessageCodec> codec = MessageCodec::fromXml(bridge::models::dnsMdl());
};

TEST_F(DnsCodecTest, ParsesLegacyQuestion) {
    const auto message = codec->parse(mdns::encode(mdns::makeQuestion(9, "_printer._tcp.local")));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "DNS_Question");
    EXPECT_EQ(message->value("ID")->asInt(), 9);
    EXPECT_EQ(message->value("QName")->asString(), "_printer._tcp.local");
    EXPECT_EQ(message->value("QType")->asInt(), 12);
}

TEST_F(DnsCodecTest, ParsesLegacyResponse) {
    const auto message = codec->parse(
        mdns::encode(mdns::makeResponse(9, "_printer._tcp.local", "http://10.0.0.3:631/ipp")));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "DNS_Response");
    EXPECT_EQ(message->value("RData")->asString(), "http://10.0.0.3:631/ipp");
    EXPECT_EQ(message->value("AName")->asString(), "_printer._tcp.local");
}

TEST_F(DnsCodecTest, ComposedQuestionDecodableByLegacyStack) {
    AbstractMessage message("DNS_Question");
    message.setValue("ID", Value::ofInt(4242), "Integer");
    message.setValue("QName", Value::ofString("_printer._tcp.local"));
    const auto decoded = mdns::decode(codec->compose(message));
    ASSERT_TRUE(decoded);
    ASSERT_EQ(decoded->questions.size(), 1u);
    EXPECT_EQ(decoded->id, 4242);
    EXPECT_EQ(decoded->questions[0].qname, "_printer._tcp.local");
    EXPECT_EQ(decoded->questions[0].qtype, mdns::kTypePtr);
    EXPECT_FALSE(decoded->isResponse());
}

TEST_F(DnsCodecTest, ComposedResponseDecodableByLegacyStack) {
    AbstractMessage message("DNS_Response");
    message.setValue("ID", Value::ofInt(7), "Integer");
    message.setValue("Flags", Value::ofInt(0x8400), "Integer");
    message.setValue("AName", Value::ofString("_printer._tcp.local"));
    message.setValue("RData", Value::ofString("service:printer://10.0.0.2:515/q"));
    const auto decoded = mdns::decode(codec->compose(message));
    ASSERT_TRUE(decoded);
    ASSERT_EQ(decoded->answers.size(), 1u);
    EXPECT_TRUE(decoded->isResponse());
    EXPECT_EQ(toString(decoded->answers[0].rdata), "service:printer://10.0.0.2:515/q");
}

TEST_F(DnsCodecTest, RoundTripProperty) {
    Rng rng(777);
    for (int round = 0; round < 60; ++round) {
        const bool isQuestion = rng.chance(0.5);
        const std::string name = "_svc" + std::to_string(rng.range(0, 999)) + "._tcp.local";
        const auto id = static_cast<std::uint16_t>(rng.range(0, 65535));
        const Bytes original =
            isQuestion ? mdns::encode(mdns::makeQuestion(id, name))
                       : mdns::encode(mdns::makeResponse(id, name, "url" + std::to_string(round)));
        const auto message = codec->parse(original);
        ASSERT_TRUE(message) << round;
        EXPECT_EQ(codec->compose(*message), original) << round;
    }
}

}  // namespace
}  // namespace starlink::mdl
