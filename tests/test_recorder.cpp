// Flight recorder, postmortem bundles and deterministic replay.
//
// The replay-fidelity tests are the load-bearing ones: a session captured
// under seeded chaos, re-injected into a fresh island from its bundle alone,
// must reproduce the identical SessionRecord (abort code, message counts)
// and byte-identical outbound wire traffic -- across at least three bridge
// directions, as promised in docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/replay.hpp"
#include "core/engine/shard_engine.hpp"
#include "core/telemetry/recorder.hpp"
#include "core/telemetry/span.hpp"

namespace starlink {
namespace {

using telemetry::FlightRecorder;
using telemetry::PostmortemBundle;
using telemetry::PostmortemSpool;
using telemetry::WireEvent;

Bytes payloadOf(const char* text) {
    const std::string s(text);
    return Bytes(s.begin(), s.end());
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
    FlightRecorder recorder(0);
    EXPECT_FALSE(recorder.enabled());
    recorder.beginSession(1, 0);
    EXPECT_FALSE(recorder.inSession());
    recorder.recordTx(10, 7, payloadOf("x"));
    recorder.endSession(20, -600, 1, false, 1, 1, 0);
    EXPECT_EQ(recorder.last(), nullptr);
    EXPECT_EQ(recorder.bytesReserved(), 0u);
}

TEST(FlightRecorder, EventCodecRoundTripsEveryKind) {
    FlightRecorder recorder(64 * 1024);
    recorder.beginSession(3, 100);
    ASSERT_TRUE(recorder.inSession());
    recorder.recordRx(100, 0xaabb, "10.0.0.1:427", "10.0.0.9:427", payloadOf("hello"));
    recorder.recordTransition(100, "SLP", "s10", "s11", WireEvent::kActionReceive,
                              "SLPSrvRequest");
    recorder.recordTranslate(112, "s11", "SSDP_MSearch");
    recorder.recordTx(112, 0xccdd, payloadOf("out-bytes"));
    recorder.recordConnect(150, 0xeeff, "10.0.0.1:49152", WireEvent::kConnectConnected, 2);
    recorder.recordFault(160, 0xeeff, WireEvent::kFaultPeerClosed, "mid-session close");
    recorder.endSession(200, -605, 3, false, 4, 5, 1);

    const FlightRecorder::SessionLog* log = recorder.last();
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->ordinal, 3u);
    EXPECT_FALSE(log->truncated);

    const std::vector<WireEvent> events = telemetry::decodeEvents(log->events);
    ASSERT_EQ(events.size(), 7u);

    EXPECT_EQ(events[0].kind, WireEvent::Kind::Rx);
    EXPECT_EQ(events[0].tsUs, 100);
    EXPECT_EQ(events[0].color, 0xaabbu);
    EXPECT_EQ(events[0].from, "10.0.0.1:427");
    EXPECT_EQ(events[0].to, "10.0.0.9:427");
    EXPECT_EQ(events[0].payload, payloadOf("hello"));

    EXPECT_EQ(events[1].kind, WireEvent::Kind::Transition);
    EXPECT_EQ(events[1].component, "SLP");
    EXPECT_EQ(events[1].state, "s10");
    EXPECT_EQ(events[1].stateTo, "s11");
    EXPECT_EQ(events[1].action, WireEvent::kActionReceive);
    EXPECT_EQ(events[1].messageType, "SLPSrvRequest");

    EXPECT_EQ(events[2].kind, WireEvent::Kind::Translate);
    EXPECT_EQ(events[2].state, "s11");
    EXPECT_EQ(events[2].messageType, "SSDP_MSearch");

    EXPECT_EQ(events[3].kind, WireEvent::Kind::Tx);
    EXPECT_EQ(events[3].color, 0xccddu);
    EXPECT_EQ(events[3].payload, payloadOf("out-bytes"));

    EXPECT_EQ(events[4].kind, WireEvent::Kind::TcpConnect);
    EXPECT_EQ(events[4].from, "10.0.0.1:49152");
    EXPECT_EQ(events[4].action, WireEvent::kConnectConnected);
    EXPECT_EQ(events[4].attempts, 2);

    EXPECT_EQ(events[5].kind, WireEvent::Kind::Fault);
    EXPECT_EQ(events[5].action, WireEvent::kFaultPeerClosed);
    EXPECT_EQ(events[5].from, "mid-session close");

    EXPECT_EQ(events[6].kind, WireEvent::Kind::SessionEnd);
    EXPECT_EQ(events[6].code, -605);
    EXPECT_EQ(events[6].cause, 3);
    EXPECT_FALSE(events[6].completed);
    EXPECT_EQ(events[6].messagesIn, 4u);
    EXPECT_EQ(events[6].messagesOut, 5u);
    EXPECT_EQ(events[6].retransmits, 1u);
}

TEST(FlightRecorder, ByteCapTruncatesButKeepsTerminalRecord) {
    FlightRecorder recorder(256);  // tiny: a few events fit, most don't
    recorder.beginSession(1, 0);
    const Bytes big(100, 0x41);
    for (int i = 0; i < 50; ++i) recorder.recordTx(i, 1, big);
    recorder.endSession(1000, -600, 1, false, 0, 50, 0);

    const FlightRecorder::SessionLog* log = recorder.last();
    ASSERT_NE(log, nullptr);
    EXPECT_TRUE(log->truncated);
    EXPECT_GT(log->droppedEvents, 0u);
    const std::vector<WireEvent> events = telemetry::decodeEvents(log->events);
    ASSERT_FALSE(events.empty());
    // The cap never drops the terminal record.
    EXPECT_EQ(events.back().kind, WireEvent::Kind::SessionEnd);
    EXPECT_EQ(events.back().code, -600);
}

TEST(FlightRecorder, RecentRingIsBounded) {
    FlightRecorder recorder(4096, /*ringSessions=*/3);
    for (int s = 1; s <= 7; ++s) {
        recorder.beginSession(static_cast<std::uint64_t>(s), s * 10);
        recorder.recordTx(s * 10, 1, payloadOf("p"));
        recorder.endSession(s * 10 + 5, 0, 0, true, 1, 1, 0);
    }
    EXPECT_EQ(recorder.recent().size(), 3u);
    EXPECT_EQ(recorder.recent().front().ordinal, 5u);
    EXPECT_EQ(recorder.last()->ordinal, 7u);
}

TEST(FlightRecorder, ChunkMemoryIsRetainedAcrossSessions) {
    FlightRecorder recorder(64 * 1024);
    recorder.beginSession(1, 0);
    const Bytes big(10000, 0x42);
    for (int i = 0; i < 5; ++i) recorder.recordTx(i, 1, big);
    recorder.endSession(100, 0, 0, true, 0, 5, 0);
    const std::size_t reserved = recorder.bytesReserved();
    EXPECT_GT(reserved, 0u);
    // A smaller follow-up session reuses the chunks; no growth.
    recorder.beginSession(2, 200);
    recorder.recordTx(201, 1, payloadOf("small"));
    recorder.endSession(210, 0, 0, true, 0, 1, 0);
    EXPECT_EQ(recorder.bytesReserved(), reserved);
}

PostmortemBundle sampleBundle() {
    PostmortemBundle bundle;
    bundle.bridge = "upnp-to-slp";
    bundle.caseSlug = "upnp-to-slp";
    bundle.bridgeHost = "10.0.0.9";
    bundle.shard = 3;
    bundle.sessionOrdinal = 17;
    bundle.sessionSeed = 0x1234567890abcdefULL;
    bundle.retrySeed = 0xfedcba0987654321ULL;
    bundle.retryDraws = 9;
    bundle.modelIdentity = 0x5eedULL;
    bundle.abortCode = -600;
    bundle.cause = 1;
    bundle.processingDelayUs = 12000;
    bundle.sessionTimeoutUs = 30000000;
    bundle.receiveTimeoutUs = 7000000;
    bundle.retransmitJitterUs = 100000;
    bundle.idleTimeoutUs = 0;
    bundle.tcpConnectRetryDelayUs = 50000;
    bundle.tcpConnectRetryMaxDelayUs = 5000000;
    bundle.maxRetransmits = 5;
    bundle.tcpConnectAttempts = 3;
    bundle.retransmitBackoffMicros = 1500000;
    bundle.tcpMaxBacklogBytes = 256 * 1024;

    FlightRecorder recorder(4096);
    recorder.beginSession(17, 0);
    recorder.recordRx(10, 1, "10.0.0.1:1900", "10.0.0.9:1900", payloadOf("M-SEARCH"));
    recorder.endSession(30000000, -600, 1, false, 1, 0, 0);
    bundle.events = recorder.last()->events;

    telemetry::Span root;
    root.id = 1;
    root.parent = 0;
    root.session = 17;
    root.name = "session";
    root.start = net::TimePoint{net::Duration{10}};
    root.end = net::TimePoint{net::Duration{30000000}};
    root.attrs.push_back({"result", "timeout"});
    telemetry::Span child = root;
    child.id = 2;
    child.parent = 1;
    child.name = "translate";
    bundle.spans = {root, child};
    return bundle;
}

TEST(PostmortemBundleCodec, RoundTripsEveryField) {
    const PostmortemBundle bundle = sampleBundle();
    const Bytes encoded = telemetry::encodeBundle(bundle);
    const PostmortemBundle decoded = telemetry::decodeBundle(encoded);

    EXPECT_EQ(decoded.bridge, bundle.bridge);
    EXPECT_EQ(decoded.caseSlug, bundle.caseSlug);
    EXPECT_EQ(decoded.bridgeHost, bundle.bridgeHost);
    EXPECT_EQ(decoded.shard, bundle.shard);
    EXPECT_EQ(decoded.sessionOrdinal, bundle.sessionOrdinal);
    EXPECT_EQ(decoded.sessionSeed, bundle.sessionSeed);
    EXPECT_EQ(decoded.retrySeed, bundle.retrySeed);
    EXPECT_EQ(decoded.retryDraws, bundle.retryDraws);
    EXPECT_EQ(decoded.modelIdentity, bundle.modelIdentity);
    EXPECT_EQ(decoded.abortCode, bundle.abortCode);
    EXPECT_EQ(decoded.cause, bundle.cause);
    EXPECT_EQ(decoded.processingDelayUs, bundle.processingDelayUs);
    EXPECT_EQ(decoded.sessionTimeoutUs, bundle.sessionTimeoutUs);
    EXPECT_EQ(decoded.receiveTimeoutUs, bundle.receiveTimeoutUs);
    EXPECT_EQ(decoded.retransmitJitterUs, bundle.retransmitJitterUs);
    EXPECT_EQ(decoded.idleTimeoutUs, bundle.idleTimeoutUs);
    EXPECT_EQ(decoded.tcpConnectRetryDelayUs, bundle.tcpConnectRetryDelayUs);
    EXPECT_EQ(decoded.tcpConnectRetryMaxDelayUs, bundle.tcpConnectRetryMaxDelayUs);
    EXPECT_EQ(decoded.maxRetransmits, bundle.maxRetransmits);
    EXPECT_EQ(decoded.tcpConnectAttempts, bundle.tcpConnectAttempts);
    EXPECT_EQ(decoded.retransmitBackoffMicros, bundle.retransmitBackoffMicros);
    EXPECT_EQ(decoded.tcpMaxBacklogBytes, bundle.tcpMaxBacklogBytes);
    EXPECT_EQ(decoded.truncated, bundle.truncated);
    EXPECT_EQ(decoded.events, bundle.events);

    ASSERT_EQ(decoded.spans.size(), 2u);
    EXPECT_EQ(decoded.spans[0].id, 1u);
    EXPECT_EQ(decoded.spans[0].name, "session");
    EXPECT_EQ(decoded.spans[0].start.time_since_epoch().count(), 10);
    ASSERT_EQ(decoded.spans[0].attrs.size(), 1u);
    EXPECT_EQ(decoded.spans[0].attrs[0].key, "result");
    EXPECT_EQ(decoded.spans[0].attrs[0].value, "timeout");
    EXPECT_EQ(decoded.spans[1].parent, 1u);
}

TEST(PostmortemBundleCodec, RejectsCorruptInput) {
    const PostmortemBundle bundle = sampleBundle();
    Bytes encoded = telemetry::encodeBundle(bundle);
    Bytes badMagic = encoded;
    badMagic[0] ^= 0xff;
    EXPECT_THROW(telemetry::decodeBundle(badMagic), SpecError);
    Bytes shortened(encoded.begin(), encoded.begin() + encoded.size() / 2);
    EXPECT_THROW(telemetry::decodeBundle(shortened), SpecError);
    Bytes padded = encoded;
    padded.push_back(0);
    EXPECT_THROW(telemetry::decodeBundle(padded), SpecError);
    EXPECT_THROW(telemetry::decodeEvents(payloadOf("garbage!")), SpecError);
}

TEST(PostmortemSpoolTest, CapsBundleCountDeletingOldest) {
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "starlink-spool-cap").string();
    std::filesystem::remove_all(dir);
    PostmortemSpool spool(PostmortemSpool::Options{dir, 3});
    PostmortemBundle bundle = sampleBundle();
    std::vector<std::string> paths;
    for (int i = 0; i < 5; ++i) {
        bundle.sessionOrdinal = static_cast<std::uint64_t>(i + 1);
        const std::string path = spool.write(bundle);
        ASSERT_FALSE(path.empty());
        paths.push_back(path);
    }
    EXPECT_EQ(spool.written(), 5u);
    EXPECT_EQ(spool.files().size(), 3u);
    // The two oldest files are gone from disk; the three newest remain and
    // decode cleanly.
    EXPECT_FALSE(std::filesystem::exists(paths[0]));
    EXPECT_FALSE(std::filesystem::exists(paths[1]));
    for (std::size_t i = 2; i < paths.size(); ++i) {
        std::ifstream in(paths[i], std::ios::binary);
        ASSERT_TRUE(in.good());
        std::ostringstream content;
        content << in.rdbuf();
        const std::string s = content.str();
        const PostmortemBundle decoded = telemetry::decodeBundle(Bytes(s.begin(), s.end()));
        EXPECT_EQ(decoded.sessionOrdinal, i + 1);
    }
    std::filesystem::remove_all(dir);
}

TEST(ModelIdentity, StableAndSpecSensitive) {
    using bridge::models::Case;
    const auto specA = bridge::models::forCase(Case::UpnpToSlp, "10.0.0.9");
    const auto specB = bridge::models::forCase(Case::UpnpToSlp, "10.0.0.9");
    EXPECT_EQ(bridge::models::modelSetIdentity(specA), bridge::models::modelSetIdentity(specB));
    const auto other = bridge::models::forCase(Case::SlpToBonjour, "10.0.0.9");
    EXPECT_NE(bridge::models::modelSetIdentity(specA), bridge::models::modelSetIdentity(other));
    auto mutated = specA;
    mutated.bridgeXml += " ";
    EXPECT_NE(bridge::models::modelSetIdentity(specA), bridge::models::modelSetIdentity(mutated));
}

TEST(ModelIdentity, CaseSlugRoundTrips) {
    for (const auto c : bridge::models::kAllCases) {
        const auto back = bridge::models::caseBySlug(bridge::models::caseSlug(c));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, c);
    }
    EXPECT_FALSE(bridge::models::caseBySlug("no-such-case").has_value());
}

// -- chaos capture + replay ---------------------------------------------------

engine::ShardEngineOptions chaosOptions(std::uint64_t seed) {
    engine::ShardEngineOptions options;
    options.shards = 1;
    options.baseSeed = seed;
    options.chaos = true;
    options.chaosLoss = 0.25;
    options.engine.receiveTimeout = net::ms(7000);
    options.engine.maxRetransmits = 5;
    options.engine.retransmitBackoff = 1.5;
    options.engine.retransmitJitter = net::ms(100);
    options.engine.sessionTimeout = net::ms(30000);
    return options;
}

TEST(RecorderInvariance, RecordingDoesNotChangeSessionOutcomes) {
    auto runWorkload = [](std::size_t recorderBytes) {
        engine::ShardEngineOptions options = chaosOptions(11);
        options.engine.recorderSessionBytes = recorderBytes;
        engine::ShardEngine shardEngine(options);
        for (int i = 0; i < 18; ++i) {
            engine::SessionJob job;
            job.caseId = bridge::models::kAllCases[static_cast<std::size_t>(i) % 6];
            job.key = "inv-" + std::to_string(i);
            shardEngine.submit(job);
        }
        std::vector<engine::SessionOutcome> outcomes;
        for (const auto& result : shardEngine.run()) {
            outcomes.insert(outcomes.end(), result.outcomes.begin(), result.outcomes.end());
        }
        return outcomes;
    };
    const auto off = runWorkload(0);
    const auto on = runWorkload(1024 * 1024);
    ASSERT_FALSE(off.empty());
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        EXPECT_EQ(off[i], on[i]) << "outcome " << i << " changed when the recorder was enabled";
    }
}

/// Runs `sessions` chaos jobs of one direction with the recorder + spool on;
/// returns the spooled bundles (possibly none for a lucky seed).
std::vector<PostmortemBundle> captureAborts(bridge::models::Case c, std::uint64_t seed,
                                            const std::string& tag, int sessions = 12) {
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / ("starlink-replay-" + tag)).string();
    std::filesystem::remove_all(dir);
    PostmortemSpool spool(PostmortemSpool::Options{dir, 64});
    engine::ShardEngineOptions options = chaosOptions(seed);
    options.engine.recorderSessionBytes = 1024 * 1024;
    options.engine.postmortemSpool = &spool;
    engine::ShardEngine shardEngine(options);
    for (int i = 0; i < sessions; ++i) {
        engine::SessionJob job;
        job.caseId = c;
        job.key = "cap-" + tag + "-" + std::to_string(i);
        shardEngine.submit(job);
    }
    shardEngine.run();
    std::vector<PostmortemBundle> bundles;
    for (const std::string& path : spool.files()) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        const std::string s = content.str();
        bundles.push_back(telemetry::decodeBundle(Bytes(s.begin(), s.end())));
    }
    std::filesystem::remove_all(dir);
    return bundles;
}

/// Captures aborts for one direction (scanning a few seeds until chaos
/// produces at least one) and asserts every bundle replays bit-identically.
void expectDirectionReplays(bridge::models::Case c, const char* tag) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto bundles =
            captureAborts(c, seed, std::string(tag) + "-" + std::to_string(seed));
        if (bundles.empty()) continue;
        for (const PostmortemBundle& bundle : bundles) {
            SCOPED_TRACE("case " + std::string(tag) + " seed " + std::to_string(seed) +
                         " session #" + std::to_string(bundle.sessionOrdinal) + " abort " +
                         std::to_string(bundle.abortCode));
            const bridge::ReplayComparison result = bridge::replayBundle(bundle);
            EXPECT_TRUE(result.ran);
            EXPECT_TRUE(result.recordMatches) << result.detail;
            EXPECT_TRUE(result.wireMatches) << result.detail;
        }
        return;  // one seed with captures is enough per direction
    }
    FAIL() << "no chaos seed in [1,8] produced an abort for " << tag;
}

TEST(ReplayFidelity, UpnpToSlpRepliesBitIdentically) {
    expectDirectionReplays(bridge::models::Case::UpnpToSlp, "upnp-to-slp");
}

TEST(ReplayFidelity, BonjourToSlpRepliesBitIdentically) {
    expectDirectionReplays(bridge::models::Case::BonjourToSlp, "bonjour-to-slp");
}

TEST(ReplayFidelity, SlpToBonjourRepliesBitIdentically) {
    expectDirectionReplays(bridge::models::Case::SlpToBonjour, "slp-to-bonjour");
}

TEST(ReplayFidelity, UpnpToBonjourRepliesBitIdentically) {
    expectDirectionReplays(bridge::models::Case::UpnpToBonjour, "upnp-to-bonjour");
}

TEST(ReplayGuards, TruncatedBundleIsRefused) {
    PostmortemBundle bundle = sampleBundle();
    bundle.truncated = true;
    bundle.droppedEvents = 12;
    EXPECT_THROW(bridge::replayBundle(bundle), SpecError);
}

TEST(ReplayGuards, UnknownCaseSlugIsRefused) {
    PostmortemBundle bundle = sampleBundle();
    bundle.caseSlug = "hand-rolled-bridge";
    EXPECT_THROW(bridge::replayBundle(bundle), SpecError);
}

TEST(ReplayGuards, ModelDriftIsRefused) {
    PostmortemBundle bundle = sampleBundle();
    // sampleBundle stamps a fake fingerprint that cannot match the real
    // upnp-to-slp model set.
    EXPECT_THROW(bridge::replayBundle(bundle), SpecError);
}

}  // namespace
}  // namespace starlink
