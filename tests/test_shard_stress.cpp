// Deterministic concurrency stress for the sharded bridge driver.
//
// The contract under test (shard_engine.hpp): a session's outcome is a pure
// function of (case, seed). If that holds, an 8-shard run with chaos faults
// enabled must reproduce a 1-shard run of the same submission record for
// record -- same bridge sessions, same failure causes, same message counts,
// same translation times to the microsecond -- because each session rewinds
// every stochastic stream it touches to seed-derived state. Any shared
// mutable state leaking across islands or threads breaks the equality (and
// the TSan CI job catches the racy variants that happen not to).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/engine/shard_engine.hpp"
#include "core/telemetry/metrics.hpp"

namespace starlink {
namespace {

using bridge::models::Case;
using bridge::models::kAllCases;
using engine::SessionJob;
using engine::SessionResult;
using engine::ShardEngine;
using engine::ShardEngineOptions;

/// The stress workload: `count` sessions cycling through all six bridge
/// directions, keyed so hash dispatch scatters them across shards.
std::vector<SessionJob> mixedWorkload(int count) {
    std::vector<SessionJob> jobs;
    jobs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        SessionJob job;
        job.caseId = kAllCases[static_cast<std::size_t>(i) % 6];
        job.key = "stress-" + std::to_string(i);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

ShardEngineOptions chaosOptions(int shards) {
    ShardEngineOptions options;
    options.shards = shards;
    options.chaos = true;
    options.chaosLoss = 0.05;
    // The resilient-client profile of `starlinkd chaos`; retransmit jitter
    // deliberately ON so the per-session reseedRetry path is exercised.
    options.engine.receiveTimeout = net::ms(7000);
    options.engine.maxRetransmits = 5;
    options.engine.retransmitBackoff = 1.5;
    options.engine.retransmitJitter = net::ms(100);
    options.engine.sessionTimeout = net::ms(30000);
    return options;
}

std::string describe(const SessionResult& result) {
    std::string out = result.job.key + " discovered=" + (result.discovered ? "1" : "0");
    for (const auto& outcome : result.outcomes) {
        out += " [completed=" + std::to_string(outcome.completed) +
               " cause=" + engine::failureCauseName(outcome.cause) +
               " in=" + std::to_string(outcome.messagesIn) +
               " out=" + std::to_string(outcome.messagesOut) +
               " rtx=" + std::to_string(outcome.retransmits) +
               " translationUs=" + std::to_string(outcome.translationUs) +
               " sessionUs=" + std::to_string(outcome.sessionUs) + "]";
    }
    return out;
}

// The test archetype headliner: 8 shards x 200 mixed-direction sessions with
// chaos faults, bit-identical to a 1-shard run of the same seed.
TEST(ShardStress, EightShardChaosRunBitIdenticalToOneShard) {
    const auto jobs = mixedWorkload(200);

    ShardEngine sharded(chaosOptions(8));
    for (const auto& job : jobs) sharded.submit(job);
    const auto& parallel = sharded.run();

    ShardEngine sequential(chaosOptions(1));
    for (const auto& job : jobs) sequential.submit(job);
    const auto& serial = sequential.run();

    ASSERT_EQ(parallel.size(), jobs.size());
    ASSERT_EQ(serial.size(), jobs.size());

    // Submission order is preserved in the results, so compare positionally;
    // every field of every bridge session must match bit for bit.
    std::size_t totalSessions = 0;
    std::size_t discovered = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SessionResult& a = parallel[i];
        const SessionResult& b = serial[i];
        EXPECT_EQ(a.job.key, b.job.key);
        EXPECT_EQ(a.job.seed, b.job.seed) << a.job.key;
        EXPECT_EQ(a.discovered, b.discovered) << describe(a) << "\n vs \n" << describe(b);
        ASSERT_EQ(a.outcomes.size(), b.outcomes.size())
            << describe(a) << "\n vs \n" << describe(b);
        for (std::size_t s = 0; s < a.outcomes.size(); ++s) {
            EXPECT_TRUE(a.outcomes[s] == b.outcomes[s])
                << describe(a) << "\n vs \n" << describe(b);
        }
        totalSessions += a.outcomes.size();
        if (a.discovered) ++discovered;
    }

    // The chaos plan is hostile but bounded: the workload as a whole must
    // still mostly succeed, and the run must actually have been sharded.
    EXPECT_GT(totalSessions, jobs.size() / 2);
    EXPECT_GT(discovered, jobs.size() / 2);
    std::set<int> shardsUsed;
    for (const auto& result : parallel) shardsUsed.insert(result.shard);
    EXPECT_EQ(shardsUsed.size(), 8u);
    EXPECT_EQ(sharded.reports().size(), 8u);

    // Sharding must cut the virtual makespan: the worst shard's busy time
    // stays well under the sequential shard's.
    EXPECT_LT(sharded.makespan(), sequential.makespan());
}

TEST(ShardStress, DispatchIsStableByKeyNotBySubmissionOrder) {
    ShardEngine engine(ShardEngineOptions{.shards = 8});
    const auto jobs = mixedWorkload(64);
    std::map<std::string, int> expected;
    for (const auto& job : jobs) expected[job.key] = engine.shardFor(job.key);
    // Same keys, any order, any engine instance: same shard.
    ShardEngine other(ShardEngineOptions{.shards = 8});
    for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
        EXPECT_EQ(other.shardFor(it->key), expected[it->key]);
    }
    // All eight shards get work (FNV-1a spreads this keyspace).
    std::set<int> used;
    for (const auto& [key, shard] : expected) used.insert(shard);
    EXPECT_EQ(used.size(), 8u);
}

// Merged per-shard registries must agree with the per-session outcomes --
// the aggregation half of "per-shard instances merged at export".
TEST(ShardStress, MergedMetricsAgreeWithSessionOutcomes) {
    telemetry::setEnabled(true);
    ShardEngineOptions options = chaosOptions(4);
    ShardEngine engine(options);
    for (const auto& job : mixedWorkload(48)) engine.submit(job);
    const auto& results = engine.run();
    telemetry::setEnabled(false);

    std::uint64_t completed = 0, messagesIn = 0, messagesOut = 0, retransmits = 0;
    for (const auto& result : results) {
        for (const auto& outcome : result.outcomes) {
            if (outcome.completed) ++completed;
            messagesIn += outcome.messagesIn;
            messagesOut += outcome.messagesOut;
            retransmits += outcome.retransmits;
        }
    }

    telemetry::MetricsRegistry merged;
    engine.mergeMetricsInto(merged);
    // Counter names carry a per-bridge label; sum each family across the six
    // bridge automata straight out of the merged exposition.
    const std::string exposition = merged.renderPrometheus();
    const auto sumLines = [&exposition](const std::string& family) {
        std::uint64_t total = 0;
        std::size_t at = 0;
        while ((at = exposition.find(family, at)) != std::string::npos) {
            const std::size_t space = exposition.find(' ', at);
            const std::size_t eol = exposition.find('\n', space);
            total += static_cast<std::uint64_t>(
                std::stoll(exposition.substr(space + 1, eol - space - 1)));
            at = eol;
        }
        return total;
    };
    const std::uint64_t mCompleted = sumLines("starlink_engine_sessions_completed_total{");
    const std::uint64_t mIn = sumLines("starlink_engine_messages_in_total{");
    const std::uint64_t mOut = sumLines("starlink_engine_messages_out_total{");
    const std::uint64_t mRetransmits = sumLines("starlink_engine_retransmits_total{");

    EXPECT_EQ(mCompleted, completed);
    EXPECT_EQ(mIn, messagesIn);
    EXPECT_EQ(mOut, messagesOut);
    EXPECT_EQ(mRetransmits, retransmits);
}

// Soak: pooled islands must not degrade over a long healthy run -- session
// 1 and session N of the same seed behave identically, every direction
// completes every session, and completed translation times stay in their
// Fig 12(b) bands.
TEST(ShardStress, SoakPooledIslandsServeIdenticalSessionsForever) {
    constexpr int kPerCase = 60;  // 360 sessions over 2 shards
    ShardEngineOptions options;
    options.shards = 2;
    ShardEngine engine(options);
    for (int i = 0; i < kPerCase; ++i) {
        for (const Case c : kAllCases) {
            SessionJob job;
            job.caseId = c;
            // Same explicit seed for every session of a case: a healthy pool
            // must serve them all identically, however deep in the run.
            job.seed = 0x50AC + static_cast<std::uint64_t>(c);
            job.key = std::string(bridge::models::caseName(c)) + "-" + std::to_string(i);
            engine.submit(job);
        }
    }
    const auto& results = engine.run();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kPerCase) * 6);

    std::map<int, const SessionResult*> first;
    for (const auto& result : results) {
        const int caseKey = static_cast<int>(result.job.caseId);
        EXPECT_TRUE(result.discovered) << describe(result);
        ASSERT_EQ(result.outcomes.size(), 1u) << describe(result);
        EXPECT_TRUE(result.outcomes[0].completed) << describe(result);
        const auto [it, inserted] = first.emplace(caseKey, &result);
        if (!inserted) {
            EXPECT_TRUE(result.outcomes[0] == it->second->outcomes[0])
                << describe(result) << "\n vs first \n" << describe(*it->second);
        }
        // Fig 12(b) bands: ->SLP directions are dominated by the ~6 s legacy
        // SLP response, the others stay sub-second.
        const bool slow = result.job.caseId == Case::UpnpToSlp ||
                          result.job.caseId == Case::BonjourToSlp;
        if (slow) {
            EXPECT_GT(result.outcomes[0].translationUs, 5'000'000) << describe(result);
        } else {
            EXPECT_LT(result.outcomes[0].translationUs, 1'000'000) << describe(result);
        }
    }
    EXPECT_EQ(first.size(), 6u);
}

}  // namespace
}  // namespace starlink
