// Hot-swap model deployment: the versioned bridge registry.
//
// Under test (core/bridge/registry.hpp):
//   - the lint gate: a candidate with ANY error-severity finding -- including
//     an unparseable document, which is what a reload racing a file write
//     produces -- is rejected with bridge.deploy-rejected and the registry
//     keeps serving what it served before;
//   - versioning and identity: accepted sets get monotonic versions, carry
//     the same FNV-1a fingerprints postmortem bundles record, and every
//     generation ever published stays resolvable by version or fingerprint;
//   - the canary protocol: session-key-hash cohort assignment (deterministic,
//     shard-count-invariant), automatic rollback on per-code abort-rate
//     regression, automatic promotion after a clean streak;
//   - replay fail-fast: a bundle whose fingerprint does not match the model
//     set is refused BEFORE any model document is parsed;
//   - the mid-run swap determinism contract: an N-shard workload with a swap
//     in the middle reproduces the 1-shard run record for record, and every
//     outcome carries the version its session was pinned to.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/bridge/registry.hpp"
#include "core/bridge/replay.hpp"
#include "core/engine/shard_engine.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/recorder.hpp"

namespace starlink {
namespace {

namespace fs = std::filesystem;
using bridge::ModelRegistry;
using bridge::ModelRegistryOptions;
using bridge::RegistryEvent;
using bridge::models::Case;
using bridge::models::kAllCases;
using bridge::models::Role;

std::array<bridge::models::DeploymentSpec, 6> builtinSpecs(int httpPort = 8085) {
    std::array<bridge::models::DeploymentSpec, 6> specs;
    for (const Case c : kAllCases) {
        specs[static_cast<std::size_t>(c)] =
            bridge::models::forCase(c, "10.0.0.9", httpPort);
    }
    return specs;
}

/// Options wired to a test-local metrics registry so parallel tests never
/// race on the process-global one.
ModelRegistryOptions testOptions(telemetry::MetricsRegistry& metrics) {
    ModelRegistryOptions options;
    options.metrics = &metrics;
    return options;
}

errc::ErrorCode thrownCode(const std::function<void()>& body) {
    try {
        body();
    } catch (const StarlinkError& error) {
        return error.code();
    }
    return errc::ErrorCode::Ok;
}

TEST(ModelRegistry, FirstLoadBecomesActiveAndPinsIt) {
    telemetry::MetricsRegistry metrics;
    ModelRegistry registry{testOptions(metrics)};

    // Before the first load there is nothing to pin -- a coded refusal, not
    // a null deref at session start.
    EXPECT_EQ(thrownCode([&] { registry.pin("session-0"); }),
              errc::ErrorCode::BridgeVersionUnknown);

    const auto v1 = registry.loadBuiltins();
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->version(), 1u);
    EXPECT_EQ(registry.active(), v1);
    EXPECT_EQ(registry.canary(), nullptr);
    EXPECT_EQ(registry.pin("session-0"), v1);

    // The per-case fingerprints are EXACTLY what modelSetIdentity computes
    // over the equivalent forCase spec -- the value postmortem bundles carry.
    for (const Case c : kAllCases) {
        EXPECT_EQ(v1->identityFor(c),
                  bridge::models::modelSetIdentity(bridge::models::forCase(c, "10.0.0.9")))
            << bridge::models::caseSlug(c);
    }
}

TEST(ModelRegistry, LintGateRejectsDefectiveCandidateAndKeepsServing) {
    telemetry::MetricsRegistry metrics;
    ModelRegistry registry{testOptions(metrics)};
    const auto v1 = registry.loadBuiltins();

    // An unparseable bridge document is what a loader racing a half-written
    // file would see: the lint gate must reject it, not the daemon abort.
    auto specs = builtinSpecs();
    specs[static_cast<std::size_t>(Case::SlpToUpnp)].bridgeXml =
        "<bridge name='torn'><merge>this is not a complete docum";
    EXPECT_EQ(thrownCode([&] { registry.loadSpecs(std::move(specs), "torn-write"); }),
              errc::ErrorCode::BridgeDeployRejected);

    // The registry is untouched: same active set, no canary, no version burn.
    EXPECT_EQ(registry.active(), v1);
    EXPECT_EQ(registry.canary(), nullptr);
    const auto v2 = registry.loadSpecs(builtinSpecs(8090), "fixed");
    EXPECT_EQ(v2->version(), 2u) << "a rejected candidate must not burn a version";
}

TEST(ModelRegistry, ImmediateSwapPublishesAndRetainsHistory) {
    telemetry::MetricsRegistry metrics;
    std::vector<RegistryEvent> events;
    ModelRegistry registry{testOptions(metrics)};
    registry.onEvent = [&events](const RegistryEvent& event) { events.push_back(event); };

    const auto v1 = registry.loadBuiltins();
    const auto v2 = registry.loadSpecs(builtinSpecs(8090), "port-8090");
    EXPECT_EQ(registry.active(), v2);
    EXPECT_EQ(registry.pin("any-key")->version(), 2u);
    EXPECT_EQ(registry.swapsTotal(), 2u);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].kind, RegistryEvent::Kind::Swapped);
    EXPECT_EQ(events[1].fromVersion, 1u);
    EXPECT_EQ(events[1].toVersion, 2u);

    // Retired generations stay resolvable by version AND by fingerprint --
    // that is how replay finds the models that produced an old bundle. The
    // port knob only reaches cases where the bridge HOSTS the http server
    // (the port is baked into the server automaton), so UpnpToSlp is the
    // case whose fingerprint distinguishes the generations.
    EXPECT_EQ(registry.byVersion(1), v1);
    EXPECT_NE(v1->identityFor(Case::UpnpToSlp), v2->identityFor(Case::UpnpToSlp));
    EXPECT_EQ(registry.byCaseIdentity(Case::UpnpToSlp, v1->identityFor(Case::UpnpToSlp)), v1);
    EXPECT_EQ(registry.byCaseIdentity(Case::UpnpToSlp, v2->identityFor(Case::UpnpToSlp)), v2);
    EXPECT_EQ(registry.byCaseIdentity(Case::UpnpToSlp, 0xdeadbeefULL), nullptr);

    // The version gauge tracks the active set.
    EXPECT_EQ(metrics.gauge("starlink_registry_active_version").value(), 2);
}

TEST(ModelRegistry, CanaryCohortIsDeterministicInKeyOnly) {
    for (const char* key : {"a", "session-17", "swap-99", "zz-top"}) {
        EXPECT_FALSE(ModelRegistry::inCanaryCohort(key, 0.0));
        EXPECT_TRUE(ModelRegistry::inCanaryCohort(key, 100.0));
        // Stable across calls, and monotone in the percent knob: a key in
        // the 20% cohort is in every larger cohort.
        const bool at20 = ModelRegistry::inCanaryCohort(key, 20.0);
        EXPECT_EQ(at20, ModelRegistry::inCanaryCohort(key, 20.0));
        if (at20) {
            EXPECT_TRUE(ModelRegistry::inCanaryCohort(key, 75.0));
        }
    }
    // The split lands near the dial over a realistic key population.
    int canary = 0;
    for (int i = 0; i < 2000; ++i) {
        if (ModelRegistry::inCanaryCohort("session-" + std::to_string(i), 30.0)) ++canary;
    }
    EXPECT_GT(canary, 2000 * 30 / 100 / 2);
    EXPECT_LT(canary, 2000 * 30 / 100 * 2);
}

TEST(ModelRegistry, CanaryRollsBackOnPerCodeAbortRegression) {
    telemetry::MetricsRegistry metrics;
    ModelRegistryOptions options = testOptions(metrics);
    options.canaryPercent = 50.0;
    options.windowSessions = 64;
    options.minCanarySessions = 16;
    options.rollbackRatio = 2.0;
    std::vector<RegistryEvent> events;
    ModelRegistry registry{options};
    registry.onEvent = [&events](const RegistryEvent& event) { events.push_back(event); };

    registry.loadBuiltins();
    const auto v2 = registry.loadSpecs(builtinSpecs(8090), "candidate");
    ASSERT_EQ(registry.canary(), v2);
    ASSERT_EQ(events.back().kind, RegistryEvent::Kind::CanaryStarted);

    // Stable cohort runs clean; the candidate aborts every session with one
    // code. Past the occupancy gate the per-code judge must withdraw it.
    for (int i = 0; i < 64; ++i) registry.noteSession(1, false);
    for (int i = 0; i < 32; ++i) {
        registry.noteSession(2, true, errc::ErrorCode::EngineSessionTimeout);
        if (registry.canary() == nullptr) break;
    }
    EXPECT_EQ(registry.canary(), nullptr);
    EXPECT_EQ(registry.active()->version(), 1u);
    EXPECT_EQ(registry.rollbacksTotal(), 1u);
    ASSERT_EQ(events.back().kind, RegistryEvent::Kind::RolledBack);
    EXPECT_NE(events.back().detail.find(errc::to_string(errc::ErrorCode::EngineSessionTimeout)),
              std::string::npos)
        << "rollback detail should name the regressing code: " << events.back().detail;
    EXPECT_EQ(metrics.counter("starlink_registry_rollbacks_total").value(), 1u);

    // New sessions pin the restored active version again.
    EXPECT_EQ(registry.pin("post-rollback")->version(), 1u);
    // The rolled-back generation stays resolvable -- its bundles are exactly
    // the ones worth replaying.
    EXPECT_EQ(registry.byVersion(2), v2);
}

TEST(ModelRegistry, CanaryPromotesAfterCleanStreak) {
    telemetry::MetricsRegistry metrics;
    ModelRegistryOptions options = testOptions(metrics);
    options.canaryPercent = 25.0;
    options.minCanarySessions = 8;
    options.promoteAfter = 20;
    std::vector<RegistryEvent> events;
    ModelRegistry registry{options};
    registry.onEvent = [&events](const RegistryEvent& event) { events.push_back(event); };

    registry.loadBuiltins();
    registry.loadSpecs(builtinSpecs(8090), "candidate");
    for (int i = 0; i < 40; ++i) registry.noteSession(1, false);
    for (int i = 0; i < 20; ++i) registry.noteSession(2, false);

    EXPECT_EQ(registry.canary(), nullptr);
    ASSERT_NE(registry.active(), nullptr);
    EXPECT_EQ(registry.active()->version(), 2u);
    EXPECT_EQ(registry.rollbacksTotal(), 0u);
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.back().kind, RegistryEvent::Kind::Promoted);
}

// -- satellite: replay must refuse a fingerprint mismatch BEFORE loading ----

TEST(ReplayIdentity, MismatchIsRefusedBeforeAnyModelIsParsed) {
    telemetry::PostmortemBundle bundle;
    bundle.bridge = "slp-to-upnp";
    bundle.caseSlug = bridge::models::caseSlug(Case::SlpToUpnp);
    bundle.bridgeHost = "10.0.0.9";
    bundle.abortCode = static_cast<std::int32_t>(errc::ErrorCode::EngineSessionTimeout);
    bundle.modelIdentity = 0x1234'5678'9abc'def0ULL;

    // The spec is GARBAGE on purpose: if replay touched any model document
    // before checking the fingerprint, this would surface as xml.parse, not
    // bridge.identity-mismatch.
    bridge::models::DeploymentSpec garbage;
    garbage.bridgeXml = "<<<< this is not xml";
    bridge::models::ProtocolModel protocol;
    protocol.mdlXml = "also not xml";
    protocol.automatonXml = "still not xml";
    garbage.protocols.push_back(protocol);

    try {
        bridge::replayBundle(bundle, garbage);
        FAIL() << "mismatched fingerprint must be refused";
    } catch (const SpecError& error) {
        EXPECT_EQ(error.code(), errc::ErrorCode::BridgeIdentityMismatch);
        EXPECT_NE(std::string(error.what()).find("identity"), std::string::npos);
    }

    // A matching fingerprint passes the gate (and then fails later, on the
    // garbage models, with a DIFFERENT code) -- proving the gate really
    // compares fingerprints rather than rejecting everything.
    bundle.modelIdentity = bridge::models::modelSetIdentity(garbage);
    EXPECT_NE(thrownCode([&] { bridge::replayBundle(bundle, garbage); }),
              errc::ErrorCode::BridgeIdentityMismatch);
}

// -- satellite: directory loads are memory-first and torn-write-safe --------

class RegistryDirectory : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("starlink-registry-" + std::to_string(::getpid()) + "-" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        writeExportLayout(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    static void write(const fs::path& path, const std::string& content) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << path;
        out << content;
    }

    /// The starlinkd-export layout subset the six-direction fleet needs.
    static void writeExportLayout(const fs::path& dir) {
        namespace models = bridge::models;
        write(dir / "slp.mdl.xml", models::slpMdl());
        write(dir / "dns.mdl.xml", models::dnsMdl());
        write(dir / "ssdp.mdl.xml", models::ssdpMdl());
        write(dir / "http.mdl.xml", models::httpMdl());
        for (const Role role : {Role::Server, Role::Client}) {
            const std::string suffix = role == Role::Server ? "server" : "client";
            write(dir / ("slp." + suffix + ".automaton.xml"), models::slpAutomaton(role));
            write(dir / ("mdns." + suffix + ".automaton.xml"), models::mdnsAutomaton(role));
            write(dir / ("ssdp." + suffix + ".automaton.xml"), models::ssdpAutomaton(role));
            write(dir / ("http." + suffix + ".automaton.xml"), models::httpAutomaton(role));
        }
        for (const Case c : kAllCases) {
            std::string name = models::caseName(c);
            std::replace(name.begin(), name.end(), ' ', '-');
            write(dir / (name + ".bridge.xml"), models::forCase(c, "10.0.0.9").bridgeXml);
        }
    }

    fs::path dir_;
};

TEST_F(RegistryDirectory, LoadReproducesBuiltinFingerprints) {
    telemetry::MetricsRegistry metrics;
    ModelRegistry registry{testOptions(metrics)};
    const auto set = registry.loadDirectory(dir_.string());
    ASSERT_NE(set, nullptr);
    // The export/load round trip is fingerprint-lossless: the on-disk fleet
    // is byte-identical to the builtins, so replay of a builtin-produced
    // bundle resolves against a directory-loaded generation.
    for (const Case c : kAllCases) {
        EXPECT_EQ(set->identityFor(c),
                  bridge::models::modelSetIdentity(bridge::models::forCase(c, "10.0.0.9")))
            << bridge::models::caseSlug(c);
    }
}

TEST_F(RegistryDirectory, MissingFileIsRejectedNamingThePath) {
    telemetry::MetricsRegistry metrics;
    ModelRegistry registry{testOptions(metrics)};
    const auto v1 = registry.loadBuiltins();

    fs::remove(dir_ / "slp.mdl.xml");
    try {
        registry.loadDirectory(dir_.string());
        FAIL() << "missing file must reject the candidate";
    } catch (const SpecError& error) {
        EXPECT_EQ(error.code(), errc::ErrorCode::BridgeDeployRejected);
        EXPECT_NE(std::string(error.what()).find("slp.mdl.xml"), std::string::npos)
            << error.what();
    }
    EXPECT_EQ(registry.active(), v1) << "the old generation must keep serving";
}

TEST_F(RegistryDirectory, TornWriteIsRejectedNotFatal) {
    telemetry::MetricsRegistry metrics;
    ModelRegistry registry{testOptions(metrics)};
    const auto v1 = registry.loadBuiltins();

    // Simulate a reload racing a model update: the document on disk is a
    // half-written prefix. Because the loader slurps files fully BEFORE any
    // parsing, the failure is a clean deploy rejection, never a daemon abort
    // or a bridge running half a model.
    const std::string whole = bridge::models::slpMdl();
    write(dir_ / "slp.mdl.xml", whole.substr(0, whole.size() / 2));
    EXPECT_EQ(thrownCode([&] { registry.loadDirectory(dir_.string()); }),
              errc::ErrorCode::BridgeDeployRejected);
    EXPECT_EQ(registry.active(), v1);
    EXPECT_EQ(registry.pin("after-torn-reload"), v1);
}

// -- satellite: determinism survives a mid-run swap -------------------------

std::vector<engine::SessionResult> runSwapWorkload(int shards, int sessions, int swapAt) {
    telemetry::MetricsRegistry metrics;
    ModelRegistry registry{testOptions(metrics)};
    registry.loadBuiltins();

    engine::ShardEngineOptions options;
    options.shards = shards;
    options.registry = &registry;
    engine::ShardEngine shardEngine{options};
    for (int i = 0; i < sessions; ++i) {
        if (i == swapAt) registry.loadSpecs(builtinSpecs(8090), "v2-port-8090");
        engine::SessionJob job;
        job.caseId = kAllCases[static_cast<std::size_t>(i) % 6];
        job.key = "swap-" + std::to_string(i);
        shardEngine.submit(job);
    }
    return shardEngine.run();
}

TEST(RegistrySwap, MidRunSwapBitIdenticalAcrossShardCounts) {
    const int kSessions = 96;
    const int kSwapAt = 48;
    const auto sequential = runSwapWorkload(1, kSessions, kSwapAt);
    const auto sharded = runSwapWorkload(8, kSessions, kSwapAt);

    ASSERT_EQ(sequential.size(), static_cast<std::size_t>(kSessions));
    ASSERT_EQ(sharded.size(), sequential.size());
    std::size_t completed = 0;
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        // Version pinning is decided at submit time, so it is a pure
        // function of submission order -- identical at any shard count.
        const std::uint64_t expectedVersion = i < static_cast<std::size_t>(kSwapAt) ? 1 : 2;
        EXPECT_EQ(sequential[i].modelVersion, expectedVersion) << sequential[i].job.key;
        EXPECT_EQ(sharded[i].modelVersion, expectedVersion) << sharded[i].job.key;
        // ... and every terminal record carries the version it ran on.
        ASSERT_FALSE(sequential[i].outcomes.empty()) << sequential[i].job.key;
        for (const auto& outcome : sequential[i].outcomes) {
            EXPECT_EQ(outcome.modelVersion, expectedVersion);
            if (outcome.completed) ++completed;
        }
        // The bit-identity contract (SessionOutcome::operator== covers the
        // pinned version too).
        EXPECT_EQ(sequential[i].outcomes, sharded[i].outcomes) << sequential[i].job.key;
        EXPECT_EQ(sequential[i].discovered, sharded[i].discovered);
    }
    // The swap is not a degenerate pass: sessions on BOTH versions complete.
    EXPECT_GT(completed, static_cast<std::size_t>(kSessions) / 2);
}

}  // namespace
}  // namespace starlink
