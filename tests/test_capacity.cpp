// Million-session capacity suite (ISSUE 7): the bridge must serve an
// unbounded stream of conversations with BOUNDED residency and graceful
// overload behaviour.
//
//   - SessionHistory is a capped ring whose aggregates (including the
//     taxonomy-coded abort histogram) stay exact across eviction;
//   - a >=100k-session soak proves the history/trace/span rings hold at
//     capacity while lifetime totals account for every session;
//   - admission control sheds with engine.overload instead of queuing
//     without bound, and the idle watchdog evicts silent sessions with
//     engine.idle-timeout;
//   - the pre-connect tcp backlog is byte-capped (net.backlog-overflow) and
//     the doubling connect backoff saturates instead of left-shifting past
//     the sign bit (the attempts>31 UB regression);
//   - shard runs stay bit-identical 1-vs-8 even with the island LRU cap
//     forcing evictions mid-run (outcomes are island-history-independent).
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/sim_network.hpp"
#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/engine/network_engine.hpp"
#include "core/engine/shard_engine.hpp"
#include "core/telemetry/metrics.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"
#include "protocols/ssdp/ssdp_codec.hpp"
#include "sim_fixture.hpp"

namespace starlink::engine {
namespace {

using testing::SimTest;

// --- SessionHistory ring -----------------------------------------------------

SessionRecord makeRecord(bool completed, errc::ErrorCode code, std::size_t messages) {
    SessionRecord record;
    record.messagesIn = messages;
    record.messagesOut = messages + 1;
    record.retransmits = completed ? 0 : 1;
    record.completed = completed;
    record.cause = completed ? FailureCause::None : FailureCause::Timeout;
    record.code = code;
    return record;
}

TEST(SessionHistoryRing, BoundedWindowWithExactAggregates) {
    SessionHistory history(4);
    for (int i = 0; i < 6; ++i) {
        history.record(makeRecord(true, errc::ErrorCode::Ok, 2));
    }
    for (int i = 0; i < 3; ++i) {
        history.record(makeRecord(false, errc::ErrorCode::EngineRetryExhausted, 1));
    }
    history.record(makeRecord(false, errc::ErrorCode::EngineIdleTimeout, 1));

    // Window: only the newest 4 records remain...
    EXPECT_EQ(history.size(), 4u);
    EXPECT_EQ(history.capacity(), 4u);
    EXPECT_EQ(history.evicted(), 6u);
    EXPECT_FALSE(history.front().completed);
    EXPECT_EQ(history.back().code, errc::ErrorCode::EngineIdleTimeout);

    // ...but the aggregates still account for all 10.
    EXPECT_EQ(history.totalEnded(), 10u);
    EXPECT_EQ(history.totalCompleted(), 6u);
    EXPECT_EQ(history.totalAborted(), 4u);
    EXPECT_EQ(history.totalMessagesIn(), 6u * 2 + 4u * 1);
    EXPECT_EQ(history.totalMessagesOut(), 6u * 3 + 4u * 2);
    EXPECT_EQ(history.totalRetransmits(), 4u);
    const auto& byCode = history.abortsByCode();
    ASSERT_EQ(byCode.size(), 2u);
    EXPECT_EQ(byCode.at(errc::ErrorCode::EngineRetryExhausted), 3u);
    EXPECT_EQ(byCode.at(errc::ErrorCode::EngineIdleTimeout), 1u);
}

TEST(SessionHistoryRing, CapacityZeroKeepsEveryRecord) {
    SessionHistory history(0);
    for (int i = 0; i < 100; ++i) history.record(makeRecord(true, errc::ErrorCode::Ok, 1));
    EXPECT_EQ(history.size(), 100u);
    EXPECT_EQ(history.evicted(), 0u);
}

// --- toy PING/ECHO bridge (same pair as test_engine/test_resilience) ---------

const char* kPingMdl = R"(<Mdl protocol="PING" kind="binary">
  <Types><Kind>Integer</Kind><Val>Integer</Val></Types>
  <Header type="PING"><Kind>8</Kind></Header>
  <Message type="Ping"><Rule>Kind=1</Rule><Val mandatory="true">16</Val></Message>
  <Message type="Pong"><Rule>Kind=2</Rule><Val mandatory="true">16</Val></Message>
</Mdl>)";

const char* kEchoMdl = R"(<Mdl protocol="ECHO" kind="binary">
  <Types><Kind>Integer</Kind><Num>Integer</Num></Types>
  <Header type="ECHO"><Kind>8</Kind></Header>
  <Message type="EchoReq"><Rule>Kind=1</Rule><Num mandatory="true">16</Num></Message>
  <Message type="EchoRep"><Rule>Kind=2</Rule><Num mandatory="true">16</Num></Message>
</Mdl>)";

const char* kPingAutomaton = R"(<Automaton name="PING">
  <Color transport_protocol="udp" port="901" mode="async" multicast="yes" group="239.9.9.9"/>
  <State id="p0" initial="true"/>
  <State id="p1"/>
  <State id="p2" accepting="true"/>
  <Transition from="p0" action="receive" message="Ping" to="p1"/>
  <Transition from="p1" action="send" message="Pong" to="p2"/>
</Automaton>)";

const char* kEchoAutomaton = R"(<Automaton name="ECHO">
  <Color transport_protocol="udp" port="902" mode="async" multicast="yes" group="239.8.8.8"/>
  <State id="e0" initial="true"/>
  <State id="e1"/>
  <State id="e2" accepting="true"/>
  <Transition from="e0" action="send" message="EchoReq" to="e1"/>
  <Transition from="e1" action="receive" message="EchoRep" to="e2"/>
</Automaton>)";

const char* kBridgeSpec = R"(<Bridge name="ping-to-echo">
  <Start state="p0"/>
  <Accept state="p2"/>
  <Equivalence message="EchoReq" of="Ping"/>
  <Equivalence message="Pong" of="EchoRep"/>
  <TranslationLogic>
    <Assignment>
      <Field state="e0" message="EchoReq" path="Num"/>
      <Field state="p1" message="Ping" path="Val"/>
    </Assignment>
    <Assignment>
      <Field state="p1" message="Pong" path="Val"/>
      <Field state="e2" message="EchoRep" path="Num"/>
    </Assignment>
  </TranslationLogic>
  <DeltaTransition from="p1" to="e0"/>
  <DeltaTransition from="e2" to="p1"/>
</Bridge>)";

Bytes toyMessage(std::uint8_t kind, std::uint16_t value) {
    Bytes out;
    out.push_back(kind);
    appendUint(out, value, 2);
    return out;
}

bridge::models::DeploymentSpec toySpec() {
    bridge::models::DeploymentSpec spec;
    spec.protocols.push_back({kPingMdl, kPingAutomaton});
    spec.protocols.push_back({kEchoMdl, kEchoAutomaton});
    spec.bridgeXml = kBridgeSpec;
    return spec;
}

std::unique_ptr<net::UdpSocket> makeEchoService(net::SimNetwork& network) {
    auto socket = network.openUdp("10.0.0.3", 902);
    socket->joinGroup(net::Address{"239.8.8.8", 902});
    auto* raw = socket.get();
    socket->onDatagram([raw](const Bytes& payload, const net::Address& from) {
        if (payload.size() == 3 && payload[0] == 1) {
            const std::uint16_t num = static_cast<std::uint16_t>(payload[1] << 8 | payload[2]);
            Bytes reply;
            reply.push_back(2);
            appendUint(reply, static_cast<std::uint16_t>(num + 1), 2);
            raw->sendTo(from, reply);
        }
    });
    return socket;
}

class CapacityTest : public SimTest {
protected:
    bridge::Starlink starlink{network};
};

// --- the soak: >=100k sessions, bounded rings, exact aggregates --------------

TEST_F(CapacityTest, HundredThousandSessionSoakKeepsResidencyBounded) {
    constexpr std::size_t kCompleted = 50'000;
    constexpr std::size_t kAborted = 50'000;
    constexpr std::size_t kTotal = kCompleted + kAborted;
    constexpr std::int64_t kSpacingMs = 400;  // > abort path's 12+100+200 ms

    EngineOptions options;
    options.receiveTimeout = net::ms(100);
    options.maxRetransmits = 1;  // an unanswered EchoReq aborts at ~+312 ms
    options.sessionHistoryCapacity = 512;
    options.traceCapacity = 128;
    options.spanCapacity = 64;
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9", options);

    // Phase 1 (first kCompleted pings): the echo service answers, every
    // session completes. Phase 2: the service is torn down mid-run, every
    // session retransmits once into the void and aborts on its drained
    // retransmission budget.
    auto echo = makeEchoService(network);
    scheduler.schedule(net::ms(kSpacingMs * static_cast<std::int64_t>(kCompleted) - 1),
                       [&echo] { echo.reset(); });

    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    for (std::size_t i = 0; i < kTotal; ++i) {
        scheduler.schedule(net::ms(kSpacingMs * static_cast<std::int64_t>(i)),
                           [&client, i] {
                               client->sendTo(net::Address{"239.9.9.9", 901},
                                              toyMessage(1, static_cast<std::uint16_t>(i)));
                           });
    }
    run(5'000'000);
    ASSERT_EQ(scheduler.pendingEvents(), 0u);

    const SessionHistory& history = deployed.engine().sessions();
    // Residency is bounded: the windows sit exactly at their caps...
    EXPECT_EQ(history.size(), 512u);
    EXPECT_EQ(history.evicted(), kTotal - 512);
    EXPECT_EQ(deployed.engine().trace().size(), 128u);
    EXPECT_EQ(deployed.engine().spans().size(), 64u);
    // ...while the lifetime aggregates account for every one of the 100k
    // sessions, exactly.
    EXPECT_EQ(history.totalEnded(), kTotal);
    EXPECT_EQ(history.totalCompleted(), kCompleted);
    EXPECT_EQ(history.totalAborted(), kAborted);
    EXPECT_EQ(history.totalRetransmits(), kAborted);
    // Completed sessions move 2 messages each way (Ping+EchoRep in,
    // EchoReq+Pong out); aborted ones receive 1 (Ping) and send 2 (EchoReq
    // plus its one retransmission).
    EXPECT_EQ(history.totalMessagesIn(), kCompleted * 2 + kAborted * 1);
    EXPECT_EQ(history.totalMessagesOut(), kCompleted * 2 + kAborted * 2);
    // The abort histogram survived ~99.5% eviction intact: one code, exact.
    const auto& byCode = history.abortsByCode();
    ASSERT_EQ(byCode.size(), 1u);
    EXPECT_EQ(byCode.begin()->second, kAborted);
    EXPECT_EQ(byCode.begin()->first, errc::ErrorCode::EngineRetryExhausted);
    // Every record still in the window is from the abort phase.
    for (const SessionRecord& record : history) {
        EXPECT_FALSE(record.completed);
        EXPECT_EQ(record.code, errc::ErrorCode::EngineRetryExhausted);
    }
    // The connector survived the soak at its initial state.
    EXPECT_TRUE(deployed.engine().running());
    EXPECT_EQ(deployed.engine().currentState(), "p0");
}

// --- idle watchdog -----------------------------------------------------------

TEST_F(CapacityTest, IdleTimeoutEvictsSilentSessionWithCodedAbort) {
    EngineOptions options;
    options.receiveTimeout = net::ms(0);  // no retransmit timer: pure silence
    options.maxRetransmits = 0;
    options.idleTimeout = net::ms(300);
    options.sessionTimeout = net::ms(60000);  // far away: idle must fire first
    auto& deployed = starlink.deploy(toySpec(), "10.0.0.9", options);
    // No echo service: after the bridge's EchoReq nothing ever moves.

    auto client = network.openUdp("10.0.0.1", 901);
    client->joinGroup(net::Address{"239.9.9.9", 901});
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 9));
    run();

    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    const SessionRecord& aborted = deployed.engine().sessions()[0];
    EXPECT_FALSE(aborted.completed);
    EXPECT_EQ(aborted.cause, FailureCause::Timeout);
    EXPECT_EQ(aborted.code, errc::ErrorCode::EngineIdleTimeout);
    EXPECT_EQ(deployed.engine().sessions().abortsByCode().at(
                  errc::ErrorCode::EngineIdleTimeout),
              1u);
    // Idle fired at first-move + 300 ms, far before the 60 s watchdog.
    EXPECT_LT(elapsedMs(aborted.sessionTime()), 1000.0);
    EXPECT_EQ(deployed.engine().currentState(), "p0");

    // The deadline re-arms on traffic: with the service up, the same bridge
    // completes a session whose total time exceeds idleTimeout.
    auto echo = makeEchoService(network);
    client->sendTo(net::Address{"239.9.9.9", 901}, toyMessage(1, 10));
    run();
    ASSERT_EQ(deployed.engine().sessions().size(), 2u);
    EXPECT_TRUE(deployed.engine().sessions()[1].completed);
}

// --- pre-connect tcp backlog byte cap ----------------------------------------

TEST_F(CapacityTest, PreConnectTcpBacklogShedsPastByteCap) {
    telemetry::setEnabled(true);
    telemetry::MetricsRegistry registry;
    NetworkEngine::Options options;
    options.maxBacklogBytes = 16;
    options.metrics = &registry;
    NetworkEngine engine(network, "10.0.0.9", options);
    automata::Color color{{automata::keys::transport, "tcp"},
                          {automata::keys::port, "80"},
                          {automata::keys::mode, "sync"},
                          {automata::keys::multicast, "no"}};
    engine.attach(1, color);

    auto listener = network.listenTcp("10.0.0.2", 9090);
    std::vector<Bytes> delivered;
    listener->onAccept([&delivered](std::shared_ptr<net::TcpConnection> connection) {
        connection->onData([&delivered](const Bytes& payload) {
            delivered.push_back(payload);
        });
    });
    engine.setHost(1, "10.0.0.2", 9090);

    // First send starts the (asynchronous) connect and queues 10 bytes; the
    // second would put the pre-connect backlog at 20 > 16 and must shed.
    engine.send(1, toBytes("0123456789"));
    try {
        engine.send(1, toBytes("abcdefghij"));
        FAIL() << "backlog overflow did not throw";
    } catch (const NetError& error) {
        EXPECT_EQ(error.code(), errc::ErrorCode::NetBacklogOverflow);
    }
    run();
    telemetry::setEnabled(false);

    // The queued-in-budget payload still went out once the connect landed.
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(toString(delivered[0]), "0123456789");
    // The shed bytes are accounted.
    const std::string exposition = registry.renderPrometheus();
    EXPECT_NE(exposition.find("starlink_net_backlog_dropped_bytes_total 10"),
              std::string::npos)
        << exposition;
}

// --- connect backoff clamp (attempts > 31 used to left-shift into UB) --------

/// SSDP responder whose LOCATION points at a port nobody listens on, so the
/// bridge's HTTP leg retries its connect to exhaustion.
std::unique_ptr<net::UdpSocket> makeRogueSsdpResponder(net::SimNetwork& network,
                                                       const std::string& location) {
    auto socket = network.openUdp("10.0.0.3", ssdp::kPort);
    socket->joinGroup(net::Address{ssdp::kGroup, ssdp::kPort});
    auto* raw = socket.get();
    socket->onDatagram([raw, location](const Bytes& payload, const net::Address& from) {
        if (!ssdp::decodeMSearch(payload)) return;
        ssdp::Response response;
        response.st = "urn:schemas-upnp-org:service:printer:1";
        response.usn = "uuid:rogue-0001::" + response.st;
        response.location = location;
        raw->sendTo(from, ssdp::encode(response));
    });
    return socket;
}

TEST_F(CapacityTest, ConnectBackoffSaturatesForLargeAttemptBudgets) {
    EngineOptions options;
    // 40 attempts means backoff exponents up to 39: without the clamp the
    // delay computation left-shifts past the sign bit (UB); with it the
    // delay saturates at tcpConnectRetryMaxDelay and the budget drains in
    // bounded virtual time.
    options.tcpConnectAttempts = 40;
    options.tcpConnectRetryMaxDelay = net::ms(200);
    auto& deployed = starlink.deploy(
        bridge::models::forCase(bridge::models::Case::SlpToUpnp, "10.0.0.9"), "10.0.0.9",
        options);
    auto rogue = makeRogueSsdpResponder(network, "http://10.0.0.3:9999/desc.xml");

    slp::UserAgent::Config uaConfig;
    uaConfig.timeout = net::ms(3000);
    slp::UserAgent client(network, uaConfig);
    std::vector<std::string> urls{"sentinel"};
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run(500000);

    EXPECT_TRUE(urls.empty());
    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    // ConnectRefused -- not Timeout -- proves all 40 attempts fit inside the
    // session watchdog: 50+100+38x200 ms ~ 7.8 s of clamped backoff instead
    // of 2^39 x 50 ms of undefined nonsense.
    EXPECT_FALSE(deployed.engine().sessions()[0].completed);
    EXPECT_EQ(deployed.engine().sessions()[0].cause, FailureCause::ConnectRefused);
    EXPECT_EQ(network.connectsRefused(), 40u);
}

// --- overload shedding at the shard driver -----------------------------------

TEST(CapacityShard, AdmissionControlShedsWithCodedError) {
    telemetry::setEnabled(true);
    ShardEngineOptions options;
    options.shards = 2;
    options.maxPendingPerShard = 4;
    ShardEngine engine(options);

    std::vector<bool> admitted;
    for (int i = 0; i < 24; ++i) {
        SessionJob job;
        job.caseId = bridge::models::kAllCases[static_cast<std::size_t>(i) % 6];
        job.key = "overload-" + std::to_string(i);
        admitted.push_back(engine.submit(job));
    }
    const auto& results = engine.run();
    telemetry::setEnabled(false);

    // 2 shards x 4 pending: exactly 8 jobs ran, 16 shed -- and every
    // submission got a result, in submission order.
    ASSERT_EQ(results.size(), 24u);
    std::size_t ran = 0, shed = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].job.key, "overload-" + std::to_string(i));
        if (results[i].shed) {
            ++shed;
            EXPECT_FALSE(admitted[i]);
            EXPECT_EQ(results[i].error, errc::ErrorCode::EngineOverload);
            EXPECT_TRUE(results[i].outcomes.empty());
            EXPECT_FALSE(results[i].discovered);
        } else {
            ++ran;
            EXPECT_TRUE(admitted[i]);
            EXPECT_EQ(results[i].error, errc::ErrorCode::Ok);
        }
    }
    EXPECT_EQ(ran, 8u);
    EXPECT_EQ(shed, 16u);

    std::size_t reportedShed = 0;
    for (const auto& report : engine.reports()) {
        EXPECT_LE(report.jobs, 4u);
        reportedShed += report.shed;
    }
    EXPECT_EQ(reportedShed, 16u);

    // The shed counter is exported per shard.
    telemetry::MetricsRegistry merged;
    engine.mergeMetricsInto(merged);
    EXPECT_NE(merged.renderPrometheus().find("starlink_engine_sessions_shed_total"),
              std::string::npos);
}

// --- island LRU cap + determinism --------------------------------------------

std::vector<SessionJob> mixedWorkload(int count) {
    std::vector<SessionJob> jobs;
    jobs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        SessionJob job;
        job.caseId = bridge::models::kAllCases[static_cast<std::size_t>(i) % 6];
        job.key = "capacity-" + std::to_string(i);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

ShardEngineOptions cappedChaosOptions(int shards) {
    ShardEngineOptions options;
    options.shards = shards;
    options.chaos = true;
    options.chaosLoss = 0.05;
    options.engine.receiveTimeout = net::ms(7000);
    options.engine.maxRetransmits = 5;
    options.engine.retransmitBackoff = 1.5;
    options.engine.retransmitJitter = net::ms(100);
    options.engine.sessionTimeout = net::ms(30000);
    // The capacity knobs under test: every island pool holds at most two
    // directions (the 6-direction workload forces constant LRU churn) and
    // every engine's history ring is far smaller than its session count.
    options.maxIslandsPerShard = 2;
    options.engine.sessionHistoryCapacity = 8;
    return options;
}

TEST(CapacityShard, CappedChaosRunBitIdenticalAcrossShardCounts) {
    const auto jobs = mixedWorkload(120);

    ShardEngine sharded(cappedChaosOptions(8));
    for (const auto& job : jobs) ASSERT_TRUE(sharded.submit(job));
    const auto& parallel = sharded.run();

    ShardEngine sequential(cappedChaosOptions(1));
    for (const auto& job : jobs) ASSERT_TRUE(sequential.submit(job));
    const auto& serial = sequential.run();

    ASSERT_EQ(parallel.size(), jobs.size());
    ASSERT_EQ(serial.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(parallel[i].job.key, serial[i].job.key);
        EXPECT_EQ(parallel[i].discovered, serial[i].discovered) << parallel[i].job.key;
        ASSERT_EQ(parallel[i].outcomes.size(), serial[i].outcomes.size())
            << parallel[i].job.key;
        for (std::size_t s = 0; s < parallel[i].outcomes.size(); ++s) {
            // operator== covers every field, including the taxonomy code.
            EXPECT_TRUE(parallel[i].outcomes[s] == serial[i].outcomes[s])
                << parallel[i].job.key;
        }
    }

    // The LRU cap actually bit: a single shard cycling through 6 directions
    // with 2 island slots evicts constantly, yet outcomes matched above.
    std::size_t evictedSequential = 0;
    for (const auto& report : sequential.reports()) evictedSequential += report.islandsEvicted;
    EXPECT_GT(evictedSequential, 0u);
    std::size_t evictedParallel = 0;
    for (const auto& report : sharded.reports()) evictedParallel += report.islandsEvicted;
    EXPECT_GT(evictedParallel, 0u);
}

}  // namespace
}  // namespace starlink::engine
