// Tests for automatic merge generation from MDLs + colored automata + a
// field ontology (paper section VII future work; DESIGN.md extension).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/merge/spec_loader.hpp"
#include "core/merge/synthesizer.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "sim_fixture.hpp"

namespace starlink::merge {
namespace {

using bridge::models::ProtocolModel;
using bridge::models::Role;
using testing::SimTest;

struct Loaded {
    std::shared_ptr<automata::ColoredAutomaton> automaton;
    std::shared_ptr<mdl::MessageCodec> codec;
};

class SynthesizerTest : public ::testing::Test {
protected:
    automata::ColorRegistry colors;
    std::shared_ptr<TranslationRegistry> translations = TranslationRegistry::withDefaults();
    Ontology ontology = Ontology::discovery();

    Loaded load(const std::string& mdlXml, const std::string& automatonXml) {
        return Loaded{loadAutomaton(automatonXml, colors), mdl::MessageCodec::fromXml(mdlXml)};
    }

    SynthesisResult synthesize(const Loaded& served, const Loaded& queried) {
        SynthesisInput input;
        input.servedAutomaton = served.automaton;
        input.servedMdl = &served.codec->document();
        input.queriedAutomaton = queried.automaton;
        input.queriedMdl = &queried.codec->document();
        input.ontology = &ontology;
        input.translations = translations;
        return synthesizeMerge(input);
    }
};

TEST_F(SynthesizerTest, GeneratesValidSlpToBonjourMerge) {
    const Loaded slp = load(bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server));
    const Loaded dns =
        load(bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Client));
    const SynthesisResult result = synthesize(slp, dns);

    ASSERT_NE(result.merged, nullptr);
    EXPECT_NO_THROW(result.merged->validate());
    EXPECT_EQ(result.merged->classify(), MergeKind::Strong);
    EXPECT_EQ(result.merged->initialState(), "s10");
    EXPECT_TRUE(result.merged->acceptingStates().contains("s12"));

    // Both delta-transitions in the right places.
    ASSERT_NE(result.merged->deltaFrom("s11"), nullptr);
    EXPECT_EQ(result.merged->deltaFrom("s11")->to, "s40");
    ASSERT_NE(result.merged->deltaFrom("s42"), nullptr);
    EXPECT_EQ(result.merged->deltaFrom("s42")->to, "s11");
}

TEST_F(SynthesizerTest, InfersAllMandatoryAssignments) {
    const Loaded slp = load(bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server));
    const Loaded dns =
        load(bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Client));
    const SynthesisResult result = synthesize(slp, dns);

    // DNS_Question composed at s40 gets QName (via slp_to_dnssd) and ID.
    const auto question = result.merged->assignmentsTargeting("s40", "DNS_Question");
    ASSERT_EQ(question.size(), 2u);
    // SLPSrvReply composed at s11 gets XID and URLEntry.
    const auto reply = result.merged->assignmentsTargeting("s11", "SLPSrvReply");
    ASSERT_EQ(reply.size(), 2u);

    // The equivalence coverage check passes against the real MDLs.
    const auto mandatory = [&](const std::string& type) {
        auto fields = slp.codec->document().mandatoryFields(type);
        if (fields.empty()) fields = dns.codec->document().mandatoryFields(type);
        return fields;
    };
    EXPECT_TRUE(result.merged->checkEquivalences(mandatory).empty());
}

TEST_F(SynthesizerTest, RegistersCompositeTranslations) {
    const Loaded dns =
        load(bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Server));
    const Loaded slp = load(bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Client));
    const SynthesisResult result = synthesize(dns, slp);
    // DNS_Response.AName <= DNS_Question.QName requires the round-trip
    // composite dnssd_to_slp + slp_to_dnssd.
    EXPECT_TRUE(translations->contains("ont:dnssd_to_slp+slp_to_dnssd"));
    const auto roundTrip = translations->apply("ont:dnssd_to_slp+slp_to_dnssd",
                                               Value::ofString("_printer._tcp.local"));
    ASSERT_TRUE(roundTrip);
    EXPECT_EQ(roundTrip->asString(), "_printer._tcp.local");
    // Constants from the ontology are applied.
    bool flagsConstant = false;
    for (const Assignment& a : result.merged->assignments()) {
        if (a.target.path == "Flags" && a.constant == "33792") flagsConstant = true;
    }
    EXPECT_TRUE(flagsConstant);
}

TEST_F(SynthesizerTest, ReportNamesEveryInference) {
    const Loaded slp = load(bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server));
    const Loaded dns =
        load(bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Client));
    const SynthesisResult result = synthesize(slp, dns);
    ASSERT_GE(result.report.size(), 6u);  // 4 assignments + 2 deltas
    bool mentionsConcept = false;
    for (const std::string& line : result.report) {
        if (line.find("service-type") != std::string::npos) mentionsConcept = true;
    }
    EXPECT_TRUE(mentionsConcept);
}

TEST_F(SynthesizerTest, RejectsWrongRoles) {
    const Loaded slpClient =
        load(bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Client));
    const Loaded dnsClient =
        load(bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Client));
    EXPECT_THROW(synthesize(slpClient, dnsClient), SpecError);

    const Loaded slpServer =
        load(bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server));
    const Loaded dnsServer =
        load(bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Server));
    EXPECT_THROW(synthesize(slpServer, dnsServer), SpecError);
}

TEST_F(SynthesizerTest, RejectsUnmappableMandatoryField) {
    Ontology empty;  // no concepts at all
    ontology = empty;
    const Loaded slp = load(bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server));
    const Loaded dns =
        load(bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Client));
    try {
        synthesize(slp, dns);
        FAIL() << "expected SpecError";
    } catch (const SpecError& e) {
        EXPECT_NE(std::string(e.what()).find("ontology"), std::string::npos);
    }
}

TEST_F(SynthesizerTest, RejectsIncompleteInput) {
    SynthesisInput input;
    EXPECT_THROW(synthesizeMerge(input), SpecError);
}

// --- end-to-end through the facade ---------------------------------------------

class SynthesizedBridgeTest : public SimTest {
protected:
    bridge::Starlink starlink{network};
};

TEST_F(SynthesizedBridgeTest, SynthesizedSlpToBonjourWorksEndToEnd) {
    std::vector<std::string> report;
    auto& deployed = starlink.deploySynthesized(
        ProtocolModel{bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server)},
        ProtocolModel{bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Client)},
        merge::Ontology::discovery(), "10.0.0.9", {}, &report);
    EXPECT_FALSE(report.empty());

    mdns::Responder::Config responderConfig;
    responderConfig.responseDelayBase = net::ms(5);
    mdns::Responder responder(network, responderConfig);
    slp::UserAgent client(network, {});

    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();

    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], responderConfig.url);
    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    EXPECT_TRUE(deployed.engine().sessions()[0].completed);
}

TEST_F(SynthesizedBridgeTest, SynthesizedBonjourToSlpWorksEndToEnd) {
    auto& deployed = starlink.deploySynthesized(
        ProtocolModel{bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Server)},
        ProtocolModel{bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Client)},
        merge::Ontology::discovery(), "10.0.0.9");

    slp::ServiceAgent::Config serviceConfig;
    serviceConfig.responseDelayBase = net::ms(5);
    slp::ServiceAgent service(network, serviceConfig);
    mdns::Resolver::Config resolverConfig;
    resolverConfig.aggregationBase = net::ms(20);
    mdns::Resolver client(network, resolverConfig);

    std::vector<std::string> urls;
    client.browse("_printer._tcp.local",
                  [&urls](const mdns::Resolver::Result& result) { urls = result.urls; });
    run();

    ASSERT_EQ(urls.size(), 1u);
    EXPECT_EQ(urls[0], serviceConfig.url);
    ASSERT_EQ(deployed.engine().sessions().size(), 1u);
    EXPECT_TRUE(deployed.engine().sessions()[0].completed);
}

TEST_F(SynthesizedBridgeTest, SynthesizedBridgeMatchesHandWrittenBehaviour) {
    // The synthesized SLP->Bonjour bridge and the hand-written Fig 10 bridge
    // must translate identically (same reply URL, same XID echo).
    auto& synthesized = starlink.deploySynthesized(
        ProtocolModel{bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server)},
        ProtocolModel{bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Client)},
        merge::Ontology::discovery(), "10.0.0.9");

    mdns::Responder::Config responderConfig;
    responderConfig.responseDelayBase = net::ms(5);
    mdns::Responder responder(network, responderConfig);
    slp::UserAgent client(network, {});
    std::vector<std::string> urls;
    client.lookup("service:printer",
                  [&urls](const slp::UserAgent::Result& result) { urls = result.urls; });
    run();
    ASSERT_EQ(urls.size(), 1u);  // XID echoed correctly, else the UA drops it

    // The reply's XID was taken from the DNS ID, which was taken from the
    // request XID -- check the trace agrees.
    const auto& trace = synthesized.engine().trace();
    std::optional<std::int64_t> requestXid;
    std::optional<std::int64_t> replyXid;
    for (const auto& event : trace.events()) {
        if (event.message.type() == "SLPSrvRequest") requestXid = event.message.value("XID")->asInt();
        if (event.message.type() == "SLPSrvReply") replyXid = event.message.value("XID")->asInt();
    }
    ASSERT_TRUE(requestXid);
    ASSERT_TRUE(replyXid);
    EXPECT_EQ(*requestXid, *replyXid);
}

}  // namespace
}  // namespace starlink::merge
