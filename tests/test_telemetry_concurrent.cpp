// Concurrency contract of the telemetry layer, verified under load (and
// under TSan in the sanitize=thread CI job).
//
// Two legal multi-threaded shapes exist:
//   1. SHARED registry, concurrent recording: registration is mutex-guarded
//      and idempotent, recording is relaxed-atomic. Totals must be exact --
//      relaxed ordering loses no increments, only ordering.
//   2. PRIVATE per-thread registries / span buffers, merged at export
//      (MetricsRegistry::mergeFrom, SpanBuffer::snapshot) -- the sharded
//      engine's shape. Merge must reproduce the exact sum of the parts.
// SpanBuffer itself is deliberately single-threaded; only shape 2 applies.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/telemetry/metrics.hpp"
#include "core/telemetry/span.hpp"
#include "net/clock.hpp"

namespace starlink::telemetry {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20'000;

void inThreads(int n, const std::function<void(int)>& body) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) workers.emplace_back(body, t);
    for (auto& w : workers) w.join();
}

// Shape 1: all threads register (same names, racing) and record into ONE
// registry. First-wins registration and atomic recording must yield exact
// totals.
TEST(TelemetryConcurrent, SharedRegistryCountersAndGaugesAreExact) {
    MetricsRegistry registry;
    inThreads(kThreads, [&registry](int t) {
        // Every thread resolves the same two shared names plus one of its
        // own -- racing registration against recording on other threads.
        Counter& shared = registry.counter("stress_shared_total");
        Counter& mine =
            registry.counter("stress_thread_total{t=\"" + std::to_string(t) + "\"}");
        Gauge& gauge = registry.gauge("stress_inflight");
        for (int i = 0; i < kOpsPerThread; ++i) {
            shared.add(1);
            mine.add(2);
            gauge.add(1);
            gauge.add(-1);
        }
    });
    EXPECT_EQ(registry.counter("stress_shared_total").value(),
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(registry.counter("stress_thread_total{t=\"" + std::to_string(t) + "\"}")
                      .value(),
                  static_cast<std::uint64_t>(kOpsPerThread) * 2);
    }
    EXPECT_EQ(registry.gauge("stress_inflight").value(), 0);
}

// Shape 1 for histograms: the CAS-loop sum and relaxed bucket counts must
// not lose observations under contention.
TEST(TelemetryConcurrent, SharedHistogramLosesNothing) {
    MetricsRegistry registry;
    const std::vector<double> bounds{1.0, 10.0, 100.0};
    inThreads(kThreads, [&registry, &bounds](int t) {
        Histogram& h = registry.histogram("stress_hist", bounds);
        for (int i = 0; i < kOpsPerThread; ++i) {
            h.observe(static_cast<double>((t + i) % 200));  // spans all buckets
        }
    });
    Histogram& h = registry.histogram("stress_hist", bounds);
    const std::uint64_t expected = static_cast<std::uint64_t>(kThreads) * kOpsPerThread;
    EXPECT_EQ(h.count(), expected);
    std::uint64_t bucketTotal = 0;
    for (const std::uint64_t b : h.bucketCounts()) bucketTotal += b;
    EXPECT_EQ(bucketTotal, expected);
    // Sum of (t + i) % 200 is exactly computable; the CAS loop must not have
    // dropped any addend (doubles hold these integers exactly).
    double exactSum = 0;
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kOpsPerThread; ++i) exactSum += (t + i) % 200;
    }
    EXPECT_EQ(h.sum(), exactSum);
}

// Rendering while other threads record must be safe (the exporter runs off
// the hot path but concurrently with it) and eventually exact once joined.
TEST(TelemetryConcurrent, RenderDuringRecordingThenExactAfterJoin) {
    MetricsRegistry registry;
    std::atomic<bool> stop{false};
    std::thread exporter([&registry, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::string text = registry.renderPrometheus(12345);
            EXPECT_NE(text.find("starlink_virtual_time_us"), std::string::npos);
        }
    });
    inThreads(kThreads, [&registry](int) {
        Counter& c = registry.counter("render_race_total");
        Histogram& h = registry.histogram("render_race_hist", {5.0, 50.0});
        for (int i = 0; i < kOpsPerThread; ++i) {
            c.add(1);
            h.observe(static_cast<double>(i % 100));
        }
    });
    stop.store(true, std::memory_order_relaxed);
    exporter.join();
    EXPECT_EQ(registry.counter("render_race_total").value(),
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    EXPECT_EQ(registry.histogram("render_race_hist", {5.0, 50.0}).count(),
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

// Shape 2: per-thread private registries merged at export reproduce the
// exact totals -- counters add, gauges add, histograms merge bucket-wise.
TEST(TelemetryConcurrent, PerThreadRegistriesMergeToExactTotals) {
    std::vector<MetricsRegistry> shards(kThreads);
    inThreads(kThreads, [&shards](int t) {
        MetricsRegistry& mine = shards[static_cast<std::size_t>(t)];
        Counter& c = mine.counter("merge_total");
        Histogram& h = mine.histogram("merge_hist", {1.0, 2.0, 3.0});
        Gauge& g = mine.gauge("merge_gauge");
        for (int i = 0; i < kOpsPerThread; ++i) {
            c.add(1);
            h.observe(static_cast<double>(i % 5));
            g.add(1);
        }
    });
    MetricsRegistry merged;
    for (const MetricsRegistry& shard : shards) merged.mergeFrom(shard);
    const std::uint64_t expected = static_cast<std::uint64_t>(kThreads) * kOpsPerThread;
    EXPECT_EQ(merged.counter("merge_total").value(), expected);
    EXPECT_EQ(merged.gauge("merge_gauge").value(), static_cast<std::int64_t>(expected));
    Histogram& h = merged.histogram("merge_hist", {1.0, 2.0, 3.0});
    EXPECT_EQ(h.count(), expected);
    const auto buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    // i % 5 in {0,1} <= 1.0; {2} <= 2.0; {3} <= 3.0; {4} -> +Inf. Each value
    // occurs kOpsPerThread / 5 times per thread.
    const std::uint64_t perValue = expected / 5;
    EXPECT_EQ(buckets[0], perValue * 2);
    EXPECT_EQ(buckets[1], perValue);
    EXPECT_EQ(buckets[2], perValue);
    EXPECT_EQ(buckets[3], perValue);
    // Merging with mismatched bounds must refuse, not corrupt.
    MetricsRegistry bad;
    bad.histogram("merge_hist", {9.0});
    EXPECT_THROW(bad.mergeFrom(merged), std::invalid_argument);
}

// mergeFrom while the source is still being recorded into: legal (the shard
// exporter may snapshot mid-run); whatever lands after the merge is simply
// in the next snapshot. Exactness is required only after the join.
TEST(TelemetryConcurrent, MergeDuringRecordingIsSafe) {
    MetricsRegistry source;
    std::atomic<bool> stop{false};
    std::thread recorder([&source, &stop] {
        Counter& c = source.counter("live_total");
        while (!stop.load(std::memory_order_relaxed)) c.add(1);
    });
    for (int i = 0; i < 50; ++i) {
        MetricsRegistry snapshot;
        snapshot.mergeFrom(source);
        EXPECT_LE(snapshot.counter("live_total").value(),
                  source.counter("live_total").value());
    }
    stop.store(true, std::memory_order_relaxed);
    recorder.join();
    MetricsRegistry final_;
    final_.mergeFrom(source);
    EXPECT_EQ(final_.counter("live_total").value(), source.counter("live_total").value());
}

// Shape 2 for spans: one SpanBuffer + SessionTracer per thread, snapshots
// concatenated at export. Totals and per-thread tree integrity must survive.
TEST(TelemetryConcurrent, PerThreadSpanBuffersMergeAtExport) {
    constexpr int kSessionsPerThread = 500;
    std::vector<std::vector<Span>> snapshots(kThreads);
    inThreads(kThreads, [&snapshots](int t) {
        SpanBuffer buffer(8192);
        SessionTracer tracer(buffer);
        net::TimePoint now{};
        for (int s = 0; s < kSessionsPerThread; ++s) {
            tracer.beginSession(now);
            const SpanId leg = tracer.begin("translate", now);
            tracer.attr(leg, "thread", std::to_string(t));
            now += net::ms(3);
            tracer.end(leg, now);
            tracer.endSession(now);
            now += net::ms(1);
        }
        snapshots[static_cast<std::size_t>(t)] = buffer.snapshot();
    });
    std::vector<Span> merged;
    for (auto& snap : snapshots) {
        merged.insert(merged.end(), snap.begin(), snap.end());
    }
    // Every session contributes the root + one leg.
    EXPECT_EQ(merged.size(), static_cast<std::size_t>(kThreads) * kSessionsPerThread * 2);
    std::size_t roots = 0;
    for (const Span& span : merged) {
        if (span.parent == 0) {
            ++roots;
        } else {
            ASSERT_NE(span.attr("thread"), nullptr);
            EXPECT_EQ(span.duration(), net::ms(3));
        }
    }
    EXPECT_EQ(roots, static_cast<std::size_t>(kThreads) * kSessionsPerThread);
}

// The global enabled flag may be flipped while hot paths poll it; this is a
// relaxed atomic, so toggling must be race-free (TSan) and end deterministic.
TEST(TelemetryConcurrent, EnabledFlagTogglesSafely) {
    std::atomic<bool> stop{false};
    std::thread toggler([&stop] {
        bool on = false;
        while (!stop.load(std::memory_order_relaxed)) {
            setEnabled(on = !on);
        }
    });
    inThreads(kThreads, [](int) {
        for (int i = 0; i < kOpsPerThread; ++i) {
            (void)enabled();
        }
    });
    stop.store(true, std::memory_order_relaxed);
    toggler.join();
    setEnabled(false);
    EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace starlink::telemetry
