// Unit tests for the XML MDL dialect in isolation (a toy protocol, separate
// from the WS-Discovery coverage in test_wsd.cpp): path resolution, rules,
// defaults, typed fields, compose element materialisation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/mdl/codec.hpp"
#include "xml/parser.hpp"

namespace starlink::mdl {
namespace {

const char* kToyXmlMdl = R"(<Mdl protocol="TOY" kind="xml">
  <Types>
    <Kind>String</Kind>
    <Seq>Integer</Seq>
    <Deep>String</Deep>
  </Types>
  <Header type="TOY" root="Msg">
    <Kind>Meta/Kind</Kind>
    <Seq>Meta/Seq</Seq>
  </Header>
  <Message type="ToyAsk">
    <Rule>Kind=ask</Rule>
    <What mandatory="true">Payload/What</What>
    <Hint default="none">Payload/Hint</Hint>
  </Message>
  <Message type="ToyTell">
    <Rule>Kind=tell</Rule>
    <Deep mandatory="true">Payload/Deeply/Nested/Value</Deep>
  </Message>
</Mdl>)";

class XmlDialectTest : public ::testing::Test {
protected:
    std::shared_ptr<MessageCodec> codec = MessageCodec::fromXml(kToyXmlMdl);
};

TEST_F(XmlDialectTest, ParsesByRule) {
    const auto ask = codec->parse(toBytes(
        "<Msg><Meta><Kind>ask</Kind><Seq>7</Seq></Meta>"
        "<Payload><What>printers</What></Payload></Msg>"));
    ASSERT_TRUE(ask);
    EXPECT_EQ(ask->type(), "ToyAsk");
    EXPECT_EQ(ask->value("What")->asString(), "printers");
    EXPECT_EQ(ask->value("Seq")->asInt(), 7);  // typed through <Types>

    const auto tell = codec->parse(toBytes(
        "<Msg><Meta><Kind>tell</Kind><Seq>8</Seq></Meta>"
        "<Payload><Deeply><Nested><Value>x</Value></Nested></Deeply></Payload></Msg>"));
    ASSERT_TRUE(tell);
    EXPECT_EQ(tell->type(), "ToyTell");
    EXPECT_EQ(tell->value("Deep")->asString(), "x");
}

TEST_F(XmlDialectTest, OptionalFieldAbsentIsFine) {
    const auto ask = codec->parse(toBytes(
        "<Msg><Meta><Kind>ask</Kind></Meta><Payload><What>w</What></Payload></Msg>"));
    ASSERT_TRUE(ask);
    EXPECT_FALSE(ask->value("Hint"));
    EXPECT_FALSE(ask->value("Seq"));  // header fields are optional at parse
}

TEST_F(XmlDialectTest, MissingMandatoryBodyFieldFailsParse) {
    std::string error;
    EXPECT_FALSE(codec->parse(
        toBytes("<Msg><Meta><Kind>ask</Kind></Meta><Payload/></Msg>"), &error));
    EXPECT_NE(error.find("What"), std::string::npos);
}

TEST_F(XmlDialectTest, UnknownKindFailsParse) {
    std::string error;
    EXPECT_FALSE(codec->parse(
        toBytes("<Msg><Meta><Kind>shout</Kind></Meta></Msg>"), &error));
    EXPECT_NE(error.find("rule"), std::string::npos);
}

TEST_F(XmlDialectTest, WrongRootFailsParse) {
    EXPECT_FALSE(codec->parse(toBytes("<Other><Meta><Kind>ask</Kind></Meta></Other>")));
}

TEST_F(XmlDialectTest, ComposeMaterialisesPathsAndDefaults) {
    AbstractMessage message("ToyAsk");
    message.setValue("Seq", Value::ofInt(41), "Integer");
    message.setValue("What", Value::ofString("scanners"));
    const Bytes wire = codec->compose(message);

    const auto doc = xml::parse(toString(wire));
    EXPECT_EQ(doc->name(), "Msg");
    EXPECT_EQ(doc->child("Meta")->childText("Kind"), "ask");  // rule-forced
    EXPECT_EQ(doc->child("Meta")->childText("Seq"), "41");
    EXPECT_EQ(doc->child("Payload")->childText("What"), "scanners");
    EXPECT_EQ(doc->child("Payload")->childText("Hint"), "none");  // default
}

TEST_F(XmlDialectTest, ComposeParseRoundTrip) {
    AbstractMessage message("ToyTell");
    message.setValue("Seq", Value::ofInt(5), "Integer");
    message.setValue("Deep", Value::ofString("value with <entities> & quotes"));
    const auto back = codec->parse(codec->compose(message));
    ASSERT_TRUE(back);
    EXPECT_EQ(back->type(), "ToyTell");
    EXPECT_EQ(back->value("Deep")->asString(), "value with <entities> & quotes");
    EXPECT_EQ(back->value("Seq")->asInt(), 5);
}

TEST_F(XmlDialectTest, ComposeMissingMandatoryThrows) {
    AbstractMessage message("ToyTell");
    message.setValue("Seq", Value::ofInt(5), "Integer");
    EXPECT_THROW(codec->compose(message), SpecError);
}

TEST(XmlDialectSpec, RequiresRootAttribute) {
    EXPECT_THROW(MdlDocument::fromXml(R"(<Mdl kind="xml">
        <Header type="X"><A>P/A</A></Header><Message type="M"/></Mdl>)"),
                 SpecError);
}

TEST(XmlDialectSpec, RejectsNonPathDialectMixing) {
    // An xml-dialect codec over a binary document (and vice versa) is a
    // construction error.
    const auto xmlDoc = MdlDocument::fromXml(R"(<Mdl kind="xml">
        <Header type="X" root="R"><A>P/A</A></Header>
        <Message type="M"><Rule>A=1</Rule></Message></Mdl>)");
    auto registry = MarshallerRegistry::withDefaults();
    EXPECT_THROW(BinaryCodec(xmlDoc, registry), SpecError);
    EXPECT_THROW(TextCodec(xmlDoc, registry), SpecError);
}

}  // namespace
}  // namespace starlink::mdl
