// The static model linter: the shipped fleet must be spotless, and every
// seeded defect class in tests/models_bad/bad/ must be caught with its
// documented rule id at the right source line.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/lint/linter.hpp"

using starlink::lint::Diagnostic;
using starlink::lint::hasErrors;
using starlink::lint::Linter;
using starlink::lint::renderJson;
using starlink::lint::renderText;
using starlink::lint::Severity;

namespace {

std::string slurp(const std::filesystem::path& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot read " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void addDirectory(Linter& linter, const std::filesystem::path& dir) {
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.is_regular_file() && entry.path().extension() == ".xml") {
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
        linter.addModel(file.filename().string(), slurp(file));
    }
}

/// Lints the toy closure plus the named files from tests/models_bad/bad/.
std::vector<Diagnostic> lintClosureWith(const std::vector<std::string>& mutants) {
    Linter linter;
    addDirectory(linter, std::filesystem::path(STARLINK_MODELS_BAD_DIR) / "closure");
    for (const std::string& name : mutants) {
        const auto path = std::filesystem::path(STARLINK_MODELS_BAD_DIR) / "bad" / name;
        linter.addModel(name, slurp(path));
    }
    return linter.run();
}

const Diagnostic* findRule(const std::vector<Diagnostic>& diagnostics,
                           const std::string& rule) {
    for (const Diagnostic& d : diagnostics) {
        if (d.rule == rule) return &d;
    }
    return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// The fleet and the control closure are clean.

TEST(Lint, ShippedModelFleetHasZeroDiagnostics) {
    Linter linter;
    addDirectory(linter, STARLINK_MODELS_DIR);
    const auto diagnostics = linter.run();
    EXPECT_TRUE(diagnostics.empty()) << renderText(diagnostics);
}

TEST(Lint, ControlClosureIsClean) {
    const auto diagnostics = lintClosureWith({});
    EXPECT_TRUE(diagnostics.empty()) << renderText(diagnostics);
}

// ---------------------------------------------------------------------------
// Seeded defects: one mutant per rule, asserting rule id AND line number.

TEST(Lint, CatchesTypodTransform) {
    const auto diagnostics = lintClosureWith({"typod_transform.bridge.xml"});
    ASSERT_EQ(diagnostics.size(), 1u) << renderText(diagnostics);
    const Diagnostic* d = findRule(diagnostics, "bridge.transform.unknown");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_EQ(d->file, "typod_transform.bridge.xml");
    EXPECT_EQ(d->line, 8);
    EXPECT_NE(d->message.find("identty"), std::string::npos);
    EXPECT_NE(d->message.find("did you mean 'identity'"), std::string::npos);
}

TEST(Lint, CatchesDanglingStateReference) {
    const auto diagnostics = lintClosureWith({"dangling_state.bridge.xml"});
    ASSERT_EQ(diagnostics.size(), 1u) << renderText(diagnostics);
    const Diagnostic* d = findRule(diagnostics, "bridge.state.unknown");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 9);
    EXPECT_NE(d->message.find("'zz'"), std::string::npos);
}

TEST(Lint, CatchesMissingDelta) {
    const auto diagnostics = lintClosureWith({"missing_delta.bridge.xml"});
    ASSERT_EQ(diagnostics.size(), 1u) << renderText(diagnostics);
    const Diagnostic* d = findRule(diagnostics, "bridge.delta.missing");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 2);
    EXPECT_NE(d->message.find("'b2'"), std::string::npos);
}

TEST(Lint, CatchesUnknownField) {
    const auto diagnostics = lintClosureWith({"bad_field.bridge.xml"});
    ASSERT_EQ(diagnostics.size(), 1u) << renderText(diagnostics);
    const Diagnostic* d = findRule(diagnostics, "bridge.field.unknown");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 9);
    EXPECT_NE(d->message.find("'Nmae'"), std::string::npos);
}

TEST(Lint, CatchesUncoveredEquivalence) {
    const auto diagnostics = lintClosureWith({"uncovered_equivalence.bridge.xml"});
    ASSERT_EQ(diagnostics.size(), 1u) << renderText(diagnostics);
    const Diagnostic* d = findRule(diagnostics, "bridge.equivalence.uncovered");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 4);
    EXPECT_NE(d->message.find("PB_Req.Name"), std::string::npos);
}

TEST(Lint, CatchesUnknownMessageType) {
    const auto diagnostics = lintClosureWith({"unknown_message.automaton.xml"});
    ASSERT_EQ(diagnostics.size(), 1u) << renderText(diagnostics);
    const Diagnostic* d = findRule(diagnostics, "automaton.message.unknown");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 7);
    EXPECT_NE(d->message.find("PA_Zap"), std::string::npos);
}

TEST(Lint, CatchesNondeterministicReceive) {
    const auto diagnostics =
        lintClosureWith({"pc.mdl.xml", "nondet_receive.automaton.xml"});
    // The broken dispatch is reported twice: at the MDL (two rule-less
    // messages shadow each other) and at the automaton state fanning out on
    // them.
    const Diagnostic* ambiguous = findRule(diagnostics, "automaton.receive.ambiguous");
    ASSERT_NE(ambiguous, nullptr) << renderText(diagnostics);
    EXPECT_EQ(ambiguous->file, "nondet_receive.automaton.xml");
    EXPECT_EQ(ambiguous->line, 7);
    const Diagnostic* shadowed = findRule(diagnostics, "mdl.rule.shadowed");
    ASSERT_NE(shadowed, nullptr) << renderText(diagnostics);
    EXPECT_EQ(shadowed->file, "pc.mdl.xml");
    EXPECT_EQ(shadowed->line, 13);
    EXPECT_EQ(diagnostics.size(), 2u) << renderText(diagnostics);
}

TEST(Lint, CatchesDeadTransitionAndDeadEndState) {
    const auto diagnostics = lintClosureWith({"dead_transition.automaton.xml"});
    const Diagnostic* dead = findRule(diagnostics, "automaton.transition.dead");
    ASSERT_NE(dead, nullptr) << renderText(diagnostics);
    EXPECT_EQ(dead->severity, Severity::Warning);
    EXPECT_EQ(dead->line, 7);
    const Diagnostic* deadEnd = findRule(diagnostics, "automaton.state.dead-end");
    ASSERT_NE(deadEnd, nullptr) << renderText(diagnostics);
    EXPECT_EQ(deadEnd->line, 5);
    EXPECT_EQ(diagnostics.size(), 2u) << renderText(diagnostics);
    // Warnings alone do not fail a fleet.
    EXPECT_FALSE(hasErrors(diagnostics));
}

TEST(Lint, CatchesShadowedRule) {
    const auto diagnostics = lintClosureWith({"shadowed_rule.mdl.xml"});
    ASSERT_EQ(diagnostics.size(), 1u) << renderText(diagnostics);
    const Diagnostic* d = findRule(diagnostics, "mdl.rule.shadowed");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 15);
    EXPECT_NE(d->message.find("PE_Dup"), std::string::npos);
}

TEST(Lint, CatchesUnknownMarshaller) {
    const auto diagnostics = lintClosureWith({"unknown_marshaller.mdl.xml"});
    ASSERT_EQ(diagnostics.size(), 1u) << renderText(diagnostics);
    const Diagnostic* d = findRule(diagnostics, "mdl.marshaller.unknown");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 3);
    EXPECT_NE(d->message.find("'Strng'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Infrastructure behaviour.

TEST(Lint, UnparseableXmlBecomesDiagnostic) {
    Linter linter;
    linter.addModel("broken.xml", "<Mdl protocol='x'");
    const auto diagnostics = linter.run();
    ASSERT_EQ(diagnostics.size(), 1u);
    EXPECT_EQ(diagnostics[0].rule, "xml.parse");
    EXPECT_TRUE(hasErrors(diagnostics));
}

TEST(Lint, UnknownRootElementBecomesDiagnostic) {
    Linter linter;
    linter.addModel("odd.xml", "<Widget/>");
    const auto diagnostics = linter.run();
    ASSERT_EQ(diagnostics.size(), 1u);
    EXPECT_EQ(diagnostics[0].rule, "lint.unknown-kind");
}

TEST(Lint, BridgeWithoutClosureReportsMissingClosure) {
    Linter linter;
    const auto path =
        std::filesystem::path(STARLINK_MODELS_BAD_DIR) / "closure" / "good.bridge.xml";
    linter.addModel("good.bridge.xml", slurp(path));
    const auto diagnostics = linter.run();
    ASSERT_EQ(diagnostics.size(), 1u) << renderText(diagnostics);
    EXPECT_EQ(diagnostics[0].rule, "bridge.closure.missing");
}

TEST(Lint, RenderTextAndJsonCarryFileLineRule) {
    const auto diagnostics = lintClosureWith({"typod_transform.bridge.xml"});
    ASSERT_EQ(diagnostics.size(), 1u);
    const std::string text = renderText(diagnostics);
    EXPECT_NE(text.find("typod_transform.bridge.xml:8: error [bridge.transform.unknown]"),
              std::string::npos)
        << text;
    const std::string json = renderJson(diagnostics);
    EXPECT_NE(json.find("\"rule\": \"bridge.transform.unknown\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"line\": 8"), std::string::npos) << json;
    EXPECT_EQ(renderJson({}), "[]\n");
}
