// Unit tests for merged automata, delta-transitions, merge constraints,
// translation logic and its XML loaders (paper sections III-C/III-D,
// experiments E5/E6).
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/merge/merged_automaton.hpp"
#include "core/merge/spec_loader.hpp"
#include "core/merge/translation.hpp"

namespace starlink::merge {
namespace {

using automata::ColorRegistry;
using bridge::models::Case;
using bridge::models::Role;

// --- translation functions ------------------------------------------------------

TEST(Translations, ServiceNameConversions) {
    auto registry = TranslationRegistry::withDefaults();
    EXPECT_EQ(registry->apply("slp_to_dnssd", Value::ofString("service:printer"))->asString(),
              "_printer._tcp.local");
    EXPECT_EQ(registry->apply("dnssd_to_slp", Value::ofString("_printer._tcp.local"))->asString(),
              "service:printer");
    EXPECT_EQ(registry->apply("slp_to_urn", Value::ofString("service:printer"))->asString(),
              "urn:schemas-upnp-org:service:printer:1");
    EXPECT_EQ(registry
                  ->apply("urn_to_slp",
                          Value::ofString("urn:schemas-upnp-org:service:printer:1"))
                  ->asString(),
              "service:printer");
    EXPECT_EQ(registry
                  ->apply("urn_to_dnssd",
                          Value::ofString("urn:schemas-upnp-org:service:printer:1"))
                  ->asString(),
              "_printer._tcp.local");
    EXPECT_EQ(registry->apply("dnssd_to_urn", Value::ofString("_printer._tcp.local"))->asString(),
              "urn:schemas-upnp-org:service:printer:1");
}

TEST(Translations, ConversionsAreMutuallyInverse) {
    auto registry = TranslationRegistry::withDefaults();
    const Value slp = Value::ofString("service:scanner");
    const auto viaDnssd = registry->apply("dnssd_to_slp", *registry->apply("slp_to_dnssd", slp));
    EXPECT_EQ(viaDnssd->asString(), "service:scanner");
    const auto viaUrn = registry->apply("urn_to_slp", *registry->apply("slp_to_urn", slp));
    EXPECT_EQ(viaUrn->asString(), "service:scanner");
}

TEST(Translations, UrlParsing) {
    auto registry = TranslationRegistry::withDefaults();
    const Value url = Value::ofString("http://10.0.0.3:8080/desc.xml");
    EXPECT_EQ(registry->apply("url_host", url)->asString(), "10.0.0.3");
    EXPECT_EQ(registry->apply("url_port", url)->asInt(), 8080);
    EXPECT_EQ(registry->apply("url_path", url)->asString(), "/desc.xml");
    // Scheme default port and path.
    const Value bare = Value::ofString("http://host");
    EXPECT_EQ(registry->apply("url_port", bare)->asInt(), 80);
    EXPECT_EQ(registry->apply("url_path", bare)->asString(), "/");
    EXPECT_FALSE(registry->apply("url_host", Value::ofString("http://:80/")));
}

TEST(Translations, UrlParsingBracketedIpv6) {
    auto registry = TranslationRegistry::withDefaults();
    const Value url = Value::ofString("http://[::1]:8080/desc.xml");
    EXPECT_EQ(registry->apply("url_host", url)->asString(), "::1");
    EXPECT_EQ(registry->apply("url_port", url)->asInt(), 8080);
    EXPECT_EQ(registry->apply("url_path", url)->asString(), "/desc.xml");
    // Bracketed literal with no explicit port falls back to the scheme default.
    const Value bare = Value::ofString("http://[fe80::1]");
    EXPECT_EQ(registry->apply("url_host", bare)->asString(), "fe80::1");
    EXPECT_EQ(registry->apply("url_port", bare)->asInt(), 80);
    EXPECT_EQ(registry->apply("url_path", bare)->asString(), "/");
    // Malformed literals must not half-parse.
    EXPECT_FALSE(registry->apply("url_host", Value::ofString("http://[::1")));
    EXPECT_FALSE(registry->apply("url_host", Value::ofString("http://[::1]x/")));
}

TEST(Translations, UrlPortHasNoDefaultForUnknownSchemes) {
    auto registry = TranslationRegistry::withDefaults();
    // SLP-style URLs carry no well-known port; inventing 80 would mislead the
    // bridge, so url_port rejects instead.
    EXPECT_FALSE(registry->apply("url_port", Value::ofString("service:printer://host/q")));
    EXPECT_FALSE(registry->apply("url_port", Value::ofString("host/q")));
    EXPECT_EQ(registry->apply("url_port", Value::ofString("service:printer://host:515/q"))
                  ->asInt(),
              515);
    EXPECT_EQ(registry->apply("url_port", Value::ofString("https://host/"))->asInt(), 443);
    // Out-of-range explicit ports are rejected outright.
    EXPECT_FALSE(registry->apply("url_port", Value::ofString("http://host:99999/")));
}

TEST(Translations, UrlBaseExtraction) {
    auto registry = TranslationRegistry::withDefaults();
    const Value body = Value::ofString(
        "<root><device><URLBase> http://10.0.0.3:9090/print </URLBase></device></root>");
    EXPECT_EQ(registry->apply("url_base", body)->asString(), "http://10.0.0.3:9090/print");
    EXPECT_FALSE(registry->apply("url_base", Value::ofString("<root/>")));
}

TEST(Translations, DeviceDescriptionRoundTripsWithUrlBase) {
    auto registry = TranslationRegistry::withDefaults();
    const Value url = Value::ofString("service:printer://10.0.0.2:515/q");
    const auto description = registry->apply("device_description", url);
    ASSERT_TRUE(description);
    EXPECT_EQ(registry->apply("url_base", *description)->asString(),
              "service:printer://10.0.0.2:515/q");
}

TEST(Translations, UnknownFunctionIsNullopt) {
    auto registry = TranslationRegistry::withDefaults();
    EXPECT_FALSE(registry->apply("nope", Value::ofString("x")));
}

TEST(Translations, RuntimeRegistration) {
    auto registry = TranslationRegistry::withDefaults();
    registry->add("shout", [](const Value& v) -> std::optional<Value> {
        return Value::ofString(v.toText() + "!");
    });
    EXPECT_EQ(registry->apply("shout", Value::ofString("hi"))->asString(), "hi!");
}

// --- xpath <-> dotted path ---------------------------------------------------------

TEST(FieldPaths, XpathToDotted) {
    EXPECT_EQ(xpathToFieldPath("/field/primitiveField[label='ST']/value"), "ST");
    EXPECT_EQ(xpathToFieldPath("/field/structuredField[label='URL']/primitiveField[label='port']"
                               "/value"),
              "URL.port");
}

TEST(FieldPaths, DottedToXpathAndBack) {
    for (const std::string path : {"ST", "URL.port", "a.b.c"}) {
        EXPECT_EQ(xpathToFieldPath(fieldPathToXpath(path)), path);
    }
}

TEST(FieldPaths, RoundTripsRandomSafeLabels) {
    // Property check: any dotted path built from labels free of '.' and '\''
    // survives dotted -> xpath -> dotted unchanged.
    std::mt19937 rng(20260806);
    const std::string alphabet =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_- :/[]@";
    for (int iteration = 0; iteration < 200; ++iteration) {
        const int depth = 1 + static_cast<int>(rng() % 4);
        std::vector<std::string> labels;
        for (int i = 0; i < depth; ++i) {
            const int length = 1 + static_cast<int>(rng() % 12);
            std::string label;
            for (int j = 0; j < length; ++j) {
                label.push_back(alphabet[rng() % alphabet.size()]);
            }
            labels.push_back(label);
        }
        std::string dotted = labels[0];
        for (std::size_t i = 1; i < labels.size(); ++i) dotted += "." + labels[i];
        EXPECT_EQ(xpathToFieldPath(fieldPathToXpath(dotted)), dotted) << dotted;
    }
}

TEST(FieldPaths, RejectsLabelsThatCannotRoundTrip) {
    EXPECT_THROW(fieldPathToXpath(""), SpecError);
    EXPECT_THROW(fieldPathToXpath("a..b"), SpecError);    // empty middle label
    EXPECT_THROW(fieldPathToXpath("a.b."), SpecError);    // empty trailing label
    EXPECT_THROW(fieldPathToXpath("a'b"), SpecError);     // breaks xpath quoting
    EXPECT_THROW(fieldPathToXpath("x.a'b"), SpecError);
    EXPECT_THROW(xpathToFieldPath("/field/primitiveField[label='a.b']/value"), SpecError);
    EXPECT_THROW(xpathToFieldPath("/field/primitiveField[label='']/value"), SpecError);
}

TEST(FieldPaths, RejectsForeignShapes) {
    EXPECT_THROW(xpathToFieldPath("/other/primitiveField[label='x']/value"), SpecError);
    EXPECT_THROW(xpathToFieldPath("/field/primitiveField/value"), SpecError);
    EXPECT_THROW(xpathToFieldPath("/field/primitiveField[label='x']"), SpecError);
    EXPECT_THROW(
        xpathToFieldPath("/field/primitiveField[label='x']/structuredField[label='y']/value"),
        SpecError);
}

// --- loaders ------------------------------------------------------------------------

TEST(SpecLoader, LoadsColoredAutomaton) {
    ColorRegistry colors;
    const auto automaton = loadAutomaton(bridge::models::slpAutomaton(Role::Server), colors);
    EXPECT_EQ(automaton->name(), "SLP");
    EXPECT_EQ(automaton->initialState(), "s10");
    EXPECT_EQ(automaton->acceptingStates(), (std::vector<std::string>{"s12"}));
    const automata::Color* color = colors.lookup(automaton->color());
    ASSERT_NE(color, nullptr);
    EXPECT_EQ(color->port(), 427);
    EXPECT_EQ(color->group(), "239.255.255.253");
}

TEST(SpecLoader, ClientAndServerRolesDiffer) {
    ColorRegistry colors;
    const auto server = loadAutomaton(bridge::models::slpAutomaton(Role::Server), colors);
    const auto client = loadAutomaton(bridge::models::slpAutomaton(Role::Client), colors);
    EXPECT_NE(server->transitionFor("s10", automata::Action::Receive, "SLPSrvRequest"), nullptr);
    EXPECT_NE(client->transitionFor("s10", automata::Action::Send, "SLPSrvRequest"), nullptr);
    // Same protocol, same color regardless of role.
    EXPECT_EQ(server->color(), client->color());
}

TEST(SpecLoader, AutomatonRejectsBadDocuments) {
    ColorRegistry colors;
    EXPECT_THROW(loadAutomaton("<NotAutomaton/>", colors), SpecError);
    EXPECT_THROW(loadAutomaton("<Automaton name='A'><State id='s'/></Automaton>", colors),
                 SpecError);  // no color
    EXPECT_THROW(loadAutomaton(R"(<Automaton name="A"><Color/>
        <State id="a" initial="true" accepting="true"/>
        <Transition from="a" action="teleport" message="M" to="a"/></Automaton>)",
                               colors),
                 SpecError);  // bad action
}

// --- merged automaton over the built-in cases --------------------------------------

std::shared_ptr<MergedAutomaton> loadCase(Case c, ColorRegistry& colors) {
    const auto spec = bridge::models::forCase(c, "10.0.0.9");
    std::vector<std::shared_ptr<automata::ColoredAutomaton>> components;
    for (const auto& protocol : spec.protocols) {
        components.push_back(loadAutomaton(protocol.automatonXml, colors));
    }
    return loadBridge(spec.bridgeXml, std::move(components));
}

TEST(MergedAutomatonSpec, AllSixCasesValidate) {
    for (const Case c : bridge::models::kAllCases) {
        ColorRegistry colors;
        const auto merged = loadCase(c, colors);
        EXPECT_NO_THROW(merged->validate()) << bridge::models::caseName(c);
    }
}

TEST(MergedAutomatonSpec, Fig4ChainIsWeaklyMerged) {
    // SLP/SSDP/HTTP: SSDP never delta-returns to SLP -- the chain passes
    // through HTTP (paper Fig 4 is a weakly merged automaton).
    ColorRegistry colors;
    const auto merged = loadCase(Case::SlpToUpnp, colors);
    EXPECT_EQ(merged->classify(), MergeKind::Weak);
}

TEST(MergedAutomatonSpec, TwoProtocolMergeIsStrong) {
    ColorRegistry colors;
    EXPECT_EQ(loadCase(Case::SlpToBonjour, colors)->classify(), MergeKind::Strong);
    ColorRegistry colors2;
    EXPECT_EQ(loadCase(Case::BonjourToSlp, colors2)->classify(), MergeKind::Strong);
}

TEST(MergedAutomatonSpec, LookupHelpers) {
    ColorRegistry colors;
    const auto merged = loadCase(Case::SlpToBonjour, colors);
    EXPECT_NE(merged->component("SLP"), nullptr);
    EXPECT_NE(merged->component("mDNS"), nullptr);
    EXPECT_EQ(merged->component("HTTP"), nullptr);
    EXPECT_EQ(merged->automatonOf("s11")->name(), "SLP");
    EXPECT_EQ(merged->automatonOf("s40")->name(), "mDNS");
    EXPECT_EQ(merged->automatonOf("ghost"), nullptr);
    ASSERT_NE(merged->deltaFrom("s11"), nullptr);
    EXPECT_EQ(merged->deltaFrom("s11")->to, "s40");
    EXPECT_EQ(merged->deltaFrom("s10"), nullptr);
}

TEST(MergedAutomatonSpec, AssignmentsTargetingFilters) {
    ColorRegistry colors;
    const auto merged = loadCase(Case::SlpToBonjour, colors);
    const auto atReply = merged->assignmentsTargeting("s11", "SLPSrvReply");
    EXPECT_EQ(atReply.size(), 2u);  // URLEntry + XID
    EXPECT_TRUE(merged->assignmentsTargeting("s11", "Nope").empty());
}

TEST(MergedAutomatonSpec, EquivalenceCoverageDetectsGaps) {
    ColorRegistry colors;
    const auto merged = loadCase(Case::SlpToBonjour, colors);
    // With the real mandatory fields everything is covered.
    const auto mandatory = [](const std::string& type) -> std::vector<std::string> {
        if (type == "DNS_Question") return {"ID", "QName"};
        if (type == "SLPSrvReply") return {"XID", "URLEntry"};
        return {};
    };
    EXPECT_TRUE(merged->checkEquivalences(mandatory).empty());
    // Demand a field nothing assigns and the check reports it.
    const auto demanding = [](const std::string& type) -> std::vector<std::string> {
        if (type == "DNS_Question") return {"ID", "QName", "Ghost"};
        return {};
    };
    const auto uncovered = merged->checkEquivalences(demanding);
    ASSERT_EQ(uncovered.size(), 1u);
    EXPECT_EQ(uncovered[0], "DNS_Question.Ghost");
}

TEST(MergedAutomatonSpec, DeltaInsideOneAutomatonRejected) {
    ColorRegistry colors;
    auto a = loadAutomaton(bridge::models::slpAutomaton(Role::Server), colors);
    auto b = loadAutomaton(bridge::models::mdnsAutomaton(Role::Client), colors);
    MergedAutomaton merged("bad");
    merged.addComponent(std::move(a));
    merged.addComponent(std::move(b));
    merged.setInitial("s10");
    merged.addAccepting("s12");
    merged.addDelta(DeltaTransition{"s10", "s11", {}});
    EXPECT_THROW(merged.validate(), SpecError);
}

TEST(MergedAutomatonSpec, DeltaViolatingMergeConstraintsRejected) {
    ColorRegistry colors;
    auto a = loadAutomaton(bridge::models::slpAutomaton(Role::Server), colors);
    auto b = loadAutomaton(bridge::models::mdnsAutomaton(Role::Client), colors);
    MergedAutomaton merged("bad");
    merged.addComponent(std::move(a));
    merged.addComponent(std::move(b));
    merged.setInitial("s10");
    merged.addAccepting("s12");
    // s10 has no incoming receive and s41 is not an initial state: neither
    // form (i), (ii) nor (iii) holds.
    merged.addDelta(DeltaTransition{"s10", "s41", {}});
    EXPECT_THROW(merged.validate(), SpecError);
}

TEST(MergedAutomatonSpec, DuplicateStateIdsAcrossComponentsRejected) {
    ColorRegistry colors;
    auto a = loadAutomaton(bridge::models::slpAutomaton(Role::Server), colors);
    auto b = loadAutomaton(bridge::models::slpAutomaton(Role::Client), colors);
    MergedAutomaton merged("bad");
    merged.addComponent(std::move(a));
    merged.addComponent(std::move(b));
    merged.setInitial("s10");
    merged.addAccepting("s12");
    EXPECT_THROW(merged.validate(), SpecError);
}

TEST(SpecLoader, BridgeRejectsMalformedDocuments) {
    ColorRegistry colors;
    auto components = [&colors] {
        std::vector<std::shared_ptr<automata::ColoredAutomaton>> out;
        out.push_back(loadAutomaton(bridge::models::slpAutomaton(Role::Server), colors));
        return out;
    };
    EXPECT_THROW(loadBridge("<NotBridge/>", components()), SpecError);
    EXPECT_THROW(loadBridge("<Bridge name='b'/>", components()), SpecError);  // no Start
    EXPECT_THROW(loadBridge(R"(<Bridge name="b"><Start state="s10"/>
        <Equivalence message="M" of=""/></Bridge>)",
                            components()),
                 SpecError);
    EXPECT_THROW(loadBridge(R"(<Bridge name="b"><Start state="s10"/>
        <TranslationLogic><Assignment>
          <Field state="a" message="M" path="f"/>
        </Assignment></TranslationLogic></Bridge>)",
                            components()),
                 SpecError);  // no source
}

TEST(SpecLoader, BridgeSpecSizeMatchesPaperBallpark) {
    // Paper section V-C: merged automata are "typically around 100 lines of
    // XML". Ours are the same order of magnitude.
    for (const Case c : bridge::models::kAllCases) {
        const auto spec = bridge::models::forCase(c, "10.0.0.9");
        const std::size_t lines = bridge::models::bridgeSpecLines(spec);
        EXPECT_GE(lines, 15u) << bridge::models::caseName(c);
        EXPECT_LE(lines, 150u) << bridge::models::caseName(c);
    }
}

}  // namespace
}  // namespace starlink::merge
