// Shared test fixture: one simulated network on virtual time.
#pragma once

#include <gtest/gtest.h>

#include "net/sim_network.hpp"

namespace starlink::testing {

class SimTest : public ::testing::Test {
protected:
    net::VirtualClock clock;
    net::EventScheduler scheduler{clock};
    net::SimNetwork network{scheduler};

    /// The backend through the interface every engine layer now programs
    /// against; tests that should stay backend-generic use this instead of
    /// naming `network` (which keeps sim-only powers like chaos explicit).
    net::Network& net() { return network; }

    /// Runs the simulation to quiescence (bounded, so a livelock fails the
    /// test instead of hanging it).
    void run(std::size_t maxEvents = 100000) { scheduler.runUntilIdle(maxEvents); }

    double elapsedMs(net::Duration d) const {
        return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(d).count();
    }
};

}  // namespace starlink::testing
