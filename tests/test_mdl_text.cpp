// Unit tests for the text MDL interpreter against the built-in SSDP and HTTP
// MDLs (paper Fig 11, experiment E7).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/mdl/codec.hpp"
#include "protocols/http/http_codec.hpp"
#include "protocols/ssdp/ssdp_codec.hpp"

namespace starlink::mdl {
namespace {

class SsdpCodecTest : public ::testing::Test {
protected:
    std::shared_ptr<MessageCodec> codec = MessageCodec::fromXml(bridge::models::ssdpMdl());
};

TEST_F(SsdpCodecTest, ParsesLegacyMSearch) {
    ssdp::MSearch search;
    search.st = "urn:schemas-upnp-org:service:printer:1";
    const auto message = codec->parse(ssdp::encode(search));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "SSDP_MSearch");
    EXPECT_EQ(message->value("Method")->asString(), "M-SEARCH");
    EXPECT_EQ(message->value("URI")->asString(), "*");
    EXPECT_EQ(message->value("ST")->asString(), "urn:schemas-upnp-org:service:printer:1");
    EXPECT_EQ(message->value("MX")->asInt(), 2);  // typed via <Types>
}

TEST_F(SsdpCodecTest, ParsesLegacyResponse) {
    ssdp::Response response;
    response.st = "urn:x";
    response.usn = "uuid:1::urn:x";
    response.location = "http://10.0.0.3:8080/desc.xml";
    const auto message = codec->parse(ssdp::encode(response));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "SSDP_Resp");
    EXPECT_EQ(message->value("LOCATION")->asString(), "http://10.0.0.3:8080/desc.xml");
    EXPECT_EQ(message->value("USN")->asString(), "uuid:1::urn:x");
}

TEST_F(SsdpCodecTest, ComposedMSearchDecodableByLegacyStack) {
    AbstractMessage message("SSDP_MSearch");
    message.setValue("ST", Value::ofString("urn:y"));
    const auto decoded = ssdp::decodeMSearch(codec->compose(message));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->st, "urn:y");
    EXPECT_EQ(decoded->mx, 2);                      // meta default
    EXPECT_EQ(decoded->man, "\"ssdp:discover\"");  // meta default with entities
}

TEST_F(SsdpCodecTest, ComposedResponseDecodableByLegacyStack) {
    AbstractMessage message("SSDP_Resp");
    message.setValue("ST", Value::ofString("urn:y"));
    message.setValue("USN", Value::ofString("uuid:bridge::urn:y"));
    message.setValue("LOCATION", Value::ofString("http://10.0.0.9:8085/desc.xml"));
    const auto decoded = ssdp::decodeResponse(codec->compose(message));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->location, "http://10.0.0.9:8085/desc.xml");
    EXPECT_EQ(decoded->st, "urn:y");
}

TEST_F(SsdpCodecTest, ComposeMissingMandatoryThrows) {
    AbstractMessage message("SSDP_Resp");
    message.setValue("ST", Value::ofString("urn:y"));
    EXPECT_THROW(codec->compose(message), SpecError);  // LOCATION missing
}

TEST_F(SsdpCodecTest, ParseRejectsUnknownStartLine) {
    std::string error;
    EXPECT_FALSE(codec->parse(toBytes("NOTIFY * HTTP/1.1\r\n\r\n"), &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(codec->parse(toBytes("garbage"), &error));
}

TEST_F(SsdpCodecTest, HeaderValueMayContainInnerSplitChar) {
    // LOCATION values contain ':' -- only the FIRST one splits.
    ssdp::Response response;
    response.st = "urn:a:b:c";
    response.location = "http://10.0.0.3:8080/desc.xml";
    const auto message = codec->parse(ssdp::encode(response));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->value("ST")->asString(), "urn:a:b:c");
}

TEST_F(SsdpCodecTest, RoundTripThroughLegacyDecode) {
    // compose -> legacy decode -> legacy encode -> parse keeps the fields.
    AbstractMessage message("SSDP_MSearch");
    message.setValue("ST", Value::ofString("urn:z"));
    const auto legacy = ssdp::decodeMSearch(codec->compose(message));
    ASSERT_TRUE(legacy);
    const auto back = codec->parse(ssdp::encode(*legacy));
    ASSERT_TRUE(back);
    EXPECT_EQ(back->value("ST")->asString(), "urn:z");
}

class HttpCodecTest : public ::testing::Test {
protected:
    std::shared_ptr<MessageCodec> codec = MessageCodec::fromXml(bridge::models::httpMdl());
};

TEST_F(HttpCodecTest, ParsesLegacyGet) {
    http::Request request;
    request.path = "/desc.xml";
    request.headers.emplace_back("Host", "10.0.0.3:8080");
    const auto message = codec->parse(http::encode(request));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "HTTP_GET");
    EXPECT_EQ(message->value("URI")->asString(), "/desc.xml");
    EXPECT_EQ(message->value("Host")->asString(), "10.0.0.3:8080");
    EXPECT_EQ(message->value("Body")->asString(), "");
}

TEST_F(HttpCodecTest, ParsesLegacyOkWithBody) {
    http::Response response;
    response.body = "<root><URLBase>http://10.0.0.3:9090/print</URLBase></root>";
    const auto message = codec->parse(http::encode(response));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->type(), "HTTP_OK");
    EXPECT_EQ(message->value("Body")->asString(), response.body);
    EXPECT_EQ(message->value("Content-Length")->asString(),
              std::to_string(response.body.size()));
}

TEST_F(HttpCodecTest, ComposedGetDecodableByLegacyStack) {
    AbstractMessage message("HTTP_GET");
    message.setValue("URI", Value::ofString("/desc.xml"));
    message.setValue("Host", Value::ofString("10.0.0.3"));
    const auto decoded = http::decodeRequest(codec->compose(message));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->method, "GET");
    EXPECT_EQ(decoded->path, "/desc.xml");
    EXPECT_EQ(decoded->header("Host"), "10.0.0.3");
}

TEST_F(HttpCodecTest, ComposedOkCarriesConsistentContentLength) {
    AbstractMessage message("HTTP_OK");
    message.setValue("Body", Value::ofString("0123456789"));
    const Bytes wire = codec->compose(message);
    const auto decoded = http::decodeResponse(wire);
    ASSERT_TRUE(decoded);  // legacy decode validates Content-Length
    EXPECT_EQ(decoded->status, 200);
    EXPECT_EQ(decoded->body, "0123456789");
}

TEST_F(HttpCodecTest, ComposedOkOverridesStaleContentLength) {
    AbstractMessage message("HTTP_OK");
    message.setValue("Content-Length", Value::ofString("999"));
    message.setValue("Body", Value::ofString("abc"));
    const auto decoded = http::decodeResponse(codec->compose(message));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->body, "abc");
}

TEST_F(HttpCodecTest, ComposeMissingMandatoryUriThrows) {
    AbstractMessage message("HTTP_GET");
    EXPECT_THROW(codec->compose(message), SpecError);
}

TEST_F(HttpCodecTest, BodyOnlyAfterBlankLine) {
    const std::string raw = "HTTP/1.1 200 OK\r\nX: 1\r\n\r\nline1\r\nline2";
    const auto message = codec->parse(toBytes(raw));
    ASSERT_TRUE(message);
    EXPECT_EQ(message->value("Body")->asString(), "line1\r\nline2");
    EXPECT_EQ(message->value("X")->asString(), "1");
}

}  // namespace
}  // namespace starlink::mdl
