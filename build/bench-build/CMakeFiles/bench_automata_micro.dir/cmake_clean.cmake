file(REMOVE_RECURSE
  "../bench/bench_automata_micro"
  "../bench/bench_automata_micro.pdb"
  "CMakeFiles/bench_automata_micro.dir/automata_micro.cpp.o"
  "CMakeFiles/bench_automata_micro.dir/automata_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_automata_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
