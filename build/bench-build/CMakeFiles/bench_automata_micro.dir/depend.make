# Empty dependencies file for bench_automata_micro.
# This may be replaced when dependencies are built.
