file(REMOVE_RECURSE
  "../bench/bench_baseline_ablation"
  "../bench/bench_baseline_ablation.pdb"
  "CMakeFiles/bench_baseline_ablation.dir/baseline_ablation.cpp.o"
  "CMakeFiles/bench_baseline_ablation.dir/baseline_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
