# Empty dependencies file for bench_synthesis_ablation.
# This may be replaced when dependencies are built.
