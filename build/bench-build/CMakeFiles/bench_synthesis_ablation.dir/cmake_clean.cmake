file(REMOVE_RECURSE
  "../bench/bench_synthesis_ablation"
  "../bench/bench_synthesis_ablation.pdb"
  "CMakeFiles/bench_synthesis_ablation.dir/synthesis_ablation.cpp.o"
  "CMakeFiles/bench_synthesis_ablation.dir/synthesis_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synthesis_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
