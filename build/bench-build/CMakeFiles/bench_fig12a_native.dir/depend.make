# Empty dependencies file for bench_fig12a_native.
# This may be replaced when dependencies are built.
