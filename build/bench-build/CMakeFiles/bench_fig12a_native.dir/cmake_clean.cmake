file(REMOVE_RECURSE
  "../bench/bench_fig12a_native"
  "../bench/bench_fig12a_native.pdb"
  "CMakeFiles/bench_fig12a_native.dir/fig12a_native.cpp.o"
  "CMakeFiles/bench_fig12a_native.dir/fig12a_native.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12a_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
