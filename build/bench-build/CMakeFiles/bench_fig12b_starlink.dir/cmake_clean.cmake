file(REMOVE_RECURSE
  "../bench/bench_fig12b_starlink"
  "../bench/bench_fig12b_starlink.pdb"
  "CMakeFiles/bench_fig12b_starlink.dir/fig12b_starlink.cpp.o"
  "CMakeFiles/bench_fig12b_starlink.dir/fig12b_starlink.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12b_starlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
