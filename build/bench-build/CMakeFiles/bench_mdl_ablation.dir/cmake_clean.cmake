file(REMOVE_RECURSE
  "../bench/bench_mdl_ablation"
  "../bench/bench_mdl_ablation.pdb"
  "CMakeFiles/bench_mdl_ablation.dir/mdl_ablation.cpp.o"
  "CMakeFiles/bench_mdl_ablation.dir/mdl_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mdl_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
