file(REMOVE_RECURSE
  "../bench/bench_rich_translation"
  "../bench/bench_rich_translation.pdb"
  "CMakeFiles/bench_rich_translation.dir/rich_translation.cpp.o"
  "CMakeFiles/bench_rich_translation.dir/rich_translation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rich_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
