# Empty compiler generated dependencies file for bench_rich_translation.
# This may be replaced when dependencies are built.
