# Empty compiler generated dependencies file for attribute_discovery.
# This may be replaced when dependencies are built.
