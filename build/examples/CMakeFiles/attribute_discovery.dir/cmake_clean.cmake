file(REMOVE_RECURSE
  "CMakeFiles/attribute_discovery.dir/attribute_discovery.cpp.o"
  "CMakeFiles/attribute_discovery.dir/attribute_discovery.cpp.o.d"
  "attribute_discovery"
  "attribute_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
