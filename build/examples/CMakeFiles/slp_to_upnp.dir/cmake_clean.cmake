file(REMOVE_RECURSE
  "CMakeFiles/slp_to_upnp.dir/slp_to_upnp.cpp.o"
  "CMakeFiles/slp_to_upnp.dir/slp_to_upnp.cpp.o.d"
  "slp_to_upnp"
  "slp_to_upnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_to_upnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
