# Empty compiler generated dependencies file for slp_to_upnp.
# This may be replaced when dependencies are built.
