file(REMOVE_RECURSE
  "CMakeFiles/all_pairs_discovery.dir/all_pairs_discovery.cpp.o"
  "CMakeFiles/all_pairs_discovery.dir/all_pairs_discovery.cpp.o.d"
  "all_pairs_discovery"
  "all_pairs_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/all_pairs_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
