# Empty compiler generated dependencies file for all_pairs_discovery.
# This may be replaced when dependencies are built.
