file(REMOVE_RECURSE
  "CMakeFiles/synthesized_bridge.dir/synthesized_bridge.cpp.o"
  "CMakeFiles/synthesized_bridge.dir/synthesized_bridge.cpp.o.d"
  "synthesized_bridge"
  "synthesized_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesized_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
