# Empty dependencies file for synthesized_bridge.
# This may be replaced when dependencies are built.
