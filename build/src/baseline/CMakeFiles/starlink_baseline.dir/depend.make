# Empty dependencies file for starlink_baseline.
# This may be replaced when dependencies are built.
