file(REMOVE_RECURSE
  "CMakeFiles/starlink_baseline.dir/static_bridges.cpp.o"
  "CMakeFiles/starlink_baseline.dir/static_bridges.cpp.o.d"
  "libstarlink_baseline.a"
  "libstarlink_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
