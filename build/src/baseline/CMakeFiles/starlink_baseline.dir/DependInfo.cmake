
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/static_bridges.cpp" "src/baseline/CMakeFiles/starlink_baseline.dir/static_bridges.cpp.o" "gcc" "src/baseline/CMakeFiles/starlink_baseline.dir/static_bridges.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/starlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/starlink_net.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/slp/CMakeFiles/starlink_proto_slp.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/mdns/CMakeFiles/starlink_proto_mdns.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/ssdp/CMakeFiles/starlink_proto_ssdp.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/http/CMakeFiles/starlink_proto_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
