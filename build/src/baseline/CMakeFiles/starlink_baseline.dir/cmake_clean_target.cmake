file(REMOVE_RECURSE
  "libstarlink_baseline.a"
)
