file(REMOVE_RECURSE
  "CMakeFiles/starlink_common.dir/bytes.cpp.o"
  "CMakeFiles/starlink_common.dir/bytes.cpp.o.d"
  "CMakeFiles/starlink_common.dir/log.cpp.o"
  "CMakeFiles/starlink_common.dir/log.cpp.o.d"
  "CMakeFiles/starlink_common.dir/strings.cpp.o"
  "CMakeFiles/starlink_common.dir/strings.cpp.o.d"
  "libstarlink_common.a"
  "libstarlink_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
