file(REMOVE_RECURSE
  "libstarlink_common.a"
)
