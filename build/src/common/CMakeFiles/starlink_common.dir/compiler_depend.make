# Empty compiler generated dependencies file for starlink_common.
# This may be replaced when dependencies are built.
