# Empty dependencies file for starlink_xml.
# This may be replaced when dependencies are built.
