file(REMOVE_RECURSE
  "CMakeFiles/starlink_xml.dir/dom.cpp.o"
  "CMakeFiles/starlink_xml.dir/dom.cpp.o.d"
  "CMakeFiles/starlink_xml.dir/parser.cpp.o"
  "CMakeFiles/starlink_xml.dir/parser.cpp.o.d"
  "CMakeFiles/starlink_xml.dir/writer.cpp.o"
  "CMakeFiles/starlink_xml.dir/writer.cpp.o.d"
  "CMakeFiles/starlink_xml.dir/xpath.cpp.o"
  "CMakeFiles/starlink_xml.dir/xpath.cpp.o.d"
  "libstarlink_xml.a"
  "libstarlink_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
