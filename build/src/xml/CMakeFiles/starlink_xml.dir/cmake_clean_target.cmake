file(REMOVE_RECURSE
  "libstarlink_xml.a"
)
