file(REMOVE_RECURSE
  "libstarlink_net.a"
)
