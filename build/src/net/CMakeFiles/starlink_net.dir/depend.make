# Empty dependencies file for starlink_net.
# This may be replaced when dependencies are built.
