file(REMOVE_RECURSE
  "CMakeFiles/starlink_net.dir/scheduler.cpp.o"
  "CMakeFiles/starlink_net.dir/scheduler.cpp.o.d"
  "CMakeFiles/starlink_net.dir/sim_network.cpp.o"
  "CMakeFiles/starlink_net.dir/sim_network.cpp.o.d"
  "libstarlink_net.a"
  "libstarlink_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
