file(REMOVE_RECURSE
  "CMakeFiles/starlink_merge.dir/dot_export.cpp.o"
  "CMakeFiles/starlink_merge.dir/dot_export.cpp.o.d"
  "CMakeFiles/starlink_merge.dir/merged_automaton.cpp.o"
  "CMakeFiles/starlink_merge.dir/merged_automaton.cpp.o.d"
  "CMakeFiles/starlink_merge.dir/ontology.cpp.o"
  "CMakeFiles/starlink_merge.dir/ontology.cpp.o.d"
  "CMakeFiles/starlink_merge.dir/spec_loader.cpp.o"
  "CMakeFiles/starlink_merge.dir/spec_loader.cpp.o.d"
  "CMakeFiles/starlink_merge.dir/spec_writer.cpp.o"
  "CMakeFiles/starlink_merge.dir/spec_writer.cpp.o.d"
  "CMakeFiles/starlink_merge.dir/synthesizer.cpp.o"
  "CMakeFiles/starlink_merge.dir/synthesizer.cpp.o.d"
  "CMakeFiles/starlink_merge.dir/translation.cpp.o"
  "CMakeFiles/starlink_merge.dir/translation.cpp.o.d"
  "libstarlink_merge.a"
  "libstarlink_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
