
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/merge/dot_export.cpp" "src/core/merge/CMakeFiles/starlink_merge.dir/dot_export.cpp.o" "gcc" "src/core/merge/CMakeFiles/starlink_merge.dir/dot_export.cpp.o.d"
  "/root/repo/src/core/merge/merged_automaton.cpp" "src/core/merge/CMakeFiles/starlink_merge.dir/merged_automaton.cpp.o" "gcc" "src/core/merge/CMakeFiles/starlink_merge.dir/merged_automaton.cpp.o.d"
  "/root/repo/src/core/merge/ontology.cpp" "src/core/merge/CMakeFiles/starlink_merge.dir/ontology.cpp.o" "gcc" "src/core/merge/CMakeFiles/starlink_merge.dir/ontology.cpp.o.d"
  "/root/repo/src/core/merge/spec_loader.cpp" "src/core/merge/CMakeFiles/starlink_merge.dir/spec_loader.cpp.o" "gcc" "src/core/merge/CMakeFiles/starlink_merge.dir/spec_loader.cpp.o.d"
  "/root/repo/src/core/merge/spec_writer.cpp" "src/core/merge/CMakeFiles/starlink_merge.dir/spec_writer.cpp.o" "gcc" "src/core/merge/CMakeFiles/starlink_merge.dir/spec_writer.cpp.o.d"
  "/root/repo/src/core/merge/synthesizer.cpp" "src/core/merge/CMakeFiles/starlink_merge.dir/synthesizer.cpp.o" "gcc" "src/core/merge/CMakeFiles/starlink_merge.dir/synthesizer.cpp.o.d"
  "/root/repo/src/core/merge/translation.cpp" "src/core/merge/CMakeFiles/starlink_merge.dir/translation.cpp.o" "gcc" "src/core/merge/CMakeFiles/starlink_merge.dir/translation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/starlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/starlink_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/message/CMakeFiles/starlink_message.dir/DependInfo.cmake"
  "/root/repo/build/src/core/automata/CMakeFiles/starlink_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/core/mdl/CMakeFiles/starlink_mdl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
