file(REMOVE_RECURSE
  "libstarlink_merge.a"
)
