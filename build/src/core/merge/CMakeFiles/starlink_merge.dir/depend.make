# Empty dependencies file for starlink_merge.
# This may be replaced when dependencies are built.
