# Empty dependencies file for starlink_bridge.
# This may be replaced when dependencies are built.
