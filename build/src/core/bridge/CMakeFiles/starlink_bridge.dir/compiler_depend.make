# Empty compiler generated dependencies file for starlink_bridge.
# This may be replaced when dependencies are built.
