file(REMOVE_RECURSE
  "libstarlink_bridge.a"
)
