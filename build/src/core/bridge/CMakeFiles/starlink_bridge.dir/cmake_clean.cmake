file(REMOVE_RECURSE
  "CMakeFiles/starlink_bridge.dir/models.cpp.o"
  "CMakeFiles/starlink_bridge.dir/models.cpp.o.d"
  "CMakeFiles/starlink_bridge.dir/starlink.cpp.o"
  "CMakeFiles/starlink_bridge.dir/starlink.cpp.o.d"
  "libstarlink_bridge.a"
  "libstarlink_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
