file(REMOVE_RECURSE
  "libstarlink_engine.a"
)
