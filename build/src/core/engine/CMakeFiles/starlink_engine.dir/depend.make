# Empty dependencies file for starlink_engine.
# This may be replaced when dependencies are built.
