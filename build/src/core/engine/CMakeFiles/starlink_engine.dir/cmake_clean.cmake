file(REMOVE_RECURSE
  "CMakeFiles/starlink_engine.dir/automata_engine.cpp.o"
  "CMakeFiles/starlink_engine.dir/automata_engine.cpp.o.d"
  "CMakeFiles/starlink_engine.dir/network_engine.cpp.o"
  "CMakeFiles/starlink_engine.dir/network_engine.cpp.o.d"
  "libstarlink_engine.a"
  "libstarlink_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
