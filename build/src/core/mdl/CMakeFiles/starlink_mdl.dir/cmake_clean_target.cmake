file(REMOVE_RECURSE
  "libstarlink_mdl.a"
)
