file(REMOVE_RECURSE
  "CMakeFiles/starlink_mdl.dir/binary_codec.cpp.o"
  "CMakeFiles/starlink_mdl.dir/binary_codec.cpp.o.d"
  "CMakeFiles/starlink_mdl.dir/bitio.cpp.o"
  "CMakeFiles/starlink_mdl.dir/bitio.cpp.o.d"
  "CMakeFiles/starlink_mdl.dir/codec.cpp.o"
  "CMakeFiles/starlink_mdl.dir/codec.cpp.o.d"
  "CMakeFiles/starlink_mdl.dir/marshaller.cpp.o"
  "CMakeFiles/starlink_mdl.dir/marshaller.cpp.o.d"
  "CMakeFiles/starlink_mdl.dir/spec.cpp.o"
  "CMakeFiles/starlink_mdl.dir/spec.cpp.o.d"
  "CMakeFiles/starlink_mdl.dir/text_codec.cpp.o"
  "CMakeFiles/starlink_mdl.dir/text_codec.cpp.o.d"
  "CMakeFiles/starlink_mdl.dir/xml_codec.cpp.o"
  "CMakeFiles/starlink_mdl.dir/xml_codec.cpp.o.d"
  "libstarlink_mdl.a"
  "libstarlink_mdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_mdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
