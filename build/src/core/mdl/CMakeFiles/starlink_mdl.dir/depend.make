# Empty dependencies file for starlink_mdl.
# This may be replaced when dependencies are built.
