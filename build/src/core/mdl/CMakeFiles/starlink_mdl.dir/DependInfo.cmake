
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/mdl/binary_codec.cpp" "src/core/mdl/CMakeFiles/starlink_mdl.dir/binary_codec.cpp.o" "gcc" "src/core/mdl/CMakeFiles/starlink_mdl.dir/binary_codec.cpp.o.d"
  "/root/repo/src/core/mdl/bitio.cpp" "src/core/mdl/CMakeFiles/starlink_mdl.dir/bitio.cpp.o" "gcc" "src/core/mdl/CMakeFiles/starlink_mdl.dir/bitio.cpp.o.d"
  "/root/repo/src/core/mdl/codec.cpp" "src/core/mdl/CMakeFiles/starlink_mdl.dir/codec.cpp.o" "gcc" "src/core/mdl/CMakeFiles/starlink_mdl.dir/codec.cpp.o.d"
  "/root/repo/src/core/mdl/marshaller.cpp" "src/core/mdl/CMakeFiles/starlink_mdl.dir/marshaller.cpp.o" "gcc" "src/core/mdl/CMakeFiles/starlink_mdl.dir/marshaller.cpp.o.d"
  "/root/repo/src/core/mdl/spec.cpp" "src/core/mdl/CMakeFiles/starlink_mdl.dir/spec.cpp.o" "gcc" "src/core/mdl/CMakeFiles/starlink_mdl.dir/spec.cpp.o.d"
  "/root/repo/src/core/mdl/text_codec.cpp" "src/core/mdl/CMakeFiles/starlink_mdl.dir/text_codec.cpp.o" "gcc" "src/core/mdl/CMakeFiles/starlink_mdl.dir/text_codec.cpp.o.d"
  "/root/repo/src/core/mdl/xml_codec.cpp" "src/core/mdl/CMakeFiles/starlink_mdl.dir/xml_codec.cpp.o" "gcc" "src/core/mdl/CMakeFiles/starlink_mdl.dir/xml_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/starlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/starlink_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/message/CMakeFiles/starlink_message.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
