
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/automata/color.cpp" "src/core/automata/CMakeFiles/starlink_automata.dir/color.cpp.o" "gcc" "src/core/automata/CMakeFiles/starlink_automata.dir/color.cpp.o.d"
  "/root/repo/src/core/automata/colored_automaton.cpp" "src/core/automata/CMakeFiles/starlink_automata.dir/colored_automaton.cpp.o" "gcc" "src/core/automata/CMakeFiles/starlink_automata.dir/colored_automaton.cpp.o.d"
  "/root/repo/src/core/automata/learner.cpp" "src/core/automata/CMakeFiles/starlink_automata.dir/learner.cpp.o" "gcc" "src/core/automata/CMakeFiles/starlink_automata.dir/learner.cpp.o.d"
  "/root/repo/src/core/automata/trace.cpp" "src/core/automata/CMakeFiles/starlink_automata.dir/trace.cpp.o" "gcc" "src/core/automata/CMakeFiles/starlink_automata.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/starlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/message/CMakeFiles/starlink_message.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/starlink_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
