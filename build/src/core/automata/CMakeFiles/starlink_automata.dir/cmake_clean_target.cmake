file(REMOVE_RECURSE
  "libstarlink_automata.a"
)
