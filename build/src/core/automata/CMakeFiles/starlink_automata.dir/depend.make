# Empty dependencies file for starlink_automata.
# This may be replaced when dependencies are built.
