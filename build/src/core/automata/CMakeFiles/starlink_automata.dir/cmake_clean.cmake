file(REMOVE_RECURSE
  "CMakeFiles/starlink_automata.dir/color.cpp.o"
  "CMakeFiles/starlink_automata.dir/color.cpp.o.d"
  "CMakeFiles/starlink_automata.dir/colored_automaton.cpp.o"
  "CMakeFiles/starlink_automata.dir/colored_automaton.cpp.o.d"
  "CMakeFiles/starlink_automata.dir/learner.cpp.o"
  "CMakeFiles/starlink_automata.dir/learner.cpp.o.d"
  "CMakeFiles/starlink_automata.dir/trace.cpp.o"
  "CMakeFiles/starlink_automata.dir/trace.cpp.o.d"
  "libstarlink_automata.a"
  "libstarlink_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
