file(REMOVE_RECURSE
  "CMakeFiles/starlink_message.dir/abstract_message.cpp.o"
  "CMakeFiles/starlink_message.dir/abstract_message.cpp.o.d"
  "CMakeFiles/starlink_message.dir/field.cpp.o"
  "CMakeFiles/starlink_message.dir/field.cpp.o.d"
  "CMakeFiles/starlink_message.dir/value.cpp.o"
  "CMakeFiles/starlink_message.dir/value.cpp.o.d"
  "libstarlink_message.a"
  "libstarlink_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
