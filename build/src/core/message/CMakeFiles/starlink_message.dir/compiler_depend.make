# Empty compiler generated dependencies file for starlink_message.
# This may be replaced when dependencies are built.
