file(REMOVE_RECURSE
  "libstarlink_message.a"
)
