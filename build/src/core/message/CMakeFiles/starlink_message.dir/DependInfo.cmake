
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/message/abstract_message.cpp" "src/core/message/CMakeFiles/starlink_message.dir/abstract_message.cpp.o" "gcc" "src/core/message/CMakeFiles/starlink_message.dir/abstract_message.cpp.o.d"
  "/root/repo/src/core/message/field.cpp" "src/core/message/CMakeFiles/starlink_message.dir/field.cpp.o" "gcc" "src/core/message/CMakeFiles/starlink_message.dir/field.cpp.o.d"
  "/root/repo/src/core/message/value.cpp" "src/core/message/CMakeFiles/starlink_message.dir/value.cpp.o" "gcc" "src/core/message/CMakeFiles/starlink_message.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/starlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/starlink_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
