# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("xml")
subdirs("net")
subdirs("core/message")
subdirs("core/mdl")
subdirs("core/automata")
subdirs("core/merge")
subdirs("core/engine")
subdirs("core/bridge")
subdirs("protocols/slp")
subdirs("protocols/mdns")
subdirs("protocols/ssdp")
subdirs("protocols/http")
subdirs("protocols/ldap")
subdirs("protocols/wsd")
subdirs("baseline")
