file(REMOVE_RECURSE
  "CMakeFiles/starlink_proto_mdns.dir/dns_codec.cpp.o"
  "CMakeFiles/starlink_proto_mdns.dir/dns_codec.cpp.o.d"
  "CMakeFiles/starlink_proto_mdns.dir/mdns_agents.cpp.o"
  "CMakeFiles/starlink_proto_mdns.dir/mdns_agents.cpp.o.d"
  "libstarlink_proto_mdns.a"
  "libstarlink_proto_mdns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_proto_mdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
