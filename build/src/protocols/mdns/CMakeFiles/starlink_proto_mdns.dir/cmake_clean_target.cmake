file(REMOVE_RECURSE
  "libstarlink_proto_mdns.a"
)
