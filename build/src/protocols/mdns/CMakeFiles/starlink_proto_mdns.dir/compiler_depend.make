# Empty compiler generated dependencies file for starlink_proto_mdns.
# This may be replaced when dependencies are built.
