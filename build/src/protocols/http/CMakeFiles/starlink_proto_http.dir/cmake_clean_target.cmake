file(REMOVE_RECURSE
  "libstarlink_proto_http.a"
)
