# Empty compiler generated dependencies file for starlink_proto_http.
# This may be replaced when dependencies are built.
