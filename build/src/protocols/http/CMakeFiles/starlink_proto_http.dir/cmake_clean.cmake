file(REMOVE_RECURSE
  "CMakeFiles/starlink_proto_http.dir/http_agents.cpp.o"
  "CMakeFiles/starlink_proto_http.dir/http_agents.cpp.o.d"
  "CMakeFiles/starlink_proto_http.dir/http_codec.cpp.o"
  "CMakeFiles/starlink_proto_http.dir/http_codec.cpp.o.d"
  "libstarlink_proto_http.a"
  "libstarlink_proto_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_proto_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
