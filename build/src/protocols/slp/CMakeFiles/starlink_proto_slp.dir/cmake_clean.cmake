file(REMOVE_RECURSE
  "CMakeFiles/starlink_proto_slp.dir/slp_agents.cpp.o"
  "CMakeFiles/starlink_proto_slp.dir/slp_agents.cpp.o.d"
  "CMakeFiles/starlink_proto_slp.dir/slp_codec.cpp.o"
  "CMakeFiles/starlink_proto_slp.dir/slp_codec.cpp.o.d"
  "libstarlink_proto_slp.a"
  "libstarlink_proto_slp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_proto_slp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
