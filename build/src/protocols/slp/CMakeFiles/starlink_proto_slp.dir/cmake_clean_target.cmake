file(REMOVE_RECURSE
  "libstarlink_proto_slp.a"
)
