# Empty compiler generated dependencies file for starlink_proto_slp.
# This may be replaced when dependencies are built.
