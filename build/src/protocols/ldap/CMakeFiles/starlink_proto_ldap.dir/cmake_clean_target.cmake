file(REMOVE_RECURSE
  "libstarlink_proto_ldap.a"
)
