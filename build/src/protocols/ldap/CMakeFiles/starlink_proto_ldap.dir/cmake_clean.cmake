file(REMOVE_RECURSE
  "CMakeFiles/starlink_proto_ldap.dir/ldap_agents.cpp.o"
  "CMakeFiles/starlink_proto_ldap.dir/ldap_agents.cpp.o.d"
  "CMakeFiles/starlink_proto_ldap.dir/ldap_codec.cpp.o"
  "CMakeFiles/starlink_proto_ldap.dir/ldap_codec.cpp.o.d"
  "libstarlink_proto_ldap.a"
  "libstarlink_proto_ldap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_proto_ldap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
