# Empty dependencies file for starlink_proto_ldap.
# This may be replaced when dependencies are built.
