# Empty compiler generated dependencies file for starlink_proto_wsd.
# This may be replaced when dependencies are built.
