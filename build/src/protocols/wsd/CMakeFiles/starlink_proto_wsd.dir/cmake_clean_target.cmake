file(REMOVE_RECURSE
  "libstarlink_proto_wsd.a"
)
