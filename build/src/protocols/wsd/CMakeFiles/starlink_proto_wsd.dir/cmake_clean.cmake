file(REMOVE_RECURSE
  "CMakeFiles/starlink_proto_wsd.dir/wsd_agents.cpp.o"
  "CMakeFiles/starlink_proto_wsd.dir/wsd_agents.cpp.o.d"
  "CMakeFiles/starlink_proto_wsd.dir/wsd_codec.cpp.o"
  "CMakeFiles/starlink_proto_wsd.dir/wsd_codec.cpp.o.d"
  "libstarlink_proto_wsd.a"
  "libstarlink_proto_wsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_proto_wsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
