# CMake generated Testfile for 
# Source directory: /root/repo/src/protocols/wsd
# Build directory: /root/repo/build/src/protocols/wsd
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
