# Empty compiler generated dependencies file for starlink_proto_ssdp.
# This may be replaced when dependencies are built.
