file(REMOVE_RECURSE
  "libstarlink_proto_ssdp.a"
)
