file(REMOVE_RECURSE
  "CMakeFiles/starlink_proto_ssdp.dir/ssdp_agents.cpp.o"
  "CMakeFiles/starlink_proto_ssdp.dir/ssdp_agents.cpp.o.d"
  "CMakeFiles/starlink_proto_ssdp.dir/ssdp_codec.cpp.o"
  "CMakeFiles/starlink_proto_ssdp.dir/ssdp_codec.cpp.o.d"
  "libstarlink_proto_ssdp.a"
  "libstarlink_proto_ssdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_proto_ssdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
