
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/ssdp/ssdp_agents.cpp" "src/protocols/ssdp/CMakeFiles/starlink_proto_ssdp.dir/ssdp_agents.cpp.o" "gcc" "src/protocols/ssdp/CMakeFiles/starlink_proto_ssdp.dir/ssdp_agents.cpp.o.d"
  "/root/repo/src/protocols/ssdp/ssdp_codec.cpp" "src/protocols/ssdp/CMakeFiles/starlink_proto_ssdp.dir/ssdp_codec.cpp.o" "gcc" "src/protocols/ssdp/CMakeFiles/starlink_proto_ssdp.dir/ssdp_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/starlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/starlink_net.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/http/CMakeFiles/starlink_proto_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
