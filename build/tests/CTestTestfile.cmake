# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_message[1]_include.cmake")
include("/root/repo/build/tests/test_mdl_binary[1]_include.cmake")
include("/root/repo/build/tests/test_mdl_text[1]_include.cmake")
include("/root/repo/build/tests/test_automata[1]_include.cmake")
include("/root/repo/build/tests/test_merge[1]_include.cmake")
include("/root/repo/build/tests/test_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_bridge[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_synthesizer[1]_include.cmake")
include("/root/repo/build/tests/test_learner[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_dot[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_ldap[1]_include.cmake")
include("/root/repo/build/tests/test_mdl_param[1]_include.cmake")
include("/root/repo/build/tests/test_spec_writer[1]_include.cmake")
include("/root/repo/build/tests/test_wsd[1]_include.cmake")
include("/root/repo/build/tests/test_mdl_xml[1]_include.cmake")
