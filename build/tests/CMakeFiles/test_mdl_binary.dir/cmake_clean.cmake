file(REMOVE_RECURSE
  "CMakeFiles/test_mdl_binary.dir/test_mdl_binary.cpp.o"
  "CMakeFiles/test_mdl_binary.dir/test_mdl_binary.cpp.o.d"
  "test_mdl_binary"
  "test_mdl_binary.pdb"
  "test_mdl_binary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdl_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
