# Empty dependencies file for test_mdl_param.
# This may be replaced when dependencies are built.
