file(REMOVE_RECURSE
  "CMakeFiles/test_mdl_param.dir/test_mdl_param.cpp.o"
  "CMakeFiles/test_mdl_param.dir/test_mdl_param.cpp.o.d"
  "test_mdl_param"
  "test_mdl_param.pdb"
  "test_mdl_param[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdl_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
