file(REMOVE_RECURSE
  "CMakeFiles/test_ldap.dir/test_ldap.cpp.o"
  "CMakeFiles/test_ldap.dir/test_ldap.cpp.o.d"
  "test_ldap"
  "test_ldap.pdb"
  "test_ldap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ldap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
