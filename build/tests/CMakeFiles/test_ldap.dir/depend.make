# Empty dependencies file for test_ldap.
# This may be replaced when dependencies are built.
