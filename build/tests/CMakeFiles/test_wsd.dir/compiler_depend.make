# Empty compiler generated dependencies file for test_wsd.
# This may be replaced when dependencies are built.
