file(REMOVE_RECURSE
  "CMakeFiles/test_wsd.dir/test_wsd.cpp.o"
  "CMakeFiles/test_wsd.dir/test_wsd.cpp.o.d"
  "test_wsd"
  "test_wsd.pdb"
  "test_wsd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
