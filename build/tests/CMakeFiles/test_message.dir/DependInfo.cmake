
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_message.cpp" "tests/CMakeFiles/test_message.dir/test_message.cpp.o" "gcc" "tests/CMakeFiles/test_message.dir/test_message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/starlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/starlink_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/starlink_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/message/CMakeFiles/starlink_message.dir/DependInfo.cmake"
  "/root/repo/build/src/core/mdl/CMakeFiles/starlink_mdl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/automata/CMakeFiles/starlink_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/core/merge/CMakeFiles/starlink_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/core/engine/CMakeFiles/starlink_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/bridge/CMakeFiles/starlink_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/slp/CMakeFiles/starlink_proto_slp.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/mdns/CMakeFiles/starlink_proto_mdns.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/ssdp/CMakeFiles/starlink_proto_ssdp.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/http/CMakeFiles/starlink_proto_http.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/ldap/CMakeFiles/starlink_proto_ldap.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/wsd/CMakeFiles/starlink_proto_wsd.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/starlink_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
