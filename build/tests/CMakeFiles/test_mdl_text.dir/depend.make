# Empty dependencies file for test_mdl_text.
# This may be replaced when dependencies are built.
