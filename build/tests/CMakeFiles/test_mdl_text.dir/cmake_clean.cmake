file(REMOVE_RECURSE
  "CMakeFiles/test_mdl_text.dir/test_mdl_text.cpp.o"
  "CMakeFiles/test_mdl_text.dir/test_mdl_text.cpp.o.d"
  "test_mdl_text"
  "test_mdl_text.pdb"
  "test_mdl_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdl_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
