file(REMOVE_RECURSE
  "CMakeFiles/test_spec_writer.dir/test_spec_writer.cpp.o"
  "CMakeFiles/test_spec_writer.dir/test_spec_writer.cpp.o.d"
  "test_spec_writer"
  "test_spec_writer.pdb"
  "test_spec_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
