# Empty dependencies file for test_spec_writer.
# This may be replaced when dependencies are built.
