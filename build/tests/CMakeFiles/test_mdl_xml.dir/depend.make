# Empty dependencies file for test_mdl_xml.
# This may be replaced when dependencies are built.
