file(REMOVE_RECURSE
  "CMakeFiles/test_mdl_xml.dir/test_mdl_xml.cpp.o"
  "CMakeFiles/test_mdl_xml.dir/test_mdl_xml.cpp.o.d"
  "test_mdl_xml"
  "test_mdl_xml.pdb"
  "test_mdl_xml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdl_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
