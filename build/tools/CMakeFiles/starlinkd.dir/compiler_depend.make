# Empty compiler generated dependencies file for starlinkd.
# This may be replaced when dependencies are built.
