file(REMOVE_RECURSE
  "CMakeFiles/starlinkd.dir/starlinkd.cpp.o"
  "CMakeFiles/starlinkd.dir/starlinkd.cpp.o.d"
  "starlinkd"
  "starlinkd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlinkd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
