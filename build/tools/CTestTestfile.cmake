# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(starlinkd_list "/root/repo/build/tools/starlinkd" "list")
set_tests_properties(starlinkd_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(starlinkd_demo_slp-to-upnp "/root/repo/build/tools/starlinkd" "demo" "slp-to-upnp")
set_tests_properties(starlinkd_demo_slp-to-upnp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(starlinkd_demo_slp-to-bonjour "/root/repo/build/tools/starlinkd" "demo" "slp-to-bonjour")
set_tests_properties(starlinkd_demo_slp-to-bonjour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(starlinkd_demo_upnp-to-slp "/root/repo/build/tools/starlinkd" "demo" "upnp-to-slp")
set_tests_properties(starlinkd_demo_upnp-to-slp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(starlinkd_demo_upnp-to-bonjour "/root/repo/build/tools/starlinkd" "demo" "upnp-to-bonjour")
set_tests_properties(starlinkd_demo_upnp-to-bonjour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(starlinkd_demo_bonjour-to-upnp "/root/repo/build/tools/starlinkd" "demo" "bonjour-to-upnp")
set_tests_properties(starlinkd_demo_bonjour-to-upnp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(starlinkd_demo_bonjour-to-slp "/root/repo/build/tools/starlinkd" "demo" "bonjour-to-slp")
set_tests_properties(starlinkd_demo_bonjour-to-slp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(starlinkd_dot "/root/repo/build/tools/starlinkd" "dot" "slp-to-upnp")
set_tests_properties(starlinkd_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(starlinkd_export "/root/repo/build/tools/starlinkd" "export" "/root/repo/build/tools/models")
set_tests_properties(starlinkd_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(starlinkd_demo_files "/root/repo/build/tools/starlinkd" "demo-files" "/root/repo/build/tools/models/slp.mdl.xml" "/root/repo/build/tools/models/slp.server.automaton.xml" "/root/repo/build/tools/models/dns.mdl.xml" "/root/repo/build/tools/models/mdns.client.automaton.xml" "/root/repo/build/tools/models/SLP-to-Bonjour.bridge.xml")
set_tests_properties(starlinkd_demo_files PROPERTIES  DEPENDS "starlinkd_export" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
